"""Fit a workload profile from an observed trace.

The inverse of the generator: given any request stream (a parsed Squid
log, or another synthetic trace), estimate everything a
:class:`~repro.workload.profiles.WorkloadProfile` needs —

* per-type document and request shares,
* per-type popularity index α (MLE, regression fallback),
* per-type temporal-correlation exponent β,
* per-type lognormal size parameters (median + log-space σ),
* per-type modification and interruption rates,

so that ``generate_trace(fit_profile(trace))`` produces a *synthetic
twin*: a shareable, arbitrarily scalable workload with the same
statistics as a log that may itself be confidential.  This is exactly
the substitution argument DESIGN.md makes for the DFN/RTP traces,
packaged as a reusable tool.

Every fit also carries its provenance: the returned profile's
``fit_diagnostics`` (:class:`FitDiagnostics`) records, per type, how
many documents/requests backed the estimate, which estimator produced
α and β (MLE, regression, or the default fallback), and which values
hit the clamp bounds — so downstream consumers (notably the analytical
model's :func:`repro.model.catalog.catalog_from_profile`) can warn on
thin or clamped fits instead of silently trusting defaults.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.correlation import estimate_beta
from repro.analysis.popularity import (
    alpha_from_counts,
    alpha_mle,
    popularity_counts,
)
from repro.errors import AnalysisError, ConfigurationError
from repro.types import DOCUMENT_TYPES, DocumentType, Trace
from repro.workload.profiles import TypeProfile, WorkloadProfile
from repro.workload.sizes import LognormalSizeModel

#: Fallbacks for types too thin to estimate.
DEFAULT_ALPHA = 0.7
DEFAULT_BETA = 0.4
#: Clamp bounds keeping fitted parameters generatable.
ALPHA_BOUNDS = (0.05, 2.0)
BETA_BOUNDS = (0.05, 1.0)
SIGMA_BOUNDS = (0.05, 3.0)
#: Below this many distinct documents a per-type fit is flagged thin.
THIN_DOCUMENTS = 50


@dataclass
class TypeFitDiagnostics:
    """How one document type's parameters were actually obtained.

    ``*_method`` records which estimator produced the value
    (``"mle"``/``"regression"``/``"default"`` for α,
    ``"estimated"``/``"default"`` for β); ``*_clamped`` flags values
    that hit the generatable-parameter bounds.  Consumers that
    calibrate models from a fitted profile
    (:func:`repro.model.catalog.catalog_from_profile`) use
    :meth:`problems` to warn instead of silently trusting defaults.
    """

    doc_type: DocumentType
    n_requests: int
    n_documents: int
    alpha_method: str = "default"
    alpha_clamped: bool = False
    beta_method: str = "default"
    beta_clamped: bool = False
    sigma_clamped: bool = False

    def problems(self) -> List[str]:
        """Human-readable reliability concerns; empty when clean."""
        problems = []
        if self.n_requests == 0:
            problems.append("type absent from trace (defaults used)")
            return problems
        if self.n_documents < THIN_DOCUMENTS:
            problems.append(
                f"thin sample ({self.n_documents} documents)")
        if self.alpha_method == "default":
            problems.append("alpha fell back to default")
        if self.alpha_clamped:
            problems.append("alpha clamped to bounds")
        if self.beta_method == "default":
            problems.append("beta fell back to default")
        if self.beta_clamped:
            problems.append("beta clamped to bounds")
        if self.sigma_clamped:
            problems.append("size sigma clamped to bounds")
        return problems

    def as_dict(self) -> dict:
        return {
            "doc_type": self.doc_type.value,
            "n_requests": self.n_requests,
            "n_documents": self.n_documents,
            "alpha_method": self.alpha_method,
            "alpha_clamped": self.alpha_clamped,
            "beta_method": self.beta_method,
            "beta_clamped": self.beta_clamped,
            "sigma_clamped": self.sigma_clamped,
            "problems": self.problems(),
        }


@dataclass
class FitDiagnostics:
    """Per-type fit provenance for one :func:`fit_profile` call."""

    by_type: Dict[DocumentType, TypeFitDiagnostics] = field(
        default_factory=dict)

    def problems(self) -> Dict[DocumentType, List[str]]:
        """Types with concerns only (clean types are omitted)."""
        return {doc_type: entry.problems()
                for doc_type, entry in self.by_type.items()
                if entry.problems()}

    @property
    def clean(self) -> bool:
        return not self.problems()

    def as_dict(self) -> dict:
        return {doc_type.value: entry.as_dict()
                for doc_type, entry in self.by_type.items()}


def _clamp(value: float, bounds: tuple) -> float:
    return min(max(value, bounds[0]), bounds[1])


def _clamp_flagged(value: float, bounds: tuple) -> Tuple[float, bool]:
    clamped = _clamp(value, bounds)
    return clamped, clamped != value


def _fit_alpha(trace: Trace, doc_type: DocumentType,
               diagnostics: TypeFitDiagnostics) -> float:
    counts = list(popularity_counts(trace, doc_type).values())
    try:
        value, clamped = _clamp_flagged(alpha_mle(counts), ALPHA_BOUNDS)
        diagnostics.alpha_method = "mle"
        diagnostics.alpha_clamped = clamped
        return value
    except AnalysisError:
        pass
    try:
        value, clamped = _clamp_flagged(alpha_from_counts(counts),
                                        ALPHA_BOUNDS)
        diagnostics.alpha_method = "regression"
        diagnostics.alpha_clamped = clamped
        return value
    except AnalysisError:
        diagnostics.alpha_method = "default"
        return DEFAULT_ALPHA


def _fit_beta(trace: Trace, doc_type: DocumentType,
              diagnostics: TypeFitDiagnostics) -> float:
    try:
        value, clamped = _clamp_flagged(
            estimate_beta(trace.requests, doc_type,
                          max_refs=100, min_samples=25),
            BETA_BOUNDS)
        diagnostics.beta_method = "estimated"
        diagnostics.beta_clamped = clamped
        return value
    except AnalysisError:
        diagnostics.beta_method = "default"
        return DEFAULT_BETA


def _fit_size_model(sizes: np.ndarray,
                    diagnostics: TypeFitDiagnostics
                    ) -> LognormalSizeModel:
    median = float(np.median(sizes))
    if median < 1:
        median = 1.0
    logs = np.log(np.maximum(sizes, 1.0))
    sigma, clamped = _clamp_flagged(float(logs.std()), SIGMA_BOUNDS)
    diagnostics.sigma_clamped = clamped
    return LognormalSizeModel(median_bytes=median, sigma=sigma)


def fit_profile(trace: Trace, name: Optional[str] = None,
                seed: int = 42) -> WorkloadProfile:
    """Estimate a generator profile from a trace.

    Types absent from the trace get a vanishing-but-positive share so
    the profile validates; scale the result with
    :meth:`~repro.workload.profiles.WorkloadProfile.scaled` before
    generating if a different volume is wanted.
    """
    if len(trace) == 0:
        raise ConfigurationError("cannot fit a profile to an empty trace")

    # Per-type populations.
    doc_sizes: Dict[DocumentType, Dict[str, int]] = {
        t: {} for t in DOCUMENT_TYPES}
    request_counts = {t: 0 for t in DOCUMENT_TYPES}
    repeats = {t: 0 for t in DOCUMENT_TYPES}
    modifications = {t: 0 for t in DOCUMENT_TYPES}
    interruptions = {t: 0 for t in DOCUMENT_TYPES}
    for request in trace:
        sizes = doc_sizes[request.doc_type]
        previous = sizes.get(request.url)
        if previous is not None:
            repeats[request.doc_type] += 1
            if previous != request.size:
                modifications[request.doc_type] += 1
        sizes[request.url] = request.size
        request_counts[request.doc_type] += 1
        if request.transfer_size < request.size:
            interruptions[request.doc_type] += 1

    total_docs = sum(len(sizes) for sizes in doc_sizes.values())
    total_requests = sum(request_counts.values())

    types: Dict[DocumentType, TypeProfile] = {}
    diagnostics = FitDiagnostics()
    # Reserve a sliver of share for empty types so validation holds.
    epsilon = 1e-6
    missing = [t for t in DOCUMENT_TYPES if request_counts[t] == 0]
    reserved = epsilon * len(missing)

    for doc_type in DOCUMENT_TYPES:
        n_docs = len(doc_sizes[doc_type])
        n_requests = request_counts[doc_type]
        type_diagnostics = TypeFitDiagnostics(
            doc_type=doc_type, n_requests=n_requests,
            n_documents=n_docs)
        diagnostics.by_type[doc_type] = type_diagnostics
        if n_requests == 0:
            types[doc_type] = TypeProfile(
                doc_share=epsilon, request_share=epsilon,
                alpha=DEFAULT_ALPHA, beta=DEFAULT_BETA,
                size_model=LognormalSizeModel(median_bytes=8192,
                                              sigma=1.0))
            continue
        sizes = np.asarray(list(doc_sizes[doc_type].values()),
                           dtype=np.float64)
        repeat_count = max(repeats[doc_type], 1)
        types[doc_type] = TypeProfile(
            doc_share=(n_docs / total_docs) * (1.0 - reserved),
            request_share=(n_requests / total_requests) * (1.0 - reserved),
            alpha=_fit_alpha(trace, doc_type, type_diagnostics),
            beta=_fit_beta(trace, doc_type, type_diagnostics),
            size_model=_fit_size_model(sizes, type_diagnostics),
            modification_rate=min(
                modifications[doc_type] / repeat_count, 0.5),
            interruption_rate=min(
                interruptions[doc_type] / n_requests, 0.9),
        )

    # Normalize shares to exactly 1 (guard float drift).
    doc_total = sum(t.doc_share for t in types.values())
    req_total = sum(t.request_share for t in types.values())
    for type_profile in types.values():
        type_profile.doc_share /= doc_total
        type_profile.request_share /= req_total

    profile = WorkloadProfile(
        name=name or f"{trace.name}-fitted",
        n_requests=max(total_requests, total_docs),
        n_documents=total_docs,
        types=types,
        seed=seed,
        fit_diagnostics=diagnostics,
    )
    profile.validate()
    return profile


def fidelity_report(original: Trace, twin: Trace) -> Dict[str, float]:
    """Quantify how closely a synthetic twin matches its original.

    Returns maximum absolute per-type deviations (in percentage
    points) for each Table-2 metric, plus the request-volume ratio —
    small numbers mean a faithful twin.
    """
    from repro.analysis.characterize import type_breakdown

    a = type_breakdown(original)
    b = type_breakdown(twin)

    def max_dev(metric_a, metric_b):
        return max(abs(metric_a[t] - metric_b[t])
                   for t in DOCUMENT_TYPES)

    return {
        "distinct_documents_max_dev": max_dev(a.distinct_documents,
                                              b.distinct_documents),
        "total_requests_max_dev": max_dev(a.total_requests,
                                          b.total_requests),
        "requested_data_max_dev": max_dev(a.requested_data,
                                          b.requested_data),
        "request_volume_ratio": (len(twin) / len(original)
                                 if len(original) else math.nan),
    }
