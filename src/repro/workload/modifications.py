"""Injection of document modifications and interrupted transfers.

The generator first lays out a clean request stream (every request
transfers the document's full, constant size); this pass then perturbs
it the way real traces are perturbed:

* with the type's ``modification_rate``, a repeat request sees a *new
  version* of the document whose size differs from the previous version
  by less than the 5 % tolerance — exactly the deltas the paper's
  simulator classifies as modifications;
* with the type's ``interruption_rate``, the client aborts the transfer
  and the logged transfer size is well below the document size (a ≥ 5 %
  delta in the raw log), which the simulator must *not* treat as a
  modification.

Keeping injection separate from layout makes the generator's statistical
properties (α, β, sizes) independent of the perturbation knobs.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Iterator, Optional

from repro.types import Request
from repro.workload.profiles import WorkloadProfile

#: Smallest document size eligible for modification: below this, a
#: one-byte change already exceeds the 5 % tolerance.
MIN_MODIFIABLE_SIZE = 64


class ChangeInjector:
    """Applies per-type modification and interruption perturbations."""

    def __init__(self, profile: WorkloadProfile,
                 rng: Optional[random.Random] = None,
                 tolerance: float = 0.05):
        self.profile = profile
        self.tolerance = tolerance
        self._rng = rng or random.Random(profile.seed + 1)
        self._current_sizes: Dict[str, int] = {}
        self.modifications = 0
        self.interruptions = 0

    def process(self, requests: Iterable[Request]) -> Iterator[Request]:
        for request in requests:
            yield self._perturb(request)

    def _perturb(self, request: Request) -> Request:
        rates = self.profile.types.get(request.doc_type)
        if rates is None:
            return request
        url = request.url
        size = self._current_sizes.get(url)
        first_visit = size is None
        if first_visit:
            size = request.size

        if (not first_visit
                and rates.modification_rate > 0
                and size >= MIN_MODIFIABLE_SIZE
                and self._rng.random() < rates.modification_rate):
            size = self._modify(size)
            self.modifications += 1
        self._current_sizes[url] = size

        transfer = size
        if (rates.interruption_rate > 0
                and self._rng.random() < rates.interruption_rate):
            transfer = self._interrupt(size)
            self.interruptions += 1

        if size == request.size and transfer == request.transfer_size:
            return request
        return Request(
            timestamp=request.timestamp,
            url=url,
            size=size,
            transfer_size=transfer,
            doc_type=request.doc_type,
            status=request.status,
            content_type=request.content_type,
        )

    def _modify(self, size: int) -> int:
        """New version size, strictly within the 5 % tolerance."""
        # Draw a relative delta in (0, 0.8 * tolerance] either way, so the
        # integer rounding can never push it to the tolerance boundary.
        magnitude = self.tolerance * (0.2 + 0.6 * self._rng.random())
        delta = max(1, int(size * magnitude))
        if delta >= int(size * self.tolerance):
            delta = max(int(size * self.tolerance) - 1, 0)
        if delta == 0:
            return size
        if self._rng.random() < 0.5 and size - delta >= MIN_MODIFIABLE_SIZE:
            return size - delta
        return size + delta

    def _interrupt(self, size: int) -> int:
        """Aborted-transfer size: between 5 % and 90 % of the document."""
        fraction = 0.05 + 0.85 * self._rng.random()
        transfer = int(size * fraction)
        ceiling = int(size * (1.0 - self.tolerance)) - 1
        if transfer > ceiling:
            transfer = max(ceiling, 1)
        return max(transfer, 1)
