"""Temporal correlation (the paper's β parameter).

Following Jin & Bestavros, the probability that a document is requested
again k requests after its previous reference scales as P(k) ∝ k^{-β}
for equally popular documents.  Larger β means reuse concentrates at
short distances (strong short-term correlation: the paper's multimedia
and application classes); β near zero approaches the independent
reference model (images).

:class:`PowerLawGapSampler` draws integer reuse gaps from a bounded
power law via inverse-transform sampling on the continuous density,
which is exact up to discretization.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

import numpy as np


class PowerLawGapSampler:
    """Draws gaps g ∈ [1, max_gap] with density ∝ g^{-β}.

    Uses the continuous bounded power law: for β ≠ 1,

        F^{-1}(u) = (1 + u · (M^{1-β} − 1))^{1/(1−β)}

    with M = max_gap, and the log-uniform form for β = 1.
    """

    def __init__(self, beta: float, max_gap: int,
                 seed: Optional[int] = None):
        if beta < 0:
            raise ValueError("beta must be non-negative")
        if max_gap < 1:
            raise ValueError("max_gap must be at least 1")
        self.beta = beta
        self.max_gap = max_gap
        self._rng = random.Random(seed)
        self._one_minus_beta = 1.0 - beta
        if abs(self._one_minus_beta) > 1e-9:
            self._span = max_gap ** self._one_minus_beta - 1.0
        else:
            self._span = math.log(max_gap) if max_gap > 1 else 0.0

    def _inverse(self, u: float) -> float:
        if self.max_gap == 1:
            return 1.0
        if abs(self._one_minus_beta) > 1e-9:
            return (1.0 + u * self._span) ** (1.0 / self._one_minus_beta)
        return math.exp(u * self._span)

    def sample(self) -> int:
        """One integer gap in [1, max_gap]."""
        value = self._inverse(self._rng.random())
        gap = int(value)
        if gap < 1:
            gap = 1
        elif gap > self.max_gap:
            gap = self.max_gap
        return gap

    def sample_many(self, count: int) -> np.ndarray:
        """Vectorized sampling of ``count`` gaps."""
        if count == 0:
            return np.empty(0, dtype=np.int64)
        draws = np.array([self._rng.random() for _ in range(count)])
        if self.max_gap == 1:
            return np.ones(count, dtype=np.int64)
        if abs(self._one_minus_beta) > 1e-9:
            values = (1.0 + draws * self._span) ** (1.0 / self._one_minus_beta)
        else:
            values = np.exp(draws * self._span)
        return np.clip(values.astype(np.int64), 1, self.max_gap)

    def mean_gap(self) -> float:
        """Analytic mean of the continuous bounded power law."""
        beta, m = self.beta, float(self.max_gap)
        if m == 1.0:
            return 1.0
        if abs(beta - 1.0) < 1e-9:
            return (m - 1.0) / math.log(m)
        if abs(beta - 2.0) < 1e-9:
            return math.log(m) * m / (m - 1.0)
        num = (m ** (2.0 - beta) - 1.0) / (2.0 - beta)
        den = (m ** (1.0 - beta) - 1.0) / (1.0 - beta)
        return num / den


def place_references_irm(n_refs: int, horizon: float,
                         rng: random.Random) -> List[float]:
    """Place references uniformly at random on [0, horizon).

    The Independent Reference Model: no temporal correlation at all —
    reuse gaps become geometric-ish, so any performance difference
    against the power-law placement isolates the value of temporal
    correlation (exactly the signal GD*'s β term exploits).
    """
    return [rng.random() * horizon for _ in range(n_refs)]


def place_references(n_refs: int, horizon: float,
                     gap_sampler: PowerLawGapSampler,
                     rng: random.Random) -> List[float]:
    """Place a document's references on the circular timeline [0, horizon).

    The first reference falls uniformly on the timeline; subsequent ones
    follow power-law gaps, wrapping modulo the horizon (which preserves
    the gap distribution while keeping every reference inside the trace).
    Returns unsorted float positions.
    """
    if n_refs <= 0:
        return []
    start = rng.random() * horizon
    if n_refs == 1:
        return [start]
    gaps = gap_sampler.sample_many(n_refs - 1)
    positions = np.empty(n_refs, dtype=np.float64)
    positions[0] = start
    positions[1:] = start + np.cumsum(gaps)
    np.mod(positions, horizon, out=positions)
    return positions.tolist()
