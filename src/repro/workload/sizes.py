"""Per-type document size models.

Web document sizes are heavy-tailed with type-dependent shape (paper
Tables 4 and 5): images and HTML are small with moderate variability,
multimedia is large, and application documents combine a very small
median with a very large mean (the paper's "new observation").  A
lognormal body captures the first three; a lognormal/bounded-Pareto
mixture reproduces the application class's extreme mean/median split.
"""

from __future__ import annotations

import math
import random
from typing import Optional, Protocol


class SizeModel(Protocol):
    """Anything that can draw one document size in bytes."""

    def sample(self, rng: random.Random) -> int:  # pragma: no cover
        ...


class LognormalSizeModel:
    """Lognormal sizes parameterized by median and log-space sigma.

    mean = median · exp(σ²/2); CoV = sqrt(exp(σ²) − 1).  Samples are
    clamped to [min_bytes, max_bytes].
    """

    def __init__(self, median_bytes: float, sigma: float,
                 min_bytes: int = 64, max_bytes: int = 1 << 31):
        if median_bytes <= 0:
            raise ValueError("median_bytes must be positive")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        if min_bytes < 1 or max_bytes <= min_bytes:
            raise ValueError("need 1 <= min_bytes < max_bytes")
        self.median_bytes = median_bytes
        self.sigma = sigma
        self.min_bytes = min_bytes
        self.max_bytes = max_bytes
        self._mu = math.log(median_bytes)

    @property
    def mean(self) -> float:
        """Analytic mean of the unclamped distribution."""
        return self.median_bytes * math.exp(self.sigma ** 2 / 2.0)

    @property
    def cov(self) -> float:
        """Analytic coefficient of variation of the unclamped distribution."""
        return math.sqrt(math.exp(self.sigma ** 2) - 1.0)

    def sample(self, rng: random.Random) -> int:
        value = rng.lognormvariate(self._mu, self.sigma)
        return round(min(max(value, self.min_bytes), self.max_bytes))


class BoundedParetoSizeModel:
    """Bounded Pareto sizes on [min_bytes, max_bytes] with shape k.

    Density ∝ x^{-k-1}; the classic model for the extreme upper tail of
    web object sizes (Crovella).
    """

    def __init__(self, shape: float, min_bytes: int, max_bytes: int):
        if shape <= 0:
            raise ValueError("shape must be positive")
        if min_bytes < 1 or max_bytes <= min_bytes:
            raise ValueError("need 1 <= min_bytes < max_bytes")
        self.shape = shape
        self.min_bytes = min_bytes
        self.max_bytes = max_bytes
        self._ratio = (min_bytes / max_bytes) ** shape

    def sample(self, rng: random.Random) -> int:
        u = rng.random()
        k, lo = self.shape, self.min_bytes
        value = lo / (1.0 - u * (1.0 - self._ratio)) ** (1.0 / k)
        return int(min(value, self.max_bytes))


class MixtureSizeModel:
    """Body/tail mixture: body with prob. 1−tail_prob, tail otherwise."""

    def __init__(self, body: SizeModel, tail: SizeModel, tail_prob: float):
        if not 0.0 <= tail_prob <= 1.0:
            raise ValueError("tail_prob must be in [0, 1]")
        self.body = body
        self.tail = tail
        self.tail_prob = tail_prob

    def sample(self, rng: random.Random) -> int:
        if rng.random() < self.tail_prob:
            return self.tail.sample(rng)
        return self.body.sample(rng)


class FixedSizeModel:
    """Degenerate model: every document has the same size (for tests)."""

    def __init__(self, size_bytes: int):
        if size_bytes < 1:
            raise ValueError("size_bytes must be positive")
        self.size_bytes = size_bytes

    def sample(self, rng: Optional[random.Random] = None) -> int:
        return self.size_bytes
