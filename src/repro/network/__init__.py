"""Cache networks: one engine for single caches, hierarchies, meshes,
paths, and trees.

The package factors what used to be three hand-written simulation
loops (single cache, two-level hierarchy, sibling mesh) into:

* :mod:`repro.network.topology` — the shape: nodes, capacities,
  per-hop links, and constructors for the standard shapes;
* :mod:`repro.network.strategies` — placement: who keeps a copy
  (LCE / LCD / ProbCache);
* :mod:`repro.network.engine` — the routing core driving any
  registry policy at each node, with per-node per-type metrics;
* :mod:`repro.network.fastpath` — the vectorized LRU/LCE cascade for
  columnar traces (bit-identical, benchmark-fast);
* :mod:`repro.network.cli` — ``network run/sweep/validate/placement``.

The legacy :mod:`repro.simulation.hierarchy` and
:mod:`repro.simulation.mesh` APIs survive as thin constructors over
this engine, pinned bit-identical by goldens.
"""

from repro.network.engine import (NetworkConfig, NetworkLatencyMetrics,
                                  NetworkResult, NetworkSimulator,
                                  NodeResult, run_network,
                                  run_network_cells)
from repro.network.strategies import (STRATEGY_NAMES, LeaveCopyDown,
                                      LeaveCopyEverywhere,
                                      PlacementStrategy, ProbCache,
                                      make_strategy)
from repro.network.topology import (DEFAULT_CLIENT_LINK,
                                    DEFAULT_ORIGIN_LINK,
                                    DEFAULT_PEER_LINK, TOPOLOGY_KINDS,
                                    NodeSpec, Topology, build_topology,
                                    path, sibling_mesh, single,
                                    tree, two_level)

__all__ = [
    "NetworkConfig", "NetworkLatencyMetrics", "NetworkResult",
    "NetworkSimulator", "NodeResult", "run_network",
    "run_network_cells",
    "PlacementStrategy", "LeaveCopyEverywhere", "LeaveCopyDown",
    "ProbCache", "make_strategy", "STRATEGY_NAMES",
    "NodeSpec", "Topology", "single", "two_level", "sibling_mesh",
    "path", "tree", "build_topology", "TOPOLOGY_KINDS",
    "DEFAULT_CLIENT_LINK", "DEFAULT_ORIGIN_LINK", "DEFAULT_PEER_LINK",
]
