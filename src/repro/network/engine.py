"""The cache-network engine: one routing core for every topology.

One request's life, regardless of topology shape:

1. the request arrives at its client population's edge cache
   (round-robin over :attr:`Topology.edges`, preserving the legacy
   simulators' client model);
2. the engine walks the cache path toward the origin until some cache
   holds the document at its current size — a stale copy (size
   changed) is dropped where it is found;
3. if the whole vertical path misses and the edge belongs to the
   sibling ring, the siblings are probed in ring order (ICP);
4. the placement strategy (:mod:`repro.network.strategies`) decides
   which of the missed caches admit a copy of the fetched document;
5. post-warmup, the reference is accounted at every cache it probed
   vertically, at the network level, and (optionally) as end-to-end
   latency over the :class:`~repro.simulation.latency.Link` path.

Under leave-copy-everywhere the walk probes with
``Cache.reference()`` — probe and admit in one call — which makes the
engine's cache-call sequence *identical* to the legacy
hierarchy/mesh loops; the goldens under ``tests/network/data/`` pin
that equality byte-for-byte across the whole policy registry.

The engine is policy-agnostic (any name from
:data:`repro.core.registry.POLICY_NAMES`, or pre-built policy
instances) and emits run-level telemetry through
:mod:`repro.observability`: one span per run, counters and histograms
batched after the loop, never per request.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.cache import Cache
from repro.core.policy import AccessOutcome, ReplacementPolicy
from repro.core.registry import make_policy
from repro.errors import ConfigurationError
from repro.network.strategies import PlacementStrategy, make_strategy
from repro.network.topology import NodeSpec, Topology
from repro.observability.events import emit
from repro.observability.metrics import get_registry
from repro.observability.trace import span as _span
from repro.simulation.latency import Link, path_latency
from repro.simulation.metrics import TypeMetrics, measured_transfer
from repro.structures.streaming import StreamingStats
from repro.types import DOCUMENT_TYPES, DocumentType, Request, Trace

_logger = logging.getLogger("repro.network")


@dataclass
class NetworkConfig:
    """One network simulation cell: shape × placement × behaviour."""

    topology: Topology
    strategy: Union[str, PlacementStrategy] = "lce"
    warmup_fraction: float = 0.10
    #: Record end-to-end service times over the topology's links.
    #: Off by default: the legacy-equivalent wrappers and the fast
    #: path skip it, and it roughly doubles per-request bookkeeping.
    measure_latency: bool = False
    #: After a sibling serves, keep a copy at the home cache too (the
    #: bandwidth-hungry ICP variant; the legacy mesh default).
    replicate_on_sibling_hit: bool = True
    #: When set, node i's policy is built with ``seed=policy_seed+i``
    #: where the policy accepts a seed — distinct randomized policies
    #: per node, deterministic per run.
    policy_seed: Optional[int] = None

    def validate(self) -> None:
        self.topology.validate()
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ConfigurationError(
                "warmup_fraction must be in [0, 1)")
        if isinstance(self.strategy, str):
            make_strategy(self.strategy)          # raises on unknown

    @property
    def strategy_name(self) -> str:
        if isinstance(self.strategy, str):
            return self.strategy
        return self.strategy.name


@dataclass
class NetworkLatencyMetrics:
    """End-to-end service times over the topology's link paths."""

    overall: StreamingStats = field(default_factory=StreamingStats)
    by_type: Dict[DocumentType, StreamingStats] = field(
        default_factory=lambda: {t: StreamingStats()
                                 for t in DOCUMENT_TYPES})
    #: What the same requests would have cost with every fetch going
    #: to the origin — the no-cache comparison point.
    baseline: StreamingStats = field(default_factory=StreamingStats)

    def record(self, doc_type: DocumentType, latency: float) -> None:
        self.overall.add(latency)
        self.by_type[doc_type].add(latency)

    def mean_latency(self, doc_type: DocumentType = None) -> float:
        stats = self.overall if doc_type is None \
            else self.by_type[doc_type]
        return stats.mean

    @property
    def speedup(self) -> float:
        """No-cache mean latency / achieved mean latency (≥ 1)."""
        achieved = self.overall.mean
        if not achieved or achieved != achieved:
            return 1.0
        return self.baseline.mean / achieved


@dataclass
class NodeResult:
    """One cache node's view of a run."""

    name: str
    level: int
    capacity_bytes: int
    policy: str
    #: Accounted over the requests that *reached* this node post-
    #: warmup: every request for an edge node, the local miss stream
    #: for an upstream node — the legacy hierarchy's per-level view.
    metrics: TypeMetrics = field(default_factory=TypeMetrics)
    #: Raw cache counters over the whole run, warmup included.
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bypasses: int = 0
    invalidations: int = 0
    used_bytes: int = 0
    #: Resident bytes per document type at end of run — the placement
    #: snapshot the per-type placement report reads.
    placement: Dict[DocumentType, int] = field(
        default_factory=lambda: {t: 0 for t in DOCUMENT_TYPES})
    #: Service times experienced by this edge node's client
    #: population (empty for non-edge nodes or latency-off runs).
    latency: StreamingStats = field(default_factory=StreamingStats)

    @property
    def occupancy(self) -> float:
        return self.used_bytes / self.capacity_bytes \
            if self.capacity_bytes else 0.0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "level": self.level,
            "capacity_bytes": self.capacity_bytes,
            "policy": self.policy,
            "metrics": self.metrics.as_dict(),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "bypasses": self.bypasses,
            "invalidations": self.invalidations,
            "used_bytes": self.used_bytes,
            "occupancy": self.occupancy,
            "placement": {t.value: b for t, b in self.placement.items()},
        }


@dataclass
class NetworkResult:
    """Outcome of one network run."""

    config: NetworkConfig
    trace_name: str = "trace"
    total_requests: int = 0
    warmup_requests: int = 0
    nodes: Dict[str, NodeResult] = field(default_factory=dict)
    #: Requests served by *any* cache in the network (origin off-load).
    network: TypeMetrics = field(default_factory=TypeMetrics)
    sibling_serves: int = 0
    latency: Optional[NetworkLatencyMetrics] = None

    @property
    def hit_rate(self) -> float:
        return self.network.overall.hit_rate

    @property
    def byte_hit_rate(self) -> float:
        return self.network.overall.byte_hit_rate

    @property
    def origin_byte_rate(self) -> float:
        """Fraction of requested bytes still fetched from the origin."""
        if not self.network.overall.requested_bytes:
            return 0.0
        return 1.0 - self.network.overall.byte_hit_rate

    def edge_metrics(self) -> TypeMetrics:
        """All edge populations folded together — the legacy
        hierarchy's ``child`` / mesh's ``local`` view."""
        merged = TypeMetrics()
        for name in self.config.topology.edges:
            merged.merge(self.nodes[name].metrics)
        return merged

    def level_metrics(self) -> Dict[int, TypeMetrics]:
        """Per-level merged metrics, level 0 at the edge."""
        topology = self.config.topology
        out: Dict[int, TypeMetrics] = {}
        for name, node in self.nodes.items():
            level = topology.level_of(name)
            merged = out.get(level)
            if merged is None:
                merged = out[level] = TypeMetrics()
            merged.merge(node.metrics)
        return out

    def placement_by_level(self) -> Dict[int, Dict[DocumentType, int]]:
        """Resident bytes per document type, folded per level."""
        topology = self.config.topology
        out: Dict[int, Dict[DocumentType, int]] = {}
        for name, node in self.nodes.items():
            level = topology.level_of(name)
            bucket = out.setdefault(level,
                                    {t: 0 for t in DOCUMENT_TYPES})
            for doc_type, resident in node.placement.items():
                bucket[doc_type] += resident
        return out

    def placement_shares(self) -> Dict[DocumentType, Dict[int, float]]:
        """For each type: the share of its resident bytes per level.

        The per-type placement report: which levels a type's bytes
        end up living at under this strategy/policy combination.
        Types with no resident bytes anywhere map every level to 0.
        """
        by_level = self.placement_by_level()
        totals = {t: sum(levels[t] for levels in by_level.values())
                  for t in DOCUMENT_TYPES}
        return {
            t: {level: (by_level[level][t] / totals[t]
                        if totals[t] else 0.0)
                for level in sorted(by_level)}
            for t in DOCUMENT_TYPES
        }

    def as_dict(self) -> dict:
        data = {
            "topology": self.config.topology.name,
            "strategy": self.config.strategy_name,
            "trace_name": self.trace_name,
            "total_requests": self.total_requests,
            "warmup_requests": self.warmup_requests,
            "network": self.network.as_dict(),
            "sibling_serves": self.sibling_serves,
            "nodes": {name: node.as_dict()
                      for name, node in self.nodes.items()},
        }
        if self.latency is not None:
            data["latency"] = {
                "mean": self.latency.overall.mean,
                "baseline_mean": self.latency.baseline.mean,
                "speedup": self.latency.speedup,
                "by_type": {t.value: stats.mean for t, stats
                            in self.latency.by_type.items()},
            }
        return data


def _policy_label(spec: Union[str, ReplacementPolicy]) -> str:
    if isinstance(spec, str):
        return spec
    return getattr(spec, "name", type(spec).__name__)


class NetworkSimulator:
    """Drives a trace through a cache network."""

    def __init__(self, config: NetworkConfig):
        config.validate()
        self.config = config
        topology = config.topology
        self.strategy: PlacementStrategy = (
            make_strategy(config.strategy)
            if isinstance(config.strategy, str) else config.strategy)
        self.caches: Dict[str, Cache] = {}
        for index, (name, spec) in enumerate(topology.nodes.items()):
            self.caches[name] = Cache(spec.capacity_bytes,
                                      self._build_policy(spec, index))
        # Per-edge routing state, precomputed once.
        self._paths: Dict[str, List[str]] = {
            edge: topology.path_to_origin(edge)
            for edge in topology.edges}
        self._spec_paths: Dict[str, List[NodeSpec]] = {
            edge: [topology.nodes[name] for name in names]
            for edge, names in self._paths.items()}
        # _links[edge][k] is the link path when the vertical walk is
        # served at depth k; index len(path) is the origin path.
        self._links: Dict[str, List[Tuple[Link, ...]]] = {}
        for edge, names in self._paths.items():
            uplinks = [topology.nodes[name].uplink for name in names]
            self._links[edge] = [
                tuple([topology.client_link] + uplinks[:k])
                for k in range(len(names) + 1)]
        self._sibling_links = (topology.client_link, topology.peer_link)
        self._ring = topology.sibling_ring
        self._ring_pos = {name: i
                          for i, name in enumerate(self._ring)}

    def _build_policy(self, spec: NodeSpec,
                      index: int) -> ReplacementPolicy:
        if isinstance(spec.policy, ReplacementPolicy):
            return spec.policy
        seed = self.config.policy_seed
        if seed is not None:
            try:
                return make_policy(spec.policy, seed=seed + index)
            except ConfigurationError:
                pass                     # policy takes no seed
        return make_policy(spec.policy)

    # ----- the walk -------------------------------------------------------

    def run(self, trace, trace_name: Optional[str] = None,
            ) -> NetworkResult:
        requests = trace.requests if isinstance(trace, Trace) else trace
        if not hasattr(requests, "__len__"):
            requests = list(requests)
        total = len(requests)
        warmup = int(total * self.config.warmup_fraction)
        name = (trace_name
                or getattr(trace, "trace_name", None)
                or getattr(trace, "name", "trace"))
        topology = self.config.topology
        result = NetworkResult(
            config=self.config, trace_name=name,
            total_requests=total, warmup_requests=warmup,
            latency=(NetworkLatencyMetrics()
                     if self.config.measure_latency else None))
        for node_name, spec in topology.nodes.items():
            result.nodes[node_name] = NodeResult(
                name=node_name, level=topology.level_of(node_name),
                capacity_bytes=spec.capacity_bytes,
                policy=_policy_label(spec.policy))
        with _span("network_simulate",
                   topology=topology.name,
                   strategy=self.config.strategy_name,
                   nodes=topology.n_caches,
                   trace=name, requests=total):
            self._drive(requests, warmup, result)
            self._snapshot(result)
        publish_network_telemetry(result)
        return result

    def _drive(self, requests: Sequence[Request], warmup: int,
               result: NetworkResult) -> None:
        caches = self.caches
        edges = self.config.topology.edges
        n_edges = len(edges)
        strategy = self.strategy
        admit_on_probe = strategy.admit_on_probe
        replicate = self.config.replicate_on_sibling_hit
        ring = self._ring
        ring_pos = self._ring_pos
        n_ring = len(ring)
        latency = result.latency
        node_metrics = {name: node.metrics
                        for name, node in result.nodes.items()}
        node_latency = {name: node.latency
                        for name, node in result.nodes.items()}
        network = result.network
        hit_outcome = AccessOutcome.HIT
        reached: List[bool] = []

        for index, request in enumerate(requests):
            edge = edges[index % n_edges]
            path = self._paths[edge]
            url = request.url
            size = request.size
            doc_type = request.doc_type
            served_level = -1
            del reached[:]
            if admit_on_probe:
                # LCE: probe and admit are one reference() — the
                # legacy hierarchy/mesh cache-call sequence exactly.
                for k, node in enumerate(path):
                    hit = caches[node].reference(
                        url, size, doc_type) is hit_outcome
                    reached.append(hit)
                    if hit:
                        served_level = k
                        break
            else:
                for k, node in enumerate(path):
                    cache = caches[node]
                    entry = cache.get(url)
                    if entry is not None:
                        if entry.size == size:
                            # Serving refreshes the entry (a HIT).
                            cache.reference(url, size, doc_type)
                            reached.append(True)
                            served_level = k
                            break
                        # Stale copy: drop it where it sits; whether
                        # the new version lands here again is the
                        # strategy's call below.
                        cache.invalidate(url)
                    reached.append(False)

            sibling_served = False
            if served_level < 0 and n_ring and edge in ring_pos:
                pos = ring_pos[edge]
                for offset in range(1, n_ring):
                    sibling = caches[ring[(pos + offset) % n_ring]]
                    entry = sibling.get(url)
                    if entry is not None and entry.size == size:
                        # Serving refreshes the sibling's entry; a
                        # stale sibling copy is *not* served and not
                        # touched (the owner finds out on its own
                        # next reference), matching the legacy mesh.
                        sibling.reference(url, size, doc_type)
                        sibling_served = True
                        break
                if sibling_served:
                    if admit_on_probe:
                        if not replicate:
                            # LCE admitted at the home cache during
                            # the walk; a non-replicating mesh drops
                            # that copy again (the sibling owns it).
                            caches[edge].invalidate(url)
                    elif replicate:
                        caches[edge].reference(url, size, doc_type)

            if (not admit_on_probe and not sibling_served
                    and served_level != 0):
                specs = self._spec_paths[edge]
                if served_level > 0:
                    visited = specs[:served_level]
                    full = specs[:served_level + 1]
                else:                     # origin fetch
                    visited = full = specs
                for node in strategy.copies(visited, full):
                    caches[node].reference(url, size, doc_type)

            if index < warmup:
                continue
            transfer = measured_transfer(request)
            for k, hit in enumerate(reached):
                node_metrics[path[k]].record(doc_type, hit, transfer)
            served = served_level >= 0 or sibling_served
            network.record(doc_type, served, transfer)
            if sibling_served:
                result.sibling_serves += 1
            if latency is not None:
                links = self._links[edge]
                if sibling_served:
                    seconds = path_latency(self._sibling_links,
                                           transfer)
                elif served_level >= 0:
                    seconds = path_latency(links[served_level],
                                           transfer)
                else:
                    seconds = path_latency(links[len(path)], transfer)
                latency.record(doc_type, seconds)
                latency.baseline.add(
                    path_latency(links[len(path)], transfer))
                node_latency[edge].add(seconds)

    def _snapshot(self, result: NetworkResult) -> None:
        """Copy end-of-run cache state into the node results."""
        for name, cache in self.caches.items():
            node = result.nodes[name]
            node.hits = cache.hits
            node.misses = cache.misses
            node.evictions = cache.evictions
            node.bypasses = cache.bypasses
            node.invalidations = cache.invalidations
            node.used_bytes = cache.used_bytes
            for entry in cache.entries():
                node.placement[entry.doc_type] += entry.size



def publish_network_telemetry(result: NetworkResult) -> None:
    """Batch one run's aggregates into the registry/event sink.

    Called once per run — never per request — by both the object walk
    and the fast path, so the two engines are observationally
    indistinguishable downstream.
    """
    labels = {"topology": result.config.topology.name,
              "strategy": result.config.strategy_name}
    registry = get_registry()
    if registry.enabled:
        registry.counter("network_runs_total", **labels).inc()
        registry.counter("network_requests_total", **labels).inc(
            result.total_requests)
        registry.counter("network_hits_total", **labels).inc(
            result.network.overall.hits)
        registry.counter("network_sibling_serves_total",
                         **labels).inc(result.sibling_serves)
        registry.histogram("network_hit_rate", **labels).observe(
            result.hit_rate)
    emit("network_simulated", trace=result.trace_name,
         requests=result.total_requests,
         hit_rate=round(result.hit_rate, 6),
         byte_hit_rate=round(result.byte_hit_rate, 6),
         sibling_serves=result.sibling_serves, **labels)
    _logger.debug(
        "network %s/%s: %d requests, hit rate %.4f",
        labels["topology"], labels["strategy"],
        result.total_requests, result.hit_rate)


def run_network(trace, config: NetworkConfig,
                trace_name: Optional[str] = None) -> NetworkResult:
    """One-call network simulation (object path or fast path).

    Dispatches to the vectorized fast path when the cell qualifies
    (columnar trace, LRU everywhere, LCE, no ring, latency off) —
    :mod:`repro.network.fastpath` proves bit-identity with the walk.
    """
    from repro.network.fastpath import fastpath_eligible, run_fastpath
    if fastpath_eligible(trace, config):
        return run_fastpath(trace, config, trace_name)
    return NetworkSimulator(config).run(trace, trace_name)


def run_network_cells(trace, configs: Sequence[NetworkConfig],
                      trace_name: Optional[str] = None,
                      ) -> List[NetworkResult]:
    """Run many network cells over one trace, decoding it once.

    Splits the cells into fast-path (served straight off the columnar
    arrays) and object-path groups; the object group shares a single
    materialization of the request stream instead of re-decoding the
    columnar trace per cell.
    """
    from repro.network.fastpath import fastpath_eligible, run_fastpath
    fast = [c for c in configs if fastpath_eligible(trace, c)]
    fast_ids = set(map(id, fast))
    slow = [c for c in configs if id(c) not in fast_ids]
    with _span("network_cells", cells=len(configs),
               fastpath=len(fast)):
        by_config: Dict[int, NetworkResult] = {}
        for config in fast:
            by_config[id(config)] = run_fastpath(trace, config,
                                                 trace_name)
        if slow:
            requests = (trace.requests if isinstance(trace, Trace)
                        else list(trace))
            name = (trace_name
                    or getattr(trace, "trace_name", None)
                    or getattr(trace, "name", "trace"))
            for config in slow:
                by_config[id(config)] = NetworkSimulator(config).run(
                    requests, trace_name=name)
    return [by_config[id(config)] for config in configs]
