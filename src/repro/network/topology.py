"""Cache-network topologies: nodes, links, and standard shapes.

A :class:`Topology` is a rooted forest of cache nodes over an implicit
origin: every node has a capacity, a replacement policy, and an uplink
:class:`~repro.simulation.latency.Link` toward its parent (or the
origin, for top-level nodes).  Client populations attach round-robin
to the *edge* nodes; an optional *sibling ring* marks edge nodes that
probe each other ICP-style before escalating.

The shapes the literature (and this repo's history) actually uses come
as constructors:

* :func:`single` — one cache, the degenerate network (bit-identical to
  :class:`~repro.simulation.simulator.CacheSimulator`);
* :func:`two_level` — N institutional children under one shared parent
  (the legacy :mod:`repro.simulation.hierarchy` shape);
* :func:`sibling_mesh` — flat ICP peers (the legacy
  :mod:`repro.simulation.mesh` shape);
* :func:`path` — a linear chain of caches toward the origin (the
  standard ICN evaluation shape, where LCD/ProbCache differentiate);
* :func:`tree` — a balanced k-ary tree of caches, leaves at the edge.

Topologies hold *specs*, not caches: the engine
(:class:`repro.network.engine.NetworkSimulator`) builds one
:class:`~repro.core.cache.Cache` per node at run time, so a topology
value is reusable across runs when its policies are given by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.policy import ReplacementPolicy
from repro.errors import ConfigurationError
from repro.simulation.latency import Link

PolicySpec = Union[str, ReplacementPolicy]

#: Default hops, chosen so a :func:`single` topology under the default
#: links reproduces :class:`~repro.simulation.latency.LatencyModel`'s
#: defaults exactly: 5 ms / 10 Mbit/s to the edge proxy, 70 ms /
#: 1.5 Mbit/s from the top of the network to origins, and a middle
#: ground for proxy↔proxy hops (sibling fetches, child→parent).
DEFAULT_CLIENT_LINK = Link(rtt=0.005, bandwidth=1_250_000.0)
DEFAULT_ORIGIN_LINK = Link(rtt=0.070, bandwidth=187_500.0)
DEFAULT_PEER_LINK = Link(rtt=0.010, bandwidth=1_250_000.0)


@dataclass(frozen=True)
class NodeSpec:
    """One cache node: capacity, policy, and the hop above it."""

    name: str
    capacity_bytes: int
    policy: PolicySpec = "lru"
    #: The link toward this node's parent — or toward the origin when
    #: the node is top-level.
    uplink: Link = DEFAULT_ORIGIN_LINK

    def validate(self) -> None:
        if not self.name:
            raise ConfigurationError("node needs a name")
        if self.capacity_bytes <= 0:
            raise ConfigurationError(
                f"node {self.name!r}: capacity must be positive")


@dataclass
class Topology:
    """A named graph of cache nodes over an implicit origin."""

    name: str
    nodes: Dict[str, NodeSpec]
    #: node → parent node; ``None`` parents escalate to the origin.
    parents: Dict[str, Optional[str]]
    #: Client-facing nodes; requests are dealt to them round-robin.
    edges: Tuple[str, ...]
    #: Edge nodes that probe each other (ICP) before escalating, in
    #: ring order: a home at position i probes i+1, i+2, ... mod n.
    sibling_ring: Tuple[str, ...] = ()
    client_link: Link = DEFAULT_CLIENT_LINK
    peer_link: Link = DEFAULT_PEER_LINK

    def validate(self) -> None:
        if not self.nodes:
            raise ConfigurationError("topology has no nodes")
        if not self.edges:
            raise ConfigurationError("topology has no edge nodes")
        for spec in self.nodes.values():
            spec.validate()
        for name in self.edges:
            if name not in self.nodes:
                raise ConfigurationError(f"unknown edge node {name!r}")
        for name in self.sibling_ring:
            if name not in self.nodes:
                raise ConfigurationError(
                    f"unknown sibling node {name!r}")
        if self.sibling_ring and \
                len(set(self.sibling_ring)) != len(self.sibling_ring):
            raise ConfigurationError("sibling ring repeats a node")
        for name, parent in self.parents.items():
            if name not in self.nodes:
                raise ConfigurationError(
                    f"parent map names unknown node {name!r}")
            if parent is not None and parent not in self.nodes:
                raise ConfigurationError(
                    f"node {name!r} has unknown parent {parent!r}")
        for name in self.nodes:
            if name not in self.parents:
                raise ConfigurationError(
                    f"node {name!r} missing from the parent map")
            # Walking up must reach the origin (no cycles).
            seen = set()
            node: Optional[str] = name
            while node is not None:
                if node in seen:
                    raise ConfigurationError(
                        f"cycle through node {node!r}")
                seen.add(node)
                node = self.parents[node]

    # ----- derived structure ---------------------------------------------

    def path_to_origin(self, name: str) -> List[str]:
        """Node names from ``name`` upward, origin excluded."""
        out = []
        node: Optional[str] = name
        while node is not None:
            out.append(node)
            node = self.parents[node]
        return out

    def depth(self, name: str) -> int:
        """Hops from this node up to a top-level node (0 at the top)."""
        depth = 0
        node = self.parents[name]
        while node is not None:
            depth += 1
            node = self.parents[node]
        return depth

    def level_of(self, name: str) -> int:
        """Level counted from the edge: 0 for edge nodes, rising
        toward the origin.  Distinct from :meth:`depth` only in
        irregular topologies."""
        return self._depth_from_edges().get(name, 0)

    def _depth_from_edges(self) -> Dict[str, int]:
        levels: Dict[str, int] = {}
        for edge in self.edges:
            for level, node in enumerate(self.path_to_origin(edge)):
                previous = levels.get(node)
                if previous is None or level > previous:
                    levels[node] = level
        # Nodes unreachable from any edge (unusual, but legal) sit at
        # their structural depth.
        for name in self.nodes:
            levels.setdefault(name, self.depth(name))
        return levels

    @property
    def n_caches(self) -> int:
        return len(self.nodes)

    def total_capacity_bytes(self) -> int:
        return sum(spec.capacity_bytes for spec in self.nodes.values())

    def describe(self) -> str:
        levels: Dict[int, int] = {}
        for name in self.nodes:
            level = self.level_of(name)
            levels[level] = levels.get(level, 0) + 1
        shape = " + ".join(f"{count}@L{level}"
                           for level, count in sorted(levels.items()))
        ring = f", ring of {len(self.sibling_ring)}" \
            if self.sibling_ring else ""
        return f"{self.name}: {self.n_caches} cache(s) ({shape}{ring})"


# --------------------------------------------------------------------------
# Constructors
# --------------------------------------------------------------------------

def single(capacity_bytes: int, policy: PolicySpec = "lru", *,
           name: str = "cache",
           client_link: Link = DEFAULT_CLIENT_LINK,
           origin_link: Link = DEFAULT_ORIGIN_LINK) -> Topology:
    """One cache in front of the origin — the degenerate network.

    Under leave-copy-everywhere this is reference-for-reference
    identical to the single-cache simulator (pinned by
    ``tests/network/test_equivalence.py``).
    """
    spec = NodeSpec(name=name, capacity_bytes=capacity_bytes,
                    policy=policy, uplink=origin_link)
    return Topology(name="single", nodes={name: spec},
                    parents={name: None}, edges=(name,),
                    client_link=client_link)


def two_level(child_capacity_bytes: int, parent_capacity_bytes: int,
              child_policy: PolicySpec = "lru",
              parent_policy: PolicySpec = "lru",
              n_children: int = 4, *,
              child_uplink: Link = DEFAULT_PEER_LINK,
              origin_link: Link = DEFAULT_ORIGIN_LINK,
              client_link: Link = DEFAULT_CLIENT_LINK) -> Topology:
    """N institutional children under one shared parent.

    The legacy :class:`~repro.simulation.hierarchy.HierarchySimulator`
    shape: requests are dealt to children round-robin; child misses
    escalate to the parent; parent misses go to the origin.
    """
    if n_children < 1:
        raise ConfigurationError("need at least one child")
    nodes: Dict[str, NodeSpec] = {}
    parents: Dict[str, Optional[str]] = {}
    edges = []
    for i in range(n_children):
        child = f"child{i}"
        nodes[child] = NodeSpec(name=child,
                                capacity_bytes=child_capacity_bytes,
                                policy=child_policy,
                                uplink=child_uplink)
        parents[child] = "parent"
        edges.append(child)
    nodes["parent"] = NodeSpec(name="parent",
                               capacity_bytes=parent_capacity_bytes,
                               policy=parent_policy,
                               uplink=origin_link)
    parents["parent"] = None
    return Topology(name="two-level", nodes=nodes, parents=parents,
                    edges=tuple(edges), client_link=client_link)


def sibling_mesh(proxy_capacity_bytes: int, n_proxies: int = 4,
                 policy: PolicySpec = "lru", *,
                 policies: Optional[Sequence[PolicySpec]] = None,
                 peer_link: Link = DEFAULT_PEER_LINK,
                 origin_link: Link = DEFAULT_ORIGIN_LINK,
                 client_link: Link = DEFAULT_CLIENT_LINK) -> Topology:
    """Flat ICP peers: on a local miss, ask the siblings, then origin.

    The legacy :class:`~repro.simulation.mesh.MeshSimulator` shape.
    ``policies`` overrides the shared ``policy`` with one spec per
    proxy (e.g. pre-seeded randomized policies).
    """
    if n_proxies < 2:
        raise ConfigurationError("a mesh needs at least two proxies")
    if policies is not None and len(policies) != n_proxies:
        raise ConfigurationError("need exactly one policy per proxy")
    nodes: Dict[str, NodeSpec] = {}
    parents: Dict[str, Optional[str]] = {}
    names = []
    for i in range(n_proxies):
        proxy = f"proxy{i}"
        nodes[proxy] = NodeSpec(
            name=proxy, capacity_bytes=proxy_capacity_bytes,
            policy=policies[i] if policies is not None else policy,
            uplink=origin_link)
        parents[proxy] = None
        names.append(proxy)
    return Topology(name="mesh", nodes=nodes, parents=parents,
                    edges=tuple(names), sibling_ring=tuple(names),
                    client_link=client_link, peer_link=peer_link)


def path(capacities: Sequence[int],
         policy: Union[PolicySpec, Sequence[PolicySpec]] = "lru", *,
         inner_link: Link = DEFAULT_PEER_LINK,
         origin_link: Link = DEFAULT_ORIGIN_LINK,
         client_link: Link = DEFAULT_CLIENT_LINK) -> Topology:
    """A linear chain of caches: clients → l0 → l1 → ... → origin.

    ``capacities[0]`` is the edge cache.  ``policy`` is shared, or a
    sequence giving one policy per level.  The path is the canonical
    shape where placement strategies differentiate: LCE floods every
    level with every document, LCD/ProbCache let popular documents
    sink toward the edge while the upper levels keep the long tail.
    """
    if not capacities:
        raise ConfigurationError("a path needs at least one cache")
    policies = list(policy) if isinstance(policy, (list, tuple)) \
        else [policy] * len(capacities)
    if len(policies) != len(capacities):
        raise ConfigurationError("need one policy per path level")
    nodes: Dict[str, NodeSpec] = {}
    parents: Dict[str, Optional[str]] = {}
    last = len(capacities) - 1
    for level, capacity in enumerate(capacities):
        node = f"l{level}"
        nodes[node] = NodeSpec(
            name=node, capacity_bytes=capacity,
            policy=policies[level],
            uplink=origin_link if level == last else inner_link)
        parents[node] = None if level == last else f"l{level + 1}"
    return Topology(name="path", nodes=nodes, parents=parents,
                    edges=("l0",), client_link=client_link)


def tree(capacities: Sequence[int], branching: int = 2,
         policy: Union[PolicySpec, Sequence[PolicySpec]] = "lru", *,
         inner_link: Link = DEFAULT_PEER_LINK,
         origin_link: Link = DEFAULT_ORIGIN_LINK,
         client_link: Link = DEFAULT_CLIENT_LINK) -> Topology:
    """A balanced k-ary tree of caches, leaves at the edge.

    ``capacities[0]`` is the per-leaf capacity, ``capacities[-1]`` the
    root's; a tree of depth d and branching k has ``k**(d-1)`` leaves
    and ``(k**d - 1) // (k - 1)`` caches.  ``policy`` is shared or
    per-level.  ``tree([c0, c1, c2])`` with branching 2 is the 7-cache
    binary tree (plus the origin: 8 network nodes) the network
    benchmark drives.
    """
    if not capacities:
        raise ConfigurationError("a tree needs at least one level")
    if branching < 1:
        raise ConfigurationError("branching must be >= 1")
    policies = list(policy) if isinstance(policy, (list, tuple)) \
        else [policy] * len(capacities)
    if len(policies) != len(capacities):
        raise ConfigurationError("need one policy per tree level")
    depth = len(capacities)
    nodes: Dict[str, NodeSpec] = {}
    parents: Dict[str, Optional[str]] = {}
    edges = []
    # Level 0 holds the leaves; the root is level depth-1.
    width = {level: branching ** (depth - 1 - level)
             for level in range(depth)}
    for level in range(depth - 1, -1, -1):
        for i in range(width[level]):
            node = f"l{level}n{i}"
            nodes[node] = NodeSpec(
                name=node, capacity_bytes=capacities[level],
                policy=policies[level],
                uplink=origin_link if level == depth - 1
                else inner_link)
            parents[node] = None if level == depth - 1 \
                else f"l{level + 1}n{i // branching}"
            if level == 0:
                edges.append(node)
    return Topology(name="tree", nodes=nodes, parents=parents,
                    edges=tuple(edges), client_link=client_link)


#: Topology kinds :func:`build_topology` (and the CLI / the experiment
#: service) can realize from a (kind, total capacity, n) triple.
TOPOLOGY_KINDS = ("single", "two-level", "mesh", "path", "tree")


def build_topology(kind: str, total_capacity_bytes: int, n: int = 4,
                   policy: PolicySpec = "lru") -> Topology:
    """Realize a named topology from an aggregate cache budget.

    The budget is split uniformly across cache nodes (the standard
    network-of-caches normalization: comparisons across topologies
    hold total cache bytes constant).  ``n`` means: children for
    ``two-level``, proxies for ``mesh``, chain length for ``path``,
    depth for ``tree`` (branching 2); ignored for ``single``.
    """
    if kind not in TOPOLOGY_KINDS:
        raise ConfigurationError(
            f"unknown topology {kind!r}; known: "
            + ", ".join(TOPOLOGY_KINDS))
    if total_capacity_bytes <= 0:
        raise ConfigurationError("total capacity must be positive")
    if kind == "single":
        return single(total_capacity_bytes, policy)
    if n < 1:
        raise ConfigurationError("n must be >= 1")
    if kind == "two-level":
        per_node = max(total_capacity_bytes // (n + 1), 1)
        return two_level(per_node, per_node, child_policy=policy,
                         parent_policy=policy, n_children=n)
    if kind == "mesh":
        if n < 2:
            raise ConfigurationError(
                "a mesh needs at least two proxies")
        return sibling_mesh(max(total_capacity_bytes // n, 1),
                            n_proxies=n, policy=policy)
    if kind == "path":
        per_node = max(total_capacity_bytes // n, 1)
        return path([per_node] * n, policy)
    n_caches = (2 ** n) - 1
    per_node = max(total_capacity_bytes // n_caches, 1)
    return tree([per_node] * n, branching=2, policy=policy)
