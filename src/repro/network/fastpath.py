"""Vectorized LRU/LCE network fast path over columnar traces.

A network of LRU caches under leave-copy-everywhere decomposes into
independent per-node single-cache problems: each node sees a fixed
request substream (its edges' client streams merged with its
children's miss streams), so the whole network runs as a cascade of
per-node LRU passes — leaves first, each pass emitting its miss
indices upward.  Each pass is an amortized-O(1)-per-reference scan
over python-int dicts (insertion order *is* recency order), which
also yields the node's final cache state — residents, used bytes,
evictions — for free; everything around the scans (stream merging,
per-type tallies, the network-served mask) is numpy column work.

Eligibility is checked per cell by :func:`fastpath_eligible`; the
conditions are exactly those under which the decomposition is
lossless, and ``tests/network/test_equivalence.py`` pins the results
bit-identical (every counter, every per-type tally) against the
object walk in :mod:`repro.network.engine`.

On this container (single core) the object walk moves ~250k
references/s; the cascade clears the benchmark's ≥1M aggregate
node-visits/s floor (``benchmarks/bench_network.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.network.engine import (NetworkConfig, NetworkResult,
                                  NodeResult, publish_network_telemetry)
from repro.network.strategies import LeaveCopyEverywhere
from repro.observability.trace import span as _span
from repro.simulation.metrics import RateAccumulator, TypeMetrics
from repro.simulation.vectorized import _exact_sum
from repro.types import DOCUMENT_TYPES


def fastpath_eligible(trace, config: NetworkConfig) -> bool:
    """True when the cascade is provably lossless for this cell.

    Requires: a columnar trace; LCE placement; no sibling ring; no
    latency accounting; every node running the registry ``"lru"``
    policy; per-document stable sizes (no modification misses — a
    stale drop at one node would change its miss stream); and every
    document fitting every node (no bypasses).
    """
    if not getattr(trace, "is_columnar", False):
        return False
    strategy = config.strategy
    if not (strategy == "lce"
            or isinstance(strategy, LeaveCopyEverywhere)):
        return False
    topology = config.topology
    if topology.sibling_ring or config.measure_latency:
        return False
    if any(spec.policy != "lru" for spec in topology.nodes.values()):
        return False
    if len(trace) == 0:
        return True
    sizes = trace.sizes
    doc = trace.doc_ids
    order = np.argsort(doc, kind="stable")
    d_s = doc[order]
    s_s = sizes[order]
    same_doc = d_s[1:] == d_s[:-1]
    if bool(np.any(same_doc & (s_s[1:] != s_s[:-1]))):
        return False
    max_size = int(sizes.max())
    return all(spec.capacity_bytes >= max_size
               for spec in topology.nodes.values())


def _lru_pass(doc_ids: np.ndarray, sizes: np.ndarray,
              capacity: int) -> Tuple[np.ndarray, int, int, Dict]:
    """One node's LRU life: hit mask, evictions, used bytes, state.

    The returned dict maps resident doc id → size in recency order
    (oldest first) — python dicts preserve insertion order and a hit
    reinserts, so the dict *is* the LRU list.  All byte arithmetic is
    python-int exact.  Preconditions (checked by
    :func:`fastpath_eligible`): stable per-document sizes, every
    document fits — under those this is reference-for-reference what
    :class:`~repro.core.cache.Cache` with registry ``"lru"`` does.
    """
    n = len(doc_ids)
    hit = np.zeros(n, dtype=bool)
    cache: Dict[int, int] = {}
    used = 0
    evictions = 0
    docs = doc_ids.tolist()
    size_list = sizes.tolist()
    pop = cache.pop
    for j in range(n):
        doc = docs[j]
        size = pop(doc, None)
        if size is not None:             # hit: move to most-recent
            cache[doc] = size
            hit[j] = True
            continue
        size = size_list[j]
        while used + size > capacity:
            victim = next(iter(cache))
            used -= pop(victim)
            evictions += 1
        cache[doc] = size
        used += size
    return hit, evictions, used, cache


def _tally(metrics: TypeMetrics, hit: np.ndarray, measured: np.ndarray,
           transfers: np.ndarray, codes: np.ndarray) -> None:
    """Fold one node's boolean columns into a TypeMetrics (int exact)."""
    measured_hit = hit & measured

    def fill(acc: RateAccumulator, select: np.ndarray,
             select_hit: np.ndarray) -> None:
        acc.requests += int(np.count_nonzero(select))
        acc.hits += int(np.count_nonzero(select_hit))
        acc.requested_bytes += _exact_sum(transfers[select])
        acc.hit_bytes += _exact_sum(transfers[select_hit])

    fill(metrics.overall, measured, measured_hit)
    for code, doc_type in enumerate(DOCUMENT_TYPES):
        typed = codes == code
        fill(metrics.by_type[doc_type], measured & typed,
             measured_hit & typed)


def run_fastpath(trace, config: NetworkConfig,
                 trace_name: Optional[str] = None) -> NetworkResult:
    """Run one eligible cell as a cascade of per-node LRU passes."""
    topology = config.topology
    n = len(trace)
    warmup = int(n * config.warmup_fraction)
    name = trace_name or getattr(trace, "name", "trace")
    result = NetworkResult(config=config, trace_name=name,
                           total_requests=n, warmup_requests=warmup)
    for node_name, spec in topology.nodes.items():
        result.nodes[node_name] = NodeResult(
            name=node_name, level=topology.level_of(node_name),
            capacity_bytes=spec.capacity_bytes, policy="lru")
    if n == 0:
        return result

    doc_ids = trace.doc_ids
    sizes = trace.sizes
    codes = trace.type_codes
    transfers = np.minimum(trace.transfers, sizes)
    # Per-document type, for the end-of-run placement snapshot
    # (eligibility guarantees one stable (size, type) per document).
    code_of = np.zeros(int(doc_ids.max()) + 1, dtype=codes.dtype)
    code_of[doc_ids] = codes

    edges = topology.edges
    n_edges = len(edges)
    streams: Dict[str, List[np.ndarray]] = {node: []
                                            for node in topology.nodes}
    for j, edge in enumerate(edges):
        streams[edge].append(np.arange(j, n, n_edges, dtype=np.int64))

    # Children before parents: deeper nodes first.
    order = sorted(topology.nodes,
                   key=lambda node: -topology.depth(node))
    origin_misses: List[np.ndarray] = []
    with _span("network_fastpath", topology=topology.name,
               nodes=topology.n_caches, trace=name, requests=n):
        for node_name in order:
            parts = streams[node_name]
            node = result.nodes[node_name]
            if not parts:
                continue
            idx = parts[0] if len(parts) == 1 \
                else np.sort(np.concatenate(parts))
            hit, evictions, used, residents = _lru_pass(
                doc_ids[idx], sizes[idx], node.capacity_bytes)
            miss_idx = idx[~hit]
            parent = topology.parents[node_name]
            if parent is not None:
                streams[parent].append(miss_idx)
            else:
                origin_misses.append(miss_idx)

            _tally(node.metrics, hit, idx >= warmup,
                   transfers[idx], codes[idx])
            node.hits = int(np.count_nonzero(hit))
            node.misses = len(idx) - node.hits
            node.evictions = evictions
            node.used_bytes = used
            if residents:
                r_docs = np.fromiter(residents.keys(), dtype=np.int64,
                                     count=len(residents))
                r_sizes = np.fromiter(residents.values(),
                                      dtype=np.int64,
                                      count=len(residents))
                r_codes = code_of[r_docs]
                for code, doc_type in enumerate(DOCUMENT_TYPES):
                    node.placement[doc_type] = _exact_sum(
                        r_sizes[r_codes == code])

        # Network view: served anywhere == not in any root's final
        # miss stream (those requests went to the origin).
        served = np.ones(n, dtype=bool)
        for miss_idx in origin_misses:
            served[miss_idx] = False
        measured = np.zeros(n, dtype=bool)
        measured[warmup:] = True
        _tally(result.network, served, measured, transfers, codes)
    publish_network_telemetry(result)
    return result
