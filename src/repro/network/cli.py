"""The ``network`` subcommand of the experiments CLI.

Five verbs over the general cache-network engine::

    python -m repro.experiments network run \\
        --profile dfn --topology tree --strategy probcache
    python -m repro.experiments network sweep \\
        --profile dfn --topologies two-level,mesh --policies lru,gds(1)
    python -m repro.experiments network placement \\
        --profile dfn --topology two-level --strategy lcd
    python -m repro.experiments network validate \\
        --profile dfn --irm --max-mae 0.03
    python -m repro.experiments network enqueue --root service/

Workload sources mirror the ``model`` subcommand: ``--trace PATH``
loads a trace file (columnar ``.rcol`` auto-detected), ``--profile
NAME`` generates a synthetic trace from a named workload profile.

``validate`` scores the analytical two-level tandem predictor
(:func:`repro.model.che.hierarchy_predict`) against the network
engine and exits non-zero when the combined-hit-rate mean absolute
error exceeds ``--max-mae`` — that is the CI ``network`` gate.
``enqueue`` feeds a topology × strategy × policy grid into the
durable experiment service; drain it with ``service work``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.errors import ConfigurationError, ReproError
from repro.network.engine import (NetworkConfig, NetworkResult,
                                  run_network, run_network_cells)
from repro.network.strategies import STRATEGY_NAMES, make_strategy
from repro.network.topology import TOPOLOGY_KINDS, build_topology
from repro.observability.logs import LOG_LEVELS, configure, get_logger
from repro.observability.manifest import TelemetryRun
from repro.types import DOCUMENT_TYPES

_logger = get_logger("network.cli")

PROFILE_NAMES = ("dfn", "rtp", "future")
DEFAULT_PROFILE_SCALE = 1.0 / 256.0
DEFAULT_SIZE_FRACTION = 0.02
#: Measured combined-hit-rate MAE of the tandem predictor on the
#: deterministic IRM dfn trace is ~0.025 across capacity pairs; 0.03
#: is the documented bound the CI job gates on.
DEFAULT_MAX_MAE = 0.03


def _add_workload_options(parser: argparse.ArgumentParser,
                          irm: bool = False) -> None:
    source = parser.add_argument_group("workload source")
    source.add_argument(
        "--trace", default=None, metavar="PATH",
        help="drive this trace file (squid/clf/csv/.rcol, .gz ok)")
    source.add_argument(
        "--profile", choices=PROFILE_NAMES, default=None,
        help="generate a synthetic trace from a named workload "
             "profile instead")
    source.add_argument(
        "--profile-scale", type=float, default=DEFAULT_PROFILE_SCALE,
        help="profile scale factor (default: 1/256)")
    source.add_argument(
        "--seed", type=int, default=None,
        help="override the profile's seed (also seeds the placement "
             "strategy and seedable per-node policies)")
    if irm:
        source.add_argument(
            "--irm", action="store_true",
            help="generate the reference trace under the Independent "
                 "Reference Model (the regime the tandem "
                 "approximation assumes)")


def _add_cell_options(parser: argparse.ArgumentParser) -> None:
    cell = parser.add_argument_group("network cell")
    cell.add_argument(
        "--topology", choices=TOPOLOGY_KINDS, default="two-level",
        help="network shape (default: two-level)")
    cell.add_argument(
        "--strategy", choices=STRATEGY_NAMES, default="lce",
        help="placement strategy (default: lce)")
    cell.add_argument(
        "--policy", default="lru",
        help="replacement policy at every node (default: lru)")
    cell.add_argument(
        "--size-fraction", type=float, default=DEFAULT_SIZE_FRACTION,
        help="aggregate cache budget as a fraction of the trace's "
             "distinct bytes, split uniformly across nodes "
             f"(default: {DEFAULT_SIZE_FRACTION})")
    cell.add_argument(
        "--capacity", type=int, default=None,
        help="aggregate cache budget in bytes (overrides "
             "--size-fraction)")
    cell.add_argument(
        "--n", type=int, default=4,
        help="shape parameter: children (two-level), proxies (mesh), "
             "chain length (path), depth (tree); ignored for "
             "'single' (default: 4)")


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--warmup", type=float, default=0.10,
        help="warm-up fraction excluded from measurement "
             "(default: 0.10)")
    parser.add_argument(
        "--latency", action="store_true",
        help="also run the per-link latency model and report mean "
             "latency + speedup over an always-origin baseline")
    parser.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of a table")
    obs = parser.add_argument_group("observability")
    obs.add_argument(
        "--log-level", choices=list(LOG_LEVELS), default="info",
        help="diagnostic verbosity on stderr (default: info)")
    obs.add_argument(
        "--log-json", action="store_true",
        help="emit diagnostics as JSON lines")
    obs.add_argument(
        "--telemetry-dir", default=None,
        help="write manifest.json + events.jsonl (network runs, "
             "validation verdict) here")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments network",
        description="Cache networks: one engine for single caches, "
                    "hierarchies, meshes, paths, and trees.")
    verbs = parser.add_subparsers(dest="verb", required=True)

    p_run = verbs.add_parser(
        "run", help="one network cell: per-node and network-wide "
                    "hit/byte-hit rates")
    _add_cell_options(p_run)
    _add_workload_options(p_run)
    _add_common_options(p_run)

    p_sweep = verbs.add_parser(
        "sweep", help="a topology x strategy x policy grid over one "
                      "trace, shared-pass where eligible")
    p_sweep.add_argument(
        "--topologies", default="two-level,mesh",
        help="comma-separated topology kinds (default: "
             "two-level,mesh)")
    p_sweep.add_argument(
        "--strategies", default="lce",
        help="comma-separated placement strategies (default: lce)")
    p_sweep.add_argument(
        "--policies", default="lru",
        help="comma-separated replacement policies (default: lru)")
    p_sweep.add_argument(
        "--size-fraction", type=float, default=DEFAULT_SIZE_FRACTION,
        help="aggregate budget fraction per cell "
             f"(default: {DEFAULT_SIZE_FRACTION})")
    p_sweep.add_argument(
        "--n", type=int, default=4,
        help="shape parameter passed to every topology (default: 4)")
    _add_workload_options(p_sweep)
    _add_common_options(p_sweep)

    p_place = verbs.add_parser(
        "placement", help="per-type byte-share-by-level report: "
                          "which levels each document type's "
                          "resident bytes end up at")
    _add_cell_options(p_place)
    _add_workload_options(p_place)
    _add_common_options(p_place)

    p_validate = verbs.add_parser(
        "validate", help="score the two-level tandem predictor "
                         "against the network engine")
    p_validate.add_argument(
        "--policies", default="lru",
        help="comma-separated model policies (default: lru)")
    p_validate.add_argument(
        "--n-children", type=int, default=3,
        help="children in the simulated hierarchy (default: 3; the "
             "tandem model is per-child-count agnostic under IRM)")
    p_validate.add_argument(
        "--max-mae", type=float, default=None,
        help="fail (exit 1) when the combined-hit-rate mean "
             "absolute error exceeds this tolerance (CI uses "
             f"{DEFAULT_MAX_MAE})")
    p_validate.add_argument(
        "--report", default=None, metavar="PATH",
        help="also write the full structured error report as JSON")
    _add_workload_options(p_validate, irm=True)
    _add_common_options(p_validate)

    p_enq = verbs.add_parser(
        "enqueue", help="feed a network grid into the durable "
                        "experiment service (drain with "
                        "'service work')")
    p_enq.add_argument(
        "--root", default="service/",
        help="service root directory (default: service/)")
    p_enq.add_argument("--traces", nargs="+", default=["dfn"])
    p_enq.add_argument("--scale", default="tiny",
                       help="trace scale name (default: tiny)")
    p_enq.add_argument("--topologies", nargs="+",
                       default=["two-level", "mesh"],
                       choices=list(TOPOLOGY_KINDS))
    p_enq.add_argument("--strategies", nargs="+", default=["lce"],
                       choices=list(STRATEGY_NAMES))
    p_enq.add_argument("--policies", nargs="+", default=["lru"])
    p_enq.add_argument("--size-fractions", nargs="+", type=float,
                       default=[DEFAULT_SIZE_FRACTION])
    p_enq.add_argument("--seeds", nargs="+", type=int,
                       default=[42, 1042, 2042])
    p_enq.add_argument("--n", type=int, default=4)
    p_enq.add_argument("--log-level", choices=list(LOG_LEVELS),
                       default="info")
    p_enq.add_argument("--log-json", action="store_true")
    p_enq.add_argument("--telemetry-dir", default=None)
    return parser


def _parse_list(text: str, flag: str) -> List[str]:
    values = [part.strip() for part in text.split(",") if part.strip()]
    if not values:
        raise ConfigurationError(f"{flag} lists no values")
    return values


def _load_workload(args):
    if (args.trace is None) == (args.profile is None):
        raise ConfigurationError(
            "exactly one of --trace or --profile is required")
    if args.trace is not None:
        from repro.trace.pipeline import load_trace

        return load_trace(args.trace)
    from repro.workload.generator import generate_trace
    from repro.workload.profiles import profile_by_name

    profile = profile_by_name(args.profile, scale=args.profile_scale,
                              seed=args.seed)
    temporal = "irm" if getattr(args, "irm", False) else "gaps"
    return generate_trace(profile, temporal_model=temporal)


def _resolve_capacity(args, trace) -> int:
    if getattr(args, "capacity", None) is not None:
        if args.capacity <= 0:
            raise ConfigurationError("--capacity must be positive")
        return args.capacity
    from repro.simulation.sweep import cache_sizes_from_fractions

    return cache_sizes_from_fractions(trace, [args.size_fraction])[0]


def _build_config(args, capacity: int, *, topology: str,
                  strategy: str, policy: str) -> NetworkConfig:
    seed = args.seed if args.seed is not None else 0
    return NetworkConfig(
        topology=build_topology(topology, capacity, n=args.n,
                                policy=policy),
        strategy=make_strategy(strategy, seed=seed),
        warmup_fraction=args.warmup,
        measure_latency=args.latency,
        policy_seed=args.seed)


def _format_result_table(result: NetworkResult) -> str:
    topology = result.config.topology
    lines = [
        f"{topology.name} ({result.config.strategy_name}) on "
        f"{result.trace_name}: {result.total_requests:,} requests, "
        f"{result.warmup_requests:,} warm-up",
        f"{'node':<10} {'lvl':>3} {'capacity':>14} {'policy':<10} "
        f"{'hit rate':>9} {'byte hr':>9} {'occupancy':>9}",
    ]
    for name, node in result.nodes.items():
        lines.append(
            f"{name:<10} {node.level:>3} {node.capacity_bytes:>14,} "
            f"{node.policy:<10} {node.metrics.overall.hit_rate:>9.4f} "
            f"{node.metrics.overall.byte_hit_rate:>9.4f} "
            f"{node.occupancy:>9.4f}")
    lines.append(
        f"network hit rate {result.hit_rate:.4f}  byte hit rate "
        f"{result.byte_hit_rate:.4f}  origin byte rate "
        f"{result.origin_byte_rate:.4f}")
    if result.sibling_serves:
        lines.append(f"sibling serves {result.sibling_serves:,}")
    for doc_type in DOCUMENT_TYPES:
        lines.append(
            f"  · {doc_type.value:<18} "
            f"{result.network.hit_rate(doc_type):>9.4f} "
            f"{result.network.byte_hit_rate(doc_type):>9.4f}")
    if result.latency is not None:
        lines.append(
            f"mean latency {result.latency.mean_latency() * 1e3:.2f} ms"
            f"  (origin-only baseline "
            f"{result.latency.baseline.mean * 1e3:.2f} ms, speedup "
            f"{result.latency.speedup:.2f}x)")
    return "\n".join(lines)


def _run_run(args) -> int:
    trace = _load_workload(args)
    capacity = _resolve_capacity(args, trace)
    config = _build_config(args, capacity, topology=args.topology,
                           strategy=args.strategy, policy=args.policy)
    result = run_network(trace, config)
    if args.json:
        print(json.dumps(result.as_dict(), indent=2))
    else:
        print(_format_result_table(result))
    return 0


def _run_sweep(args) -> int:
    topologies = _parse_list(args.topologies, "--topologies")
    strategies = _parse_list(args.strategies, "--strategies")
    policies = _parse_list(args.policies, "--policies")
    for kind in topologies:
        if kind not in TOPOLOGY_KINDS:
            raise ConfigurationError(
                f"unknown topology {kind!r}; known: "
                + ", ".join(TOPOLOGY_KINDS))
    trace = _load_workload(args)
    args.capacity = None
    capacity = _resolve_capacity(args, trace)
    cells = [(kind, strategy, policy)
             for kind in topologies
             for strategy in strategies
             for policy in policies]
    configs = [_build_config(args, capacity, topology=kind,
                             strategy=strategy, policy=policy)
               for kind, strategy, policy in cells]
    results = run_network_cells(trace, configs)
    if args.json:
        print(json.dumps([
            {"topology": kind, "strategy": strategy, "policy": policy,
             **result.as_dict()}
            for (kind, strategy, policy), result in zip(cells, results)
        ], indent=2))
        return 0
    lines = [
        f"{'topology':<10} {'strategy':<10} {'policy':<10} "
        f"{'hit rate':>9} {'byte hr':>9} {'edge hr':>9} "
        f"{'siblings':>9}",
    ]
    for (kind, strategy, policy), result in zip(cells, results):
        edge = result.edge_metrics()
        lines.append(
            f"{kind:<10} {strategy:<10} {policy:<10} "
            f"{result.hit_rate:>9.4f} {result.byte_hit_rate:>9.4f} "
            f"{edge.overall.hit_rate:>9.4f} "
            f"{result.sibling_serves:>9,}")
    print("\n".join(lines))
    return 0


def _run_placement(args) -> int:
    trace = _load_workload(args)
    capacity = _resolve_capacity(args, trace)
    config = _build_config(args, capacity, topology=args.topology,
                           strategy=args.strategy, policy=args.policy)
    result = run_network(trace, config)
    shares = result.placement_shares()
    levels = sorted(result.level_metrics())
    if args.json:
        print(json.dumps({
            "topology": args.topology,
            "strategy": args.strategy,
            "policy": args.policy,
            "trace_name": result.trace_name,
            "placement_shares": {
                doc_type.value: {str(level): share
                                 for level, share in by_level.items()}
                for doc_type, by_level in shares.items()},
        }, indent=2))
        return 0
    header = f"{'type':<18}" + "".join(
        f" {'level ' + str(level):>9}" for level in levels)
    lines = [
        f"resident-byte share by level — {args.topology} / "
        f"{args.strategy} / {args.policy} on {result.trace_name}",
        header,
    ]
    for doc_type in DOCUMENT_TYPES:
        by_level = shares[doc_type]
        lines.append(f"{doc_type.value:<18}" + "".join(
            f" {by_level.get(level, 0.0):>9.4f}" for level in levels))
    print("\n".join(lines))
    return 0


def _run_validate(args) -> int:
    from repro.model.validation import validate_hierarchy

    trace = _load_workload(args)
    policies = _parse_list(args.policies, "--policies")
    report = validate_hierarchy(trace, policies=policies,
                                n_children=args.n_children,
                                warmup_fraction=args.warmup)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.text())
    if args.report:
        path = report.save(args.report)
        _logger.info("hierarchy validation report written to %s", path,
                     extra={"path": str(path)})
    if args.max_mae is not None:
        mae = report.mean_absolute_error
        if mae > args.max_mae:
            _logger.error(
                "hierarchy combined MAE %.4f exceeds tolerance %.4f",
                mae, args.max_mae,
                extra={"mean_absolute_error": mae,
                       "tolerance": args.max_mae})
            return 1
        _logger.info(
            "hierarchy combined MAE %.4f within tolerance %.4f",
            mae, args.max_mae,
            extra={"mean_absolute_error": mae,
                   "tolerance": args.max_mae})
    return 0


def _run_enqueue(args) -> int:
    from repro.experiments.config import SCALES
    from repro.experiments.service import (enqueue_network_grid,
                                           open_service)

    if args.scale not in SCALES:
        raise ConfigurationError(
            f"unknown scale {args.scale!r}; known: "
            + ", ".join(SCALES))
    queue, _ = open_service(args.root)
    ids = enqueue_network_grid(
        queue, traces=args.traces, scale=SCALES[args.scale],
        topologies=args.topologies, strategies=args.strategies,
        policies=args.policies, size_fractions=args.size_fractions,
        seeds=args.seeds, n=args.n)
    print(f"enqueued {len(ids)} network trial(s); "
          f"{queue.status().pending} pending")
    return 0


_VERBS = {
    "run": _run_run,
    "sweep": _run_sweep,
    "placement": _run_placement,
    "validate": _run_validate,
    "enqueue": _run_enqueue,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    configure(level=args.log_level, json_lines=args.log_json)
    settings = {key: value for key, value in sorted(vars(args).items())
                if key not in ("log_level", "log_json",
                               "telemetry_dir") and value is not None}
    run = None
    if args.telemetry_dir:
        run = TelemetryRun(args.telemetry_dir,
                           kind=f"network-{args.verb}",
                           settings=settings)
    try:
        code = _VERBS[args.verb](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        code = 2
    except Exception:
        if run is not None:
            run.finalize("failed")
        raise
    if run is not None:
        run.finalize("complete" if code == 0 else "failed")
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
