"""Placement strategies: who keeps a copy after a fetch.

A replacement policy decides what to *evict* from one cache; a
placement strategy decides which caches along the delivery path get a
copy at all.  The engine resolves each request to a serving node (or
the origin), then asks the strategy which of the caches it passed
through should admit the document:

* **LCE** (leave-copy-everywhere) — every cache on the path admits.
  The classic web-hierarchy default, and exactly what the legacy
  hierarchy/mesh loops did implicitly by calling ``reference()`` at
  every level.
* **LCD** (leave-copy-down) — only the cache one hop below the serving
  point admits, so a document sinks one level per request and only
  genuinely popular documents reach the edge.
* **ProbCache** — each cache admits with a probability that weighs the
  path's remaining cache budget against how far the cache sits from
  the server, biasing copies toward the edge without LCD's one-level-
  per-request crawl.

Strategies are stateless apart from ProbCache's RNG; one instance can
serve a whole sweep cell but not two cells that must be independently
deterministic — :func:`make_strategy` is cheap, build one per run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ConfigurationError
from repro.network.topology import NodeSpec


class PlacementStrategy:
    """Decides which path caches admit a copy after a fetch.

    ``admit_on_probe`` is the LCE fast-coupling flag: when True the
    engine probes each cache with ``Cache.reference()`` (probe and
    admit are one call, preserving the legacy loops' exact stale-
    invalidation and eviction order); when False it probes with the
    side-effect-free ``Cache.get()`` and admits copies explicitly at
    the caches :meth:`copies` selects.
    """

    name = "base"
    admit_on_probe = False

    def copies(self, visited: Sequence[NodeSpec],
               path: Sequence[NodeSpec]) -> List[str]:
        """Names of caches that admit a copy of the fetched document.

        ``visited`` is the miss prefix — caches that were probed and
        did not hold the document, ordered edge-first.  ``path`` is
        the full cache path from the edge to the serving point's side:
        ``visited`` plus the serving cache when an upstream cache (not
        the origin) served.
        """
        raise NotImplementedError


@dataclass
class LeaveCopyEverywhere(PlacementStrategy):
    """Every cache the request passed through keeps a copy."""

    name = "lce"
    admit_on_probe = True

    def copies(self, visited: Sequence[NodeSpec],
               path: Sequence[NodeSpec]) -> List[str]:
        return [spec.name for spec in visited]


@dataclass
class LeaveCopyDown(PlacementStrategy):
    """Only the cache just below the serving point keeps a copy.

    A hit at level k plants the document at level k-1; documents
    descend one level per request, so the edge holds only documents
    requested at least ``depth`` times recently — a cheap popularity
    filter with no extra state.
    """

    name = "lcd"
    admit_on_probe = False

    def copies(self, visited: Sequence[NodeSpec],
               path: Sequence[NodeSpec]) -> List[str]:
        if not visited:
            return []
        return [visited[-1].name]


@dataclass
class ProbCache(PlacementStrategy):
    """Probabilistic caching weighted by path cache budget and depth.

    Following Psaras et al.'s ProbCache: a cache x hops from the
    server on a c-hop path admits with probability

        p(x) = TimesIn(x) * CacheWeight(x)
             = (sum of capacities from x to the edge)
               / (target_window * mean path capacity)   *   x / c

    ``TimesIn`` approximates how many copies the path can afford to
    hold (normalizing by ``target_window`` requests' worth of cache);
    ``CacheWeight`` x/c biases those copies toward the edge, since
    x counts hops *from the server* — the edge cache has the largest
    x.  Draws come from a private seeded RNG so runs are reproducible
    and two strategy instances with the same seed make identical
    decisions.
    """

    target_window: float = 10.0
    seed: int = 0

    name = "probcache"
    admit_on_probe = False

    def __post_init__(self) -> None:
        if self.target_window <= 0:
            raise ConfigurationError("target_window must be positive")
        self._rng = random.Random(self.seed)

    def copies(self, visited: Sequence[NodeSpec],
               path: Sequence[NodeSpec]) -> List[str]:
        if not visited:
            return []
        # The server sits one hop above the last probed cache; the
        # path toward it has c = len(visited) cache hops.
        c = len(visited)
        caps = [spec.capacity_bytes for spec in visited]
        mean_cap = sum(spec.capacity_bytes for spec in path) / len(path)
        chosen = []
        for k, spec in enumerate(visited):
            # visited is edge-first; cache k sits x = c - k hops from
            # the server, so the edge (k=0) carries the full weight.
            x = c - k
            times_in = sum(caps[k:]) / (self.target_window * mean_cap)
            p = min(1.0, times_in) * (x / c)
            if self._rng.random() < p:
                chosen.append(spec.name)
        return chosen


STRATEGY_NAMES = ("lce", "lcd", "probcache")


def make_strategy(name: str, *, seed: int = 0,
                  target_window: float = 10.0) -> PlacementStrategy:
    """Build a placement strategy by name.

    ``seed`` and ``target_window`` only apply to ``probcache``; they
    are accepted (and ignored) for the deterministic strategies so
    sweep code can pass them uniformly.
    """
    if name == "lce":
        return LeaveCopyEverywhere()
    if name == "lcd":
        return LeaveCopyDown()
    if name == "probcache":
        return ProbCache(target_window=target_window, seed=seed)
    raise ConfigurationError(
        f"unknown placement strategy {name!r}; known: "
        + ", ".join(STRATEGY_NAMES))
