"""Fault tolerance for long-running sweeps and experiment suites.

Four orthogonal pieces, combined by the parallel sweep runner
(:mod:`repro.simulation.parallel`), the suite runner
(:func:`repro.experiments.runner.run_suite`), and the durable
experiment service (:mod:`repro.experiments.service`):

* :mod:`~repro.resilience.retry` — deterministic capped-exponential
  backoff with an injectable sleep, for transient failures;
* :mod:`~repro.resilience.checkpoint` — atomic, fsync'd
  write-then-rename JSON checkpoints keyed by a config hash, for
  crash-safe resume;
* :mod:`~repro.resilience.lease` — lease files with heartbeat renewal
  and stale-lease reclamation, so work claimed by a killed or hung
  process is automatically taken over;
* :mod:`~repro.resilience.faults` — a deterministic fault-injection
  harness (crash / hang / raise / corrupt on chosen attempts, plus
  on-disk truncate / bit-flip / torn-write damage) that the tests use
  to prove the other three actually work.
"""

from repro.resilience.checkpoint import CheckpointStore, config_hash
from repro.resilience.faults import (
    CORRUPT_MARKER,
    FAULT_KINDS,
    FILE_CORRUPTION_MODES,
    FaultInjector,
    FaultSpec,
    InjectedFaultError,
    corrupt_file,
)
from repro.resilience.lease import (
    Heartbeat,
    Lease,
    LeaseManager,
    default_owner,
)
from repro.resilience.retry import RetryPolicy, retry_call

__all__ = [
    "CheckpointStore",
    "config_hash",
    "RetryPolicy",
    "retry_call",
    "FaultInjector",
    "FaultSpec",
    "InjectedFaultError",
    "FAULT_KINDS",
    "FILE_CORRUPTION_MODES",
    "CORRUPT_MARKER",
    "corrupt_file",
    "Lease",
    "LeaseManager",
    "Heartbeat",
    "default_owner",
]
