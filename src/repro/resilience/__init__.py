"""Fault tolerance for long-running sweeps and experiment suites.

Three orthogonal pieces, combined by the parallel sweep runner
(:mod:`repro.simulation.parallel`) and the suite runner
(:func:`repro.experiments.runner.run_suite`):

* :mod:`~repro.resilience.retry` — deterministic capped-exponential
  backoff with an injectable sleep, for transient failures;
* :mod:`~repro.resilience.checkpoint` — atomic write-then-rename JSON
  checkpoints keyed by a config hash, for crash-safe resume;
* :mod:`~repro.resilience.faults` — a deterministic fault-injection
  harness (crash / hang / raise / corrupt on chosen attempts) that the
  tests use to prove the first two actually work.
"""

from repro.resilience.checkpoint import CheckpointStore, config_hash
from repro.resilience.faults import (
    CORRUPT_MARKER,
    FAULT_KINDS,
    FaultInjector,
    FaultSpec,
    InjectedFaultError,
)
from repro.resilience.retry import RetryPolicy, retry_call

__all__ = [
    "CheckpointStore",
    "config_hash",
    "RetryPolicy",
    "retry_call",
    "FaultInjector",
    "FaultSpec",
    "InjectedFaultError",
    "FAULT_KINDS",
    "CORRUPT_MARKER",
]
