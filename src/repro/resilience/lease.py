"""Lease files: crash-safe exclusive claims on named work units.

A lease is a single JSON file created with ``O_CREAT | O_EXCL`` — the
filesystem arbitrates racing claimants, no server required, and the
mechanism works across processes and (on a shared filesystem) across
machines.  The holder renews the lease periodically; a holder that is
SIGKILL'd, hung, or partitioned simply stops renewing, and once
``ttl_seconds`` elapse without a renewal any other worker may *reclaim*
the lease and take over the work unit.

Reclaims replace the lease file atomically and then **read it back**:
of two workers that race to reclaim the same stale lease, exactly one
finds its own token in the file afterwards and wins; the loser walks
away without ever believing it held the lease.  Renewals perform the
same read-back, so a holder whose lease was reclaimed out from under it
(e.g. after a long GC pause) learns about it on its next heartbeat via
:class:`~repro.errors.LeaseLostError` instead of silently double-owning
the unit.

Staleness is judged by comparing the ``renewed_at`` stamp inside the
file against the local clock, so cross-machine reclamation assumes
loosely synchronized clocks; keep ``ttl_seconds`` comfortably larger
than the expected skew.
"""

from __future__ import annotations

import json
import os
import re
import socket
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.errors import LeaseError, LeaseLostError
from repro.observability import events as _events
from repro.observability.logs import get_logger

PathLike = Union[str, Path]

_logger = get_logger("resilience.lease")

_SAFE_CHARS = re.compile(r"[^A-Za-z0-9._-]")


def default_owner() -> str:
    """A human-readable owner id unique to this process."""
    try:
        host = socket.gethostname()
    except OSError:  # pragma: no cover - exotic hosts
        host = "unknown"
    return f"{host}-{os.getpid()}"


@dataclass(frozen=True)
class Lease:
    """A held claim on one work unit.

    The ``token`` is the proof of ownership: every renew/release
    verifies that the file on disk still carries it.
    """

    name: str
    owner: str
    token: str
    path: Path
    ttl_seconds: float
    #: Owner displaced by a reclaim, None for a fresh acquisition.
    reclaimed_from: Optional[str] = None


class LeaseManager:
    """Acquire, renew, reclaim, and release leases in one directory.

    Args:
        directory: Created if missing; holds one ``<name>.lease`` file
            per claimed unit.
        owner: Identity stamped into acquired leases (defaults to
            ``<hostname>-<pid>``).
        ttl_seconds: Age of the last renewal beyond which a lease is
            stale and may be reclaimed by anyone.
        clock: Injectable time source (tests freeze it).
    """

    def __init__(self, directory: PathLike, owner: Optional[str] = None,
                 ttl_seconds: float = 30.0,
                 clock: Callable[[], float] = time.time):
        if ttl_seconds <= 0:
            raise LeaseError("ttl_seconds must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.owner = owner if owner is not None else default_owner()
        self.ttl_seconds = float(ttl_seconds)
        self._clock = clock

    def path_for(self, name: str) -> Path:
        return self.directory / f"{_SAFE_CHARS.sub('_', name)[:120]}.lease"

    # -- inspection -------------------------------------------------------

    def holder(self, name: str) -> Optional[dict]:
        """The current lease file's content, or None when unclaimed or
        unreadable (a torn lease write counts as unclaimed-but-stale)."""
        try:
            return json.loads(self.path_for(name).read_text())
        except (OSError, ValueError):
            return None

    def is_stale(self, name: str) -> bool:
        """True when a lease file exists but stopped being renewed.

        A lease file that cannot be parsed (torn write by a crashing
        claimant) is stale by definition.
        """
        path = self.path_for(name)
        if not path.exists():
            return False
        current = self.holder(name)
        if current is None:
            return True
        return self._clock() - current.get("renewed_at", 0.0) \
            > self.ttl_seconds

    def active(self) -> List[str]:
        """Names with a live (non-stale) lease file."""
        names = []
        for path in sorted(self.directory.glob("*.lease")):
            name = path.name[:-len(".lease")]
            if not self.is_stale(name) and path.exists():
                names.append(name)
        return names

    # -- lifecycle --------------------------------------------------------

    def _payload(self, name: str, token: str) -> Dict[str, object]:
        now = self._clock()
        return {"name": name, "owner": self.owner, "token": token,
                "ttl_seconds": self.ttl_seconds,
                "acquired_at": now, "renewed_at": now}

    def _write_replace(self, path: Path, payload: dict) -> None:
        # No fsync on purpose: leases coordinate *live* processes
        # through the (coherent) page cache.  After a power loss every
        # lease is stale by definition, so durability buys nothing and
        # the fsyncs would tax every claim in the worker hot path.
        tmp = path.with_name(
            f".{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp")
        with open(tmp, "w", encoding="utf-8") as stream:
            json.dump(payload, stream)
            stream.flush()
        os.replace(tmp, path)

    def _owns(self, path: Path, token: str) -> bool:
        """Read back the lease file and check our token survived."""
        try:
            return json.loads(path.read_text()).get("token") == token
        except (OSError, ValueError):
            return False

    def acquire(self, name: str) -> Optional[Lease]:
        """Claim ``name``; reclaim it if its lease is stale.

        Returns None when another owner holds a live lease (or wins the
        reclaim race).  Never blocks.
        """
        path = self.path_for(name)
        token = uuid.uuid4().hex
        payload = self._payload(name, token)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return self._try_reclaim(name, path, token, payload)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as stream:
                json.dump(payload, stream)
                stream.flush()
        except OSError as exc:
            raise LeaseError(
                f"cannot write lease {name!r}: {exc}") from exc
        _events.emit("lease_acquired", name=name, owner=self.owner)
        _logger.debug("lease acquired: %s", name,
                      extra={"lease": name, "owner": self.owner})
        return Lease(name=name, owner=self.owner, token=token, path=path,
                     ttl_seconds=self.ttl_seconds)

    def _try_reclaim(self, name: str, path: Path, token: str,
                     payload: dict) -> Optional[Lease]:
        current = self.holder(name)
        if current is not None:
            age = self._clock() - current.get("renewed_at", 0.0)
            if age <= self.ttl_seconds:
                return None  # live lease held by someone else
        if not path.exists():
            # Holder released between our existence check and now; a
            # recursive retry keeps the create-exclusive arbitration.
            return self.acquire(name)
        previous_owner = (current or {}).get("owner", "unknown")
        try:
            self._write_replace(path, payload)
        except OSError as exc:
            raise LeaseError(
                f"cannot reclaim lease {name!r}: {exc}") from exc
        # Two reclaimers can both replace; the read-back elects exactly
        # the one whose token landed last.
        if not self._owns(path, token):
            return None
        _events.emit("lease_reclaimed", name=name, owner=self.owner,
                     previous_owner=previous_owner)
        _logger.warning("stale lease reclaimed: %s (was %s)",
                        name, previous_owner,
                        extra={"lease": name, "owner": self.owner,
                               "previous_owner": previous_owner})
        return Lease(name=name, owner=self.owner, token=token, path=path,
                     ttl_seconds=self.ttl_seconds,
                     reclaimed_from=previous_owner)

    def renew(self, lease: Lease) -> Lease:
        """Refresh the renewal stamp; raises
        :class:`~repro.errors.LeaseLostError` if the lease was reclaimed
        or removed underneath us."""
        if not self._owns(lease.path, lease.token):
            _events.emit("lease_lost", name=lease.name, owner=self.owner)
            raise LeaseLostError(
                f"lease {lease.name!r} is no longer held by "
                f"{self.owner!r}")
        payload = self._payload(lease.name, lease.token)
        try:
            self._write_replace(lease.path, payload)
        except OSError as exc:
            raise LeaseError(
                f"cannot renew lease {lease.name!r}: {exc}") from exc
        if not self._owns(lease.path, lease.token):
            # We raced a reclaimer; its replace landed after ours.
            _events.emit("lease_lost", name=lease.name, owner=self.owner)
            raise LeaseLostError(
                f"lease {lease.name!r} was reclaimed during renewal")
        _events.emit("lease_renewed", name=lease.name, owner=self.owner)
        return lease

    def release(self, lease: Lease) -> bool:
        """Drop the lease; True if we still held it, False if it was
        already reclaimed (the file is left to its new owner)."""
        if not self._owns(lease.path, lease.token):
            return False
        try:
            lease.path.unlink()
        except FileNotFoundError:
            return False
        return True


class Heartbeat:
    """A daemon thread that renews one lease until stopped.

    Renewal happens every ``interval`` seconds (default: a third of the
    lease TTL, so two consecutive missed beats still leave slack).  If
    a renewal discovers the lease was reclaimed, the thread stops and
    sets :attr:`lost`; the worker should check it before committing
    side effects it assumed were exclusive.
    """

    def __init__(self, manager: LeaseManager, lease: Lease,
                 interval: Optional[float] = None):
        self.manager = manager
        self.lease = lease
        self.interval = (interval if interval is not None
                         else max(lease.ttl_seconds / 3.0, 0.05))
        self.lost = False
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"lease-heartbeat-{lease.name}",
            daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.manager.renew(self.lease)
            except LeaseLostError:
                self.lost = True
                return
            except LeaseError:  # pragma: no cover - transient I/O
                _logger.warning("heartbeat renew failed for %s",
                                self.lease.name,
                                extra={"lease": self.lease.name})

    def start(self) -> "Heartbeat":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "Heartbeat":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
