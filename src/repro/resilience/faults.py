"""Deterministic fault injection for sweeps and chaos tests.

A :class:`FaultInjector` is a picklable, immutable plan: *which* work
unit fails, *how* (hard process crash, hang, transient exception, or a
corrupt result payload), and on *which attempt numbers*.  Decisions
are a pure function of ``(key, attempt)`` — no randomness, no shared
state — so an injected failure reproduces exactly across processes and
reruns, and a retried cell succeeds deterministically once its listed
attempts are spent.

The parallel sweep runner threads an injector into its workers; tests
use it to prove crash recovery and timeout handling end to end, and
chaos runs can use it against full experiment suites.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.errors import ConfigurationError, WorkerCrashError
from repro.observability.logs import get_logger

_logger = get_logger("resilience.faults")

#: Supported fault kinds.
FAULT_KINDS = ("crash", "hang", "raise", "corrupt")

#: Supported on-disk corruption modes for :func:`corrupt_file`.
FILE_CORRUPTION_MODES = ("truncate", "bitflip", "torn")

#: Marker planted in corrupted payloads (tests can assert on it).
CORRUPT_MARKER = "__fault_injected_corruption__"


class InjectedFaultError(WorkerCrashError):
    """A transient failure raised on purpose by the fault harness."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    Attributes:
        key: Work-unit key the fault targets (the sweep runner uses
            ``"<policy>@<capacity>"``).
        kind: ``"crash"`` kills the worker process outright (the
            parent sees a broken pool), ``"hang"`` sleeps past any
            sane cell timeout, ``"raise"`` raises a transient
            :class:`InjectedFaultError` (worker survives), and
            ``"corrupt"`` returns a mangled result payload.
        attempts: Attempt numbers (1-based) on which the fault fires;
            later attempts succeed, which is what lets retry tests
            converge.
        hang_seconds: Sleep length for ``"hang"`` faults.
    """

    key: str
    kind: str = "raise"
    attempts: Tuple[int, ...] = (1,)
    hang_seconds: float = 3600.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; "
                f"known: {', '.join(FAULT_KINDS)}")
        if any(a < 1 for a in self.attempts):
            raise ConfigurationError("attempt numbers are 1-based")

    def fires_on(self, key: str, attempt: int) -> bool:
        return key == self.key and attempt in self.attempts


@dataclass(frozen=True)
class FaultInjector:
    """An immutable set of planned faults, safe to ship to workers."""

    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    @classmethod
    def of(cls, *specs: FaultSpec) -> "FaultInjector":
        return cls(specs=tuple(specs))

    @classmethod
    def crash_once(cls, key: str) -> "FaultInjector":
        """Worker dies on the key's first attempt, succeeds after."""
        return cls.of(FaultSpec(key=key, kind="crash"))

    @classmethod
    def hang_once(cls, key: str,
                  hang_seconds: float = 3600.0) -> "FaultInjector":
        return cls.of(FaultSpec(key=key, kind="hang",
                                hang_seconds=hang_seconds))

    @classmethod
    def raise_once(cls, key: str) -> "FaultInjector":
        return cls.of(FaultSpec(key=key, kind="raise"))

    @classmethod
    def corrupt_once(cls, key: str) -> "FaultInjector":
        return cls.of(FaultSpec(key=key, kind="corrupt"))

    def find(self, key: str, attempt: int) -> Optional[FaultSpec]:
        for spec in self.specs:
            if spec.fires_on(key, attempt):
                return spec
        return None

    def on_start(self, key: str, attempt: int) -> None:
        """Fire any pre-execution fault for this (key, attempt).

        Called inside the worker before the real work runs.  ``crash``
        exits the process without cleanup (indistinguishable from an
        OOM kill or segfault from the parent's point of view);
        ``hang`` blocks; ``raise`` raises.
        """
        spec = self.find(key, attempt)
        if spec is None:
            return
        _logger.warning("injected %s fault firing on %s attempt %d",
                        spec.kind, key, attempt,
                        extra={"kind": spec.kind, "key": key,
                               "attempt": attempt})
        if spec.kind == "crash":
            os._exit(113)
        elif spec.kind == "hang":
            time.sleep(spec.hang_seconds)
        elif spec.kind == "raise":
            raise InjectedFaultError(
                f"injected transient fault on {key!r} attempt {attempt}")

    def on_result(self, key: str, attempt: int, payload: dict) -> dict:
        """Apply any post-execution (``corrupt``) fault to a payload."""
        spec = self.find(key, attempt)
        if spec is not None and spec.kind == "corrupt":
            return {CORRUPT_MARKER: True, "key": key, "attempt": attempt}
        return payload


def corrupt_file(path: Union[str, Path], mode: str = "truncate",
                 seed: int = 0) -> None:
    """Deterministically damage a file on disk, simulating the three
    crash/medium failures a durable store must survive.

    Modes:
        ``"truncate"``: cut the file at a seeded offset in its second
            half — an interrupted write that lost the tail.
        ``"bitflip"``: flip one bit at each of a few seeded offsets —
            silent media corruption a CRC must catch.
        ``"torn"``: keep only a prefix of the final line — the torn
            append a SIGKILL'd (or power-lost) writer leaves behind.

    Decisions are a pure function of ``seed`` and the file size, so
    chaos tests reproduce exactly.
    """
    if mode not in FILE_CORRUPTION_MODES:
        raise ConfigurationError(
            f"unknown corruption mode {mode!r}; "
            f"known: {', '.join(FILE_CORRUPTION_MODES)}")
    path = Path(path)
    data = path.read_bytes()
    if not data:
        return
    rng = random.Random(seed)
    if mode == "truncate":
        cut = rng.randrange(len(data) // 2, len(data)) or 1
        damaged = data[:cut]
    elif mode == "bitflip":
        damaged = bytearray(data)
        for _ in range(max(1, min(4, len(data)))):
            offset = rng.randrange(len(damaged))
            damaged[offset] ^= 1 << rng.randrange(8)
        damaged = bytes(damaged)
    else:  # torn: last line loses its tail (and its newline)
        head, _, last = data.rstrip(b"\n").rpartition(b"\n")
        keep = rng.randrange(1, len(last)) if len(last) > 1 else 1
        damaged = (head + b"\n" if head else b"") + last[:keep]
    path.write_bytes(damaged)
    _logger.warning("injected %s corruption into %s", mode, path.name,
                    extra={"mode": mode, "path": str(path)})
