"""Atomic JSON checkpoints for long-running sweeps and suites.

Each completed unit of work (a sweep cell, an experiment) is saved as
one JSON file, written to a temp file and ``os.replace``-d into place
so a crash mid-write never leaves a truncated checkpoint behind.
Checkpoints carry the hash of the configuration that produced them; a
resume under different settings is detected and rejected instead of
silently mixing stale results into a fresh run.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import re
import time
import zlib
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.errors import CheckpointError
from repro.observability.logs import get_logger

PathLike = Union[str, Path]

_logger = get_logger("resilience.checkpoint")

_SAFE_CHARS = re.compile(r"[^A-Za-z0-9._-]")
_FORMAT_VERSION = 1

#: Temp files older than this are leftovers of a crashed writer and are
#: swept when a store opens; younger ones may belong to a live writer.
_TMP_SWEEP_AGE_SECONDS = 60.0

#: Per-process counter making concurrent same-key writers collide-free.
_tmp_counter = itertools.count()


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry so a completed rename survives power
    loss (fsync of the file alone only pins its *contents*)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def config_hash(config: object) -> str:
    """Stable hash of any JSON-serializable configuration object.

    Keys are sorted and floats rendered by ``json`` so the same logical
    config hashes identically across processes and Python hash seeds.
    """
    try:
        canonical = json.dumps(config, sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise CheckpointError(f"config is not hashable: {exc}") from exc
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _content_crc(key: str, config_digest: Optional[str],
                 payload: object) -> str:
    """CRC-32 over the envelope's semantic content (canonical JSON), so
    silent media corruption — a bit flip that still parses — is caught
    on load instead of mixed into a resume."""
    canonical = json.dumps(
        {"key": key, "config_hash": config_digest, "payload": payload},
        sort_keys=True, separators=(",", ":"))
    return format(zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF,
                  "08x")


def _filename(key: str) -> str:
    """Filesystem-safe, collision-free name for a checkpoint key.

    Keys like ``"gd*(1)@524288"`` contain characters that are unsafe in
    filenames; the readable prefix keeps directories greppable and the
    key-hash suffix guarantees distinct keys never collide.
    """
    safe = _SAFE_CHARS.sub("_", key)[:80]
    digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:10]
    return f"{safe}.{digest}.json"


class CheckpointStore:
    """A directory of atomic, config-hash-validated JSON checkpoints."""

    def __init__(self, directory: PathLike):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._sweep_stale_tmp()

    def _sweep_stale_tmp(self, max_age: float = _TMP_SWEEP_AGE_SECONDS
                         ) -> int:
        """Remove temp files abandoned by crashed writers.

        Only files older than ``max_age`` go: a younger one may be a
        concurrent writer's in-flight save, which must not be yanked
        out from under its ``os.replace``.
        """
        now = time.time()
        removed = 0
        for tmp in self.directory.glob("*.tmp"):
            try:
                if now - tmp.stat().st_mtime <= max_age:
                    continue
                tmp.unlink()
            except FileNotFoundError:
                continue  # another opener swept it first
            removed += 1
        if removed:
            _logger.info("swept %d stale checkpoint temp file(s)",
                         removed, extra={"removed": removed,
                                         "path": str(self.directory)})
        return removed

    def path_for(self, key: str) -> Path:
        return self.directory / _filename(key)

    def save(self, key: str, payload: dict,
             config_digest: Optional[str] = None) -> Path:
        """Atomically and durably persist ``payload`` under ``key``.

        The temp name embeds the pid and a per-process counter so two
        processes (or threads) saving the same key never stomp each
        other's half-written temp file; the file and its directory are
        fsync'd around the rename so a checkpoint reported saved
        survives power loss.
        """
        envelope = {
            "version": _FORMAT_VERSION,
            "key": key,
            "config_hash": config_digest,
            "payload": payload,
            "crc": _content_crc(key, config_digest, payload),
        }
        target = self.path_for(key)
        tmp = target.with_name(
            f"{target.name}.{os.getpid()}.{next(_tmp_counter)}.tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as stream:
                stream.write(json.dumps(envelope, indent=2))
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(tmp, target)
            _fsync_dir(self.directory)
        except OSError as exc:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise CheckpointError(
                f"cannot write checkpoint {key!r}: {exc}") from exc
        _logger.debug("checkpoint saved: %s", key,
                      extra={"key": key, "path": str(target)})
        return target

    def load(self, key: str,
             expected_config_digest: Optional[str] = None) -> dict:
        """Load and validate the payload saved under ``key``.

        Raises :class:`~repro.errors.CheckpointError` if the checkpoint
        is missing, corrupt, or was written under a different config
        hash than ``expected_config_digest``.
        """
        envelope = self._read_envelope(self.path_for(key))
        if envelope.get("key") != key:
            raise CheckpointError(
                f"checkpoint key mismatch: wanted {key!r}, "
                f"file holds {envelope.get('key')!r}")
        if (expected_config_digest is not None
                and envelope.get("config_hash") != expected_config_digest):
            raise CheckpointError(
                f"checkpoint {key!r} was written under config hash "
                f"{envelope.get('config_hash')!r}, expected "
                f"{expected_config_digest!r}; refusing to resume with "
                f"mismatched settings (use a fresh --checkpoint-dir)")
        return envelope["payload"]

    def has(self, key: str) -> bool:
        return self.path_for(key).exists()

    def completed_keys(self) -> List[str]:
        """Keys of every readable checkpoint in the directory."""
        return sorted(envelope["key"] for _, envelope in self._envelopes())

    def completed(self,
                  expected_config_digest: Optional[str] = None
                  ) -> Dict[str, dict]:
        """key → payload for every checkpoint matching the config hash.

        Checkpoints from other config hashes are ignored (not an
        error): a shared checkpoint dir may legitimately hold runs at
        several scales.
        """
        out: Dict[str, dict] = {}
        for _, envelope in self._envelopes():
            if (expected_config_digest is not None and
                    envelope.get("config_hash") != expected_config_digest):
                continue
            out[envelope["key"]] = envelope["payload"]
        return out

    def delete(self, key: str) -> None:
        try:
            self.path_for(key).unlink()
        except FileNotFoundError:
            pass

    def clear(self) -> int:
        """Remove every checkpoint file (temp leftovers included);
        returns how many were removed."""
        removed = 0
        for pattern in ("*.json", "*.tmp"):
            for path in self.directory.glob(pattern):
                try:
                    path.unlink()
                except FileNotFoundError:
                    continue
                removed += 1
        return removed

    def _envelopes(self) -> Iterator[tuple]:
        for path in sorted(self.directory.glob("*.json")):
            try:
                yield path, self._read_envelope(path)
            except CheckpointError as exc:
                # Unreadable strays don't poison a resume scan.
                _logger.warning("skipping unreadable checkpoint %s: %s",
                                path.name, exc,
                                extra={"path": str(path)})
                continue

    def _read_envelope(self, path: Path) -> dict:
        if not path.exists():
            raise CheckpointError(f"no checkpoint at {path}")
        try:
            envelope = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise CheckpointError(
                f"corrupt checkpoint {path.name}: {exc}") from exc
        if (not isinstance(envelope, dict) or "payload" not in envelope
                or "key" not in envelope):
            raise CheckpointError(
                f"checkpoint {path.name} lacks the expected envelope")
        # Envelopes written before CRCs existed stay loadable; any
        # envelope that carries one must verify.
        if "crc" in envelope and envelope["crc"] != _content_crc(
                envelope["key"], envelope.get("config_hash"),
                envelope["payload"]):
            raise CheckpointError(
                f"corrupt checkpoint {path.name}: content CRC mismatch")
        return envelope
