"""Deterministic retry with capped exponential backoff.

The sweep and suite runners retry *transient* failures — worker
crashes, cell timeouts, corrupt payloads — whose reruns are safe
because every cell is a pure function of its config and the trace.
Backoff is deterministic (no jitter): delays are reproducible, and the
sleep/clock are injectable so tests run instantly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Type, TypeVar

from repro.errors import ConfigurationError
from repro.observability.logs import get_logger

T = TypeVar("T")

_logger = get_logger("resilience.retry")


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry and how long to wait between attempts.

    Attributes:
        max_retries: Retries *after* the first attempt (0 = one try).
        base_delay: Delay before the first retry, in seconds.
        backoff: Multiplier applied per subsequent retry.
        max_delay: Cap on any single delay.
    """

    max_retries: int = 2
    base_delay: float = 0.1
    backoff: float = 2.0
    max_delay: float = 30.0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("delays must be >= 0")
        if self.backoff < 1.0:
            raise ConfigurationError("backoff must be >= 1")

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def delay(self, retry_number: int) -> float:
        """Delay before retry ``retry_number`` (1-based)."""
        if retry_number < 1:
            raise ConfigurationError("retry_number is 1-based")
        raw = self.base_delay * self.backoff ** (retry_number - 1)
        return min(raw, self.max_delay)

    def delays(self) -> List[float]:
        """The full deterministic backoff schedule."""
        return [self.delay(n) for n in range(1, self.max_retries + 1)]


def retry_call(fn: Callable[[], T],
               policy: RetryPolicy = RetryPolicy(),
               retry_on: Tuple[Type[BaseException], ...] = (Exception,),
               sleep: Callable[[float], None] = time.sleep,
               on_retry: Optional[Callable[[int, BaseException], None]]
               = None) -> T:
    """Call ``fn`` until it succeeds or the retry budget is spent.

    Args:
        fn: Zero-argument callable (bind arguments with a closure).
        policy: Attempt/backoff budget.
        retry_on: Exception types considered transient; anything else
            propagates immediately.
        sleep: Injectable sleep (pass a no-op recorder in tests).
        on_retry: Invoked with (upcoming_attempt_number, exception)
            before each retry sleep.

    Raises the last exception when the budget is exhausted.
    """
    last: Optional[BaseException] = None
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn()
        except retry_on as exc:
            last = exc
            if attempt == policy.max_attempts:
                raise
            delay = policy.delay(attempt)
            _logger.warning(
                "attempt %d/%d failed (%s: %s); retrying in %.2fs",
                attempt, policy.max_attempts, type(exc).__name__, exc,
                delay,
                extra={"attempt": attempt,
                       "max_attempts": policy.max_attempts,
                       "error_type": type(exc).__name__,
                       "delay_seconds": delay})
            if on_retry is not None:
                on_retry(attempt + 1, exc)
            sleep(delay)
    raise last  # pragma: no cover - loop always returns or raises
