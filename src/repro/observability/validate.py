"""Offline validation of a telemetry directory.

Checks that ``manifest.json`` and ``events.jsonl`` exist, parse, and
conform to the schemas in :mod:`repro.observability.manifest` and
:mod:`repro.observability.events` — every event a known type with its
required fields, sequence numbers strictly increasing, the manifest
carrying every required key.  CI runs this against the telemetry a
smoke suite emits::

    python -m repro.observability.validate telemetry-dir/

Exit status 0 means the directory is a valid, complete telemetry
record; problems are listed one per line on stderr.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Union

from repro.observability.events import validate_event
from repro.observability.manifest import (
    EVENTS_FILENAME,
    MANIFEST_FILENAME,
    MANIFEST_REQUIRED_KEYS,
)

PathLike = Union[str, Path]


def validate_manifest_dict(data: object) -> List[str]:
    """Problems with a parsed manifest; empty when it conforms."""
    if not isinstance(data, dict):
        return ["manifest is not a JSON object"]
    problems = [f"manifest missing key {key!r}"
                for key in sorted(MANIFEST_REQUIRED_KEYS - set(data))]
    status = data.get("status")
    if status == "running":
        problems.append(
            "manifest status is still 'running' (run never finalized)")
    if "settings" in data and not isinstance(data["settings"], dict):
        problems.append("manifest settings is not an object")
    return problems


def validate_events_file(path: PathLike) -> List[str]:
    """Problems with an ``events.jsonl`` file; empty when it conforms."""
    problems: List[str] = []
    last_seq = 0
    count = 0
    with open(path, "r", encoding="utf-8") as stream:
        for number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            count += 1
            try:
                event = json.loads(line)
            except ValueError as exc:
                problems.append(f"line {number}: not JSON: {exc}")
                continue
            problems.extend(f"line {number}: {p}"
                            for p in validate_event(event))
            seq = event.get("seq")
            if isinstance(seq, int):
                if seq <= last_seq:
                    problems.append(
                        f"line {number}: seq {seq} not increasing "
                        f"(previous {last_seq})")
                last_seq = seq
    if count == 0:
        problems.append("events.jsonl holds no events")
    return problems


def validate_telemetry_dir(directory: PathLike) -> List[str]:
    """All problems found in one telemetry directory."""
    directory = Path(directory)
    if not directory.is_dir():
        return [f"{directory} is not a directory"]
    problems: List[str] = []

    manifest_path = directory / MANIFEST_FILENAME
    if not manifest_path.exists():
        problems.append(f"missing {MANIFEST_FILENAME}")
    else:
        try:
            manifest = json.loads(manifest_path.read_text())
        except ValueError as exc:
            problems.append(f"{MANIFEST_FILENAME}: not JSON: {exc}")
        else:
            problems.extend(validate_manifest_dict(manifest))

    events_path = directory / EVENTS_FILENAME
    if not events_path.exists():
        problems.append(f"missing {EVENTS_FILENAME}")
    else:
        problems.extend(f"{EVENTS_FILENAME}: {p}"
                        for p in validate_events_file(events_path))
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability.validate",
        description="Validate a telemetry directory "
                    "(manifest.json + events.jsonl).")
    parser.add_argument("directory", help="telemetry directory to check")
    args = parser.parse_args(argv)
    problems = validate_telemetry_dir(args.directory)
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    events_path = Path(args.directory) / EVENTS_FILENAME
    count = sum(1 for line in events_path.read_text().splitlines()
                if line.strip())
    print(f"OK: valid manifest and {count} events in {args.directory}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
