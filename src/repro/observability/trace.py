"""Hierarchical span tracing over the event stream.

A *span* brackets one named unit of work — a simulation phase, a
shared-pass sweep, one service trial — and records where it sits in
the call tree: every span carries a ``trace_id`` shared by the whole
tree, its own ``span_id``, and the ``parent_id`` of the span it ran
inside.  Spans are emitted as two events into the process-wide event
sink (``events.jsonl``): ``span_started`` when the work begins (so a
live dashboard can show what a worker is doing *right now*) and
``span`` when it ends, carrying the start timestamp, duration, status,
and attributes.  Reading the events back therefore reconstructs a full
waterfall: which phase of which pass of which sweep the wall-time went
to.

Like the metrics registry, the default tracer is a shared no-op: an
un-enabled ``span(...)`` call costs one attribute lookup and returns a
stateless null context manager, so the library brackets its phases
unconditionally and pays nothing until :func:`enable_tracing` swaps in
a real :class:`Tracer`.  Spans wrap *phases*, never per-request work,
so even an enabled tracer adds a handful of events per pass.

Crossing processes: a parent serializes its position with
:func:`inject` and ships the little context dict to the worker (as a
plain argument); the worker calls :func:`adopt` after enabling its own
tracer, and every root span it opens then parents to the remote span —
one trial's wall-time decomposes across the supervisor and all of its
workers, even though each process appends to its own event file.

Usage::

    from repro.observability.trace import enable_tracing, span

    enable_tracing()
    with span("sweep", trace="dfn") as sweep_span:
        with span("pass", cells=16):
            ...
"""

from __future__ import annotations

import threading
import uuid
from time import perf_counter, time as _wall_clock
from typing import Dict, List, Optional

from repro.observability.events import emit as _emit

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "span",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
    "inject",
    "adopt",
]

#: Span status values.
STATUS_OK = "ok"
STATUS_ERROR = "error"


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


class Span:
    """One traced unit of work; also its own context manager.

    Attributes are free-form JSON-serializable values; set them at
    creation (``span("pass", cells=16)``) or later with
    :meth:`set_attribute` while the work runs.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "status",
                 "attributes", "started_at", "duration_seconds",
                 "_tracer", "_clock_start")

    def __init__(self, tracer: "Tracer", name: str, trace_id: str,
                 span_id: str, parent_id: Optional[str],
                 attributes: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attributes = attributes
        self.status = STATUS_OK
        self.started_at = _wall_clock()
        self._clock_start = perf_counter()
        self.duration_seconds: Optional[float] = None

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def set_status(self, status: str) -> None:
        self.status = status

    @property
    def ended(self) -> bool:
        return self.duration_seconds is not None

    def end(self, status: Optional[str] = None) -> None:
        """Close the span and emit its ``span`` event (idempotent)."""
        if self.ended:
            return
        if status is not None:
            self.status = status
        self.duration_seconds = round(
            perf_counter() - self._clock_start, 6)
        self._tracer._on_end(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end(STATUS_ERROR if exc_type is not None else None)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, trace={self.trace_id}, "
                f"span={self.span_id}, parent={self.parent_id})")


class _NullSpan:
    """Shared, stateless do-nothing span (and context manager)."""

    __slots__ = ()
    name = "null"
    trace_id = ""
    span_id = ""
    parent_id = None
    status = STATUS_OK
    ended = True

    def set_attribute(self, key: str, value: object) -> None:
        pass

    def set_status(self, status: str) -> None:
        pass

    def end(self, status: Optional[str] = None) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Creates spans and tracks the active one per thread.

    The active-span stack is thread-local, so concurrently simulating
    threads each get a coherent parent chain; the adopted remote
    context (see :func:`adopt`) is process-wide, because a worker
    process belongs to exactly one remote parent.
    """

    enabled = True

    def __init__(self):
        self._local = threading.local()
        #: Remote parent adopted from another process, or None.
        self.remote_context: Optional[Dict[str, str]] = None

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def span(self, name: str, **attributes) -> Span:
        """Open a span under the current one (or the adopted remote
        parent, or as a new root) and emit ``span_started``."""
        stack = self._stack()
        if stack:
            parent = stack[-1]
            trace_id, parent_id = parent.trace_id, parent.span_id
        elif self.remote_context is not None:
            trace_id = self.remote_context["trace_id"]
            parent_id = self.remote_context["span_id"]
        else:
            trace_id, parent_id = _new_id(), None
        opened = Span(self, name, trace_id, _new_id(), parent_id,
                      attributes)
        stack.append(opened)
        _emit("span_started", name=name, trace_id=trace_id,
              span_id=opened.span_id, parent_id=parent_id)
        return opened

    def _on_end(self, ended: Span) -> None:
        stack = self._stack()
        if ended in stack:
            # Closing out of order (an inner span leaked) still keeps
            # the stack consistent: everything above is dropped.
            del stack[stack.index(ended):]
        _emit("span", name=ended.name, trace_id=ended.trace_id,
              span_id=ended.span_id, parent_id=ended.parent_id,
              started_at=round(ended.started_at, 6),
              duration_seconds=ended.duration_seconds,
              status=ended.status,
              attributes=dict(ended.attributes))


class NullTracer:
    """The zero-overhead default: every span is one shared no-op."""

    enabled = False
    remote_context: Optional[Dict[str, str]] = None

    def span(self, name: str, **attributes) -> _NullSpan:
        return _NULL_SPAN

    def current_span(self) -> None:
        return None


_NULL_TRACER = NullTracer()
_tracer = _NULL_TRACER


def get_tracer():
    """The process-wide tracer (a no-op unless tracing is enabled)."""
    return _tracer


def set_tracer(tracer) -> object:
    """Install ``tracer`` as the process-wide one; returns the old."""
    global _tracer
    previous = _tracer
    _tracer = tracer if tracer is not None else _NULL_TRACER
    return previous


def enable_tracing() -> Tracer:
    """Install and return a fresh real tracer."""
    tracer = Tracer()
    set_tracer(tracer)
    return tracer


def disable_tracing() -> None:
    """Restore the no-op default tracer."""
    set_tracer(_NULL_TRACER)


def span(name: str, **attributes):
    """Open a span on the process-wide tracer (no-op by default)."""
    return _tracer.span(name, **attributes)


def inject() -> Optional[Dict[str, str]]:
    """The current trace position as a picklable context dict.

    Returns None when tracing is disabled or no span is active —
    callers pass the result to worker processes unconditionally.
    """
    current = _tracer.current_span()
    if current is None:
        return None
    return {"trace_id": current.trace_id, "span_id": current.span_id}


def adopt(context: Optional[Dict[str, str]]) -> None:
    """Parent this process's future root spans to a remote span.

    A worker calls this (after :func:`enable_tracing`) with the dict a
    supervisor built via :func:`inject`; ``None`` clears the adoption.
    No-op on the null tracer.
    """
    if _tracer.enabled:
        _tracer.remote_context = (dict(context)
                                  if context is not None else None)
