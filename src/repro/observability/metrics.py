"""A lightweight in-process metrics registry.

Three instrument kinds, Prometheus-flavoured but dependency-free:

* :class:`Counter` — a monotonically increasing total;
* :class:`Gauge` — a value that can go up and down;
* :class:`Histogram` — bucketed observations with count/sum.

All instruments support labels: ``registry.counter("cells_total",
policy="lru")`` returns a distinct child per label set, and
:meth:`MetricsRegistry.collect` exports every child with its labels.

The default process-wide registry is a :class:`NullRegistry` whose
instruments are shared no-op singletons, so instrumented code pays
essentially nothing until :func:`enable_metrics` swaps in a real
registry.  The simulator additionally batches its updates (one
``inc(n)`` per run, never one per request), so the hot loop carries no
per-request metric calls at all.

Usage::

    from repro.observability import enable_metrics, get_registry

    registry = enable_metrics()
    ...  # run simulations
    for sample in registry.collect():
        print(sample)
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: Default histogram buckets, in seconds (phase timings span trace
#: parsing at milliseconds to paper-scale sweeps at hours).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10.0, 60.0, 300.0, 1800.0)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Dict[str, object]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc({amount}))")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def sample(self) -> dict:
        return {"name": self.name, "type": "counter",
                "labels": dict(self.labels), "value": self._value}


class Gauge:
    """A value that can go up and down (e.g. in-flight cells)."""

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def sample(self) -> dict:
        return {"name": self.name, "type": "gauge",
                "labels": dict(self.labels), "value": self._value}


class Histogram:
    """Bucketed observations with a running count and sum.

    ``bucket_counts[i]`` counts observations ``<= buckets[i]``
    (cumulative, Prometheus-style); observations above the last bound
    only appear in ``count``/``sum``.
    """

    __slots__ = ("name", "labels", "buckets", "_bucket_counts",
                 "_count", "_sum")

    def __init__(self, name: str, labels: LabelItems = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ConfigurationError(
                f"histogram {name!r} needs ascending, non-empty buckets")
        self.name = name
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        self._bucket_counts = [0] * len(self.buckets)
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        self._count += 1
        self._sum += value
        index = bisect.bisect_left(self.buckets, value)
        if index < len(self.buckets):
            self._bucket_counts[index] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def bucket_counts(self) -> List[int]:
        """Cumulative count per bucket bound."""
        out, running = [], 0
        for raw in self._bucket_counts:
            running += raw
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile from the bucket boundaries.

        Prometheus-style: find the bucket the target rank falls in and
        interpolate linearly between its lower and upper bound (the
        first bucket interpolates up from zero).  Observations beyond
        the last bound are only known to exceed it, so any quantile
        landing there reports the last bound — an underestimate the
        caller fixes by widening the buckets, not by trusting the tail.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(
                f"quantile must be in [0, 1], got {q!r}")
        if not self._count:
            return 0.0
        rank = q * self._count
        cumulative = 0
        for index, raw in enumerate(self._bucket_counts):
            previous = cumulative
            cumulative += raw
            if cumulative >= rank and raw:
                lower = self.buckets[index - 1] if index else 0.0
                upper = self.buckets[index]
                fraction = (rank - previous) / raw
                return lower + (upper - lower) * min(fraction, 1.0)
        return self.buckets[-1]

    def quantiles(self, qs: Sequence[float] = (0.5, 0.95, 0.99)
                  ) -> Dict[str, float]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` estimates."""
        return {f"p{round(q * 100):d}": self.quantile(q) for q in qs}

    def sample(self) -> dict:
        return {"name": self.name, "type": "histogram",
                "labels": dict(self.labels), "count": self._count,
                "sum": self._sum,
                "buckets": dict(zip(self.buckets, self.bucket_counts())),
                "quantiles": self.quantiles()}


class MetricsRegistry:
    """Creates and remembers instruments, keyed by (name, labels).

    Asking twice for the same name and label set returns the same
    instrument; asking for an existing name with a different instrument
    kind raises.  Instrument *creation* is lock-protected; updates rely
    on single-interpreter atomicity of float adds, which is all the
    single-process simulators need.
    """

    enabled = True

    def __init__(self):
        self._instruments: Dict[Tuple[str, LabelItems], object] = {}
        self._kinds: Dict[str, type] = {}
        self._lock = threading.Lock()

    def _get(self, cls, name: str, labels: Dict[str, object],
             **kwargs):
        key = (name, _label_items(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                known = self._kinds.setdefault(name, cls)
                if known is not cls:
                    raise ConfigurationError(
                        f"metric {name!r} already registered as "
                        f"{known.__name__}, cannot re-register as "
                        f"{cls.__name__}")
                instrument = cls(name, key[1], **kwargs)
                self._instruments[key] = instrument
            elif not isinstance(instrument, cls):
                raise ConfigurationError(
                    f"metric {name!r} is a "
                    f"{type(instrument).__name__}, not a {cls.__name__}")
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    def collect(self) -> List[dict]:
        """Export every instrument as a plain dict, sorted by name."""
        with self._lock:
            instruments = list(self._instruments.values())
        return sorted((i.sample() for i in instruments),
                      key=lambda s: (s["name"], sorted(s["labels"].items())))

    def as_dict(self) -> dict:
        """``{name{labels}: value-ish}`` summary for logs/manifests."""
        out = {}
        for sample in self.collect():
            labels = ",".join(f"{k}={v}"
                              for k, v in sorted(sample["labels"].items()))
            key = f"{sample['name']}{{{labels}}}" if labels \
                else sample["name"]
            if sample["type"] == "histogram":
                out[key] = {"count": sample["count"], "sum": sample["sum"]}
            else:
                out[key] = sample["value"]
        return out


class _NullInstrument:
    """Shared do-nothing instrument (all three kinds in one)."""

    __slots__ = ()
    name = "null"
    labels: LabelItems = ()
    value = 0.0
    count = 0
    sum = 0.0
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def bucket_counts(self) -> List[int]:
        return []

    def quantile(self, q: float) -> float:
        return 0.0

    def quantiles(self, qs: Sequence[float] = (0.5, 0.95, 0.99)
                  ) -> Dict[str, float]:
        return {}

    def sample(self) -> dict:
        return {"name": self.name, "type": "null", "labels": {},
                "value": 0.0}


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The zero-overhead default: every instrument is one shared no-op."""

    enabled = False

    def counter(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def collect(self) -> List[dict]:
        return []

    def as_dict(self) -> dict:
        return {}


_NULL_REGISTRY = NullRegistry()
_registry = _NULL_REGISTRY


def get_registry():
    """The process-wide registry (a no-op unless metrics are enabled)."""
    return _registry


def set_registry(registry) -> object:
    """Install ``registry`` as the process-wide one; returns the old."""
    global _registry
    previous = _registry
    _registry = registry if registry is not None else _NULL_REGISTRY
    return previous


def enable_metrics() -> MetricsRegistry:
    """Install and return a fresh real registry (idempotent per call:
    each call starts from empty instruments)."""
    registry = MetricsRegistry()
    set_registry(registry)
    return registry


def disable_metrics() -> None:
    """Restore the no-op default registry."""
    set_registry(_NULL_REGISTRY)
