"""Heartbeat/ETA progress reporting for long runs.

A :class:`ProgressReporter` prints at most one line every
``min_interval`` seconds (plus a final line on :meth:`finish`) to
stderr, so a paper-scale suite shows signs of life without flooding
the terminal::

    [suite] 7/20 (35.0%) elapsed 123s eta 229s | fig2

The reporter never touches stdout — results stay machine-parseable —
and an injectable clock/stream keeps the tests instant and silent.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, IO, Optional


def _format_seconds(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


class ProgressReporter:
    """Rate-limited progress lines with an ETA estimate."""

    def __init__(self, total: int, label: str = "progress",
                 stream: Optional[IO[str]] = None,
                 min_interval: float = 5.0,
                 clock: Callable[[], float] = time.monotonic):
        self.total = max(int(total), 0)
        self.label = label
        self._stream = stream
        self._min_interval = min_interval
        self._clock = clock
        self._started = clock()
        self._last_printed: Optional[float] = None
        self.done = 0
        self.lines_printed = 0

    def _out(self) -> IO[str]:
        return self._stream if self._stream is not None else sys.stderr

    def update(self, done: Optional[int] = None, advance: int = 1,
               detail: str = "") -> None:
        """Advance the counter; print if the heartbeat interval passed."""
        self.done = done if done is not None else self.done + advance
        now = self._clock()
        due = (self._last_printed is None
               or now - self._last_printed >= self._min_interval
               or (self.total and self.done >= self.total))
        if due:
            self._print(now, detail)

    def finish(self, detail: str = "done") -> None:
        """Always print one final line."""
        self._print(self._clock(), detail)

    def _print(self, now: float, detail: str) -> None:
        elapsed = now - self._started
        parts = [f"[{self.label}]"]
        if self.total:
            pct = 100.0 * self.done / self.total
            parts.append(f"{self.done}/{self.total} ({pct:.1f}%)")
        else:
            parts.append(f"{self.done}")
        parts.append(f"elapsed {_format_seconds(elapsed)}")
        if self.total and 0 < self.done < self.total:
            eta = elapsed / self.done * (self.total - self.done)
            parts.append(f"eta {_format_seconds(eta)}")
        if detail:
            parts.append(f"| {detail}")
        stream = self._out()
        stream.write(" ".join(parts) + "\n")
        stream.flush()
        self._last_printed = now
        self.lines_printed += 1
