"""Phase timing and opt-in cProfile capture.

:func:`phase_timer` brackets one named phase of a run — trace parsing,
warm-up, measurement, aggregation — and records its wall-clock span
into a :class:`PhaseTimings` sink plus (when metrics are enabled) a
``*_phase_seconds`` histogram, so a 2× slowdown shows up attributed to
the phase that caused it instead of as a mystery total.

:func:`maybe_profile` wraps a block in :mod:`cProfile` when enabled
and dumps binary stats to a file (inspect with ``python -m pstats``);
when disabled it is a plain no-op ``yield``, cheap enough to leave in
per-cell worker code permanently.
"""

from __future__ import annotations

import cProfile
from contextlib import contextmanager
from pathlib import Path
from time import perf_counter
from typing import Dict, Iterator, Optional, Union

from repro.observability.logs import get_logger
from repro.observability.metrics import get_registry

PathLike = Union[str, Path]

_logger = get_logger("profiling")


class PhaseTimings:
    """Accumulated wall-clock seconds per named phase."""

    __slots__ = ("_seconds",)

    def __init__(self):
        self._seconds: Dict[str, float] = {}

    def add(self, phase: str, seconds: float) -> None:
        self._seconds[phase] = self._seconds.get(phase, 0.0) + seconds

    def get(self, phase: str) -> float:
        return self._seconds.get(phase, 0.0)

    @property
    def total(self) -> float:
        return sum(self._seconds.values())

    def as_dict(self) -> Dict[str, float]:
        return dict(self._seconds)

    def __contains__(self, phase: str) -> bool:
        return phase in self._seconds

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:.4f}s"
                          for k, v in self._seconds.items())
        return f"PhaseTimings({inner})"


@contextmanager
def phase_timer(phase: str, timings: Optional[PhaseTimings] = None,
                metric: Optional[str] = None,
                log: bool = False) -> Iterator[None]:
    """Time one phase into ``timings`` (and optionally a histogram).

    Args:
        phase: Phase name (``"warmup"``, ``"measurement"``, ...).
        timings: Sink for the elapsed seconds; optional.
        metric: Histogram name to observe into when metrics are
            enabled; labeled with ``phase=<phase>``.
        log: Also emit a DEBUG log line with the elapsed time.

    The timer costs two ``perf_counter`` calls per phase, so it is
    safe around hot loops (never *inside* them).
    """
    started = perf_counter()
    try:
        yield
    finally:
        elapsed = perf_counter() - started
        if timings is not None:
            timings.add(phase, elapsed)
        if metric is not None:
            registry = get_registry()
            if registry.enabled:
                registry.histogram(metric, phase=phase).observe(elapsed)
        if log:
            _logger.debug("phase %s took %.4fs", phase, elapsed,
                          extra={"phase": phase,
                                 "seconds": round(elapsed, 6)})


@contextmanager
def maybe_profile(path: Optional[PathLike],
                  enabled: bool = True) -> Iterator[None]:
    """cProfile the block and dump stats to ``path`` when enabled.

    A falsy ``path`` or ``enabled=False`` makes this a free no-op, so
    call sites need no branching.
    """
    if not enabled or path is None:
        yield
        return
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        profiler.dump_stats(str(path))
        _logger.debug("profile written to %s", path)
