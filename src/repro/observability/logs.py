"""Structured logging for the repro library.

Every module logs through a child of the ``"repro"`` logger
(:func:`get_logger`).  The library itself never configures handlers —
a :class:`logging.NullHandler` keeps it silent by default — so
embedding applications keep full control.  CLIs and scripts call
:func:`configure` once to get either human-readable lines or JSON
lines on stderr::

    from repro.observability import configure_logging

    configure_logging(level="debug", json_lines=True)

Extra fields passed via ``logger.info("...", extra={"cell": key})``
survive into the JSON output as top-level keys, which is what makes
``--log-json`` machine-parseable end to end.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Callable, IO, Optional

ROOT_LOGGER_NAME = "repro"

#: ``LogRecord`` attributes that are bookkeeping, not user fields.
_RESERVED = frozenset(
    ("name", "msg", "args", "levelname", "levelno", "pathname",
     "filename", "module", "exc_info", "exc_text", "stack_info",
     "lineno", "funcName", "created", "msecs", "relativeCreated",
     "thread", "threadName", "processName", "process", "message",
     "asctime", "taskName"))

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}

LOG_LEVELS = tuple(_LEVELS)


def _extra_fields(record: logging.LogRecord) -> dict:
    return {key: value for key, value in record.__dict__.items()
            if key not in _RESERVED and not key.startswith("_")}


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per log line: ts, level, logger, message, extras."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        payload.update(_extra_fields(record))
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str, sort_keys=False)


class PlainFormatter(logging.Formatter):
    """``HH:MM:SS LEVEL logger: message key=value ...`` for humans."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime("%H:%M:%S", time.localtime(record.created))
        line = (f"{stamp} {record.levelname:<7} {record.name}: "
                f"{record.getMessage()}")
        extras = _extra_fields(record)
        if extras:
            line += " " + " ".join(f"{k}={v}"
                                   for k, v in sorted(extras.items()))
        if record.exc_info:
            line += "\n" + self.formatException(record.exc_info)
        return line


class _DeferredStreamHandler(logging.Handler):
    """Writes to a stream resolved per record.

    Resolving ``sys.stderr`` lazily (instead of freezing it at
    configure time) keeps logging working under test harnesses that
    swap the streams out, and after ``stderr`` redirections.
    """

    def __init__(self, stream_getter: Callable[[], IO[str]]):
        super().__init__()
        self._stream_getter = stream_getter

    def emit(self, record: logging.LogRecord) -> None:
        try:
            stream = self._stream_getter()
            stream.write(self.format(record) + "\n")
            stream.flush()
        except Exception:  # pragma: no cover - mirrors StreamHandler
            self.handleError(record)


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A child of the library's ``"repro"`` logger."""
    if not name or name == ROOT_LOGGER_NAME:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure(level: str = "info", json_lines: bool = False,
              stream: Optional[IO[str]] = None) -> logging.Logger:
    """Configure the library's logging once, idempotently.

    Args:
        level: One of ``debug``/``info``/``warning``/``error``/
            ``critical`` (case-insensitive).
        json_lines: Emit one JSON object per line instead of text.
        stream: Output stream; defaults to (a live view of)
            ``sys.stderr`` so stdout stays reserved for results.

    Returns the configured ``"repro"`` logger.  Calling again replaces
    the previous configuration rather than stacking handlers.
    """
    key = level.lower()
    if key not in _LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; known: {', '.join(_LEVELS)}")
    getter = (lambda: sys.stderr) if stream is None else (lambda: stream)
    handler = _DeferredStreamHandler(getter)
    handler.setFormatter(JsonLinesFormatter() if json_lines
                         else PlainFormatter())
    handler._repro_configured = True  # tag for idempotent replacement

    logger = logging.getLogger(ROOT_LOGGER_NAME)
    for old in list(logger.handlers):
        if getattr(old, "_repro_configured", False) or \
                isinstance(old, logging.NullHandler):
            logger.removeHandler(old)
    logger.addHandler(handler)
    logger.setLevel(_LEVELS[key])
    logger.propagate = False
    return logger


# Silence "no handler" warnings until/unless configure() is called.
logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())
