"""Run manifests: one ``manifest.json`` per suite/sweep invocation.

A manifest answers "what produced these results?" without rerunning
anything: the settings and their hash, the package version, the host,
and the run's wall-clock span and final status.  It is written twice —
once at start (``status="running"``, so even a SIGKILL'd run leaves
evidence) and once at :meth:`TelemetryRun.finalize`.

:class:`TelemetryRun` bundles the manifest with an
:class:`~repro.observability.events.EventLog` in one directory and
(optionally) installs that log as the process-wide event sink so every
instrumented layer — sweep scheduler, retry helpers, trace reader —
lands in the same ``events.jsonl``.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import sys
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.observability.events import EventLog, set_event_sink
from repro.observability.logs import get_logger
from repro.resilience.checkpoint import config_hash

PathLike = Union[str, Path]

MANIFEST_VERSION = 1
MANIFEST_FILENAME = "manifest.json"
EVENTS_FILENAME = "events.jsonl"

#: Keys every valid manifest carries.
MANIFEST_REQUIRED_KEYS = frozenset(
    ("version", "run_id", "kind", "created_at", "settings",
     "config_hash", "package_version", "host", "status"))

_logger = get_logger("observability")


def host_info() -> dict:
    """Where this run executed (best effort, never raises)."""
    try:
        hostname = socket.gethostname()
    except OSError:  # pragma: no cover - exotic hosts
        hostname = "unknown"
    return {
        "hostname": hostname,
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count() or 1,
        "pid": os.getpid(),
    }


def _package_version() -> str:
    from repro import __version__
    return __version__


@dataclass
class RunManifest:
    """The serializable record of one telemetry-enabled run."""

    run_id: str
    kind: str
    created_at: str
    settings: dict
    config_hash: str
    package_version: str
    host: dict = field(default_factory=host_info)
    status: str = "running"
    wall_clock_seconds: Optional[float] = None
    finished_at: Optional[str] = None

    @classmethod
    def create(cls, kind: str, settings: Optional[dict] = None
               ) -> "RunManifest":
        settings = settings or {}
        return cls(
            run_id=uuid.uuid4().hex[:12],
            kind=kind,
            created_at=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            settings=settings,
            config_hash=config_hash(settings),
            package_version=_package_version(),
        )

    def as_dict(self) -> dict:
        return {
            "version": MANIFEST_VERSION,
            "run_id": self.run_id,
            "kind": self.kind,
            "created_at": self.created_at,
            "settings": self.settings,
            "config_hash": self.config_hash,
            "package_version": self.package_version,
            "host": self.host,
            "status": self.status,
            "wall_clock_seconds": self.wall_clock_seconds,
            "finished_at": self.finished_at,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        return cls(
            run_id=data["run_id"],
            kind=data["kind"],
            created_at=data["created_at"],
            settings=data.get("settings", {}),
            config_hash=data["config_hash"],
            package_version=data["package_version"],
            host=data.get("host", {}),
            status=data.get("status", "unknown"),
            wall_clock_seconds=data.get("wall_clock_seconds"),
            finished_at=data.get("finished_at"),
        )

    def write(self, path: PathLike) -> Path:
        """Atomic write (temp file + rename), like the checkpoints."""
        target = Path(path)
        tmp = target.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(self.as_dict(), indent=2))
        os.replace(tmp, target)
        return target

    @classmethod
    def load(cls, path: PathLike) -> "RunManifest":
        return cls.from_dict(json.loads(Path(path).read_text()))


class TelemetryRun:
    """A telemetry directory: ``manifest.json`` + ``events.jsonl``.

    Args:
        directory: Created if missing.  Reusing a directory appends to
            its ``events.jsonl`` and overwrites its manifest.
        kind: ``"suite"``, ``"sweep"``, or any caller-defined label.
        settings: JSON-serializable knobs that produced the run; hashed
            into ``config_hash``.
        install_sink: When True (default) the run's event log becomes
            the process-wide sink for the duration of the run, so
            nested layers (sweep scheduler, trace reader, retries)
            emit into it without any plumbing.
    """

    def __init__(self, directory: PathLike, kind: str,
                 settings: Optional[dict] = None,
                 install_sink: bool = True):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.manifest = RunManifest.create(kind, settings)
        self.manifest_path = self.directory / MANIFEST_FILENAME
        self.manifest.write(self.manifest_path)
        self.events = EventLog(self.directory / EVENTS_FILENAME)
        self._started = time.monotonic()
        self._previous_sink = (set_event_sink(self.events)
                               if install_sink else None)
        self._installed = install_sink
        self._finalized = False
        self.events.emit("run_started", kind=kind,
                         run_id=self.manifest.run_id)
        _logger.info("telemetry run %s (%s) -> %s",
                     self.manifest.run_id, kind, self.directory)

    def finalize(self, status: str = "complete") -> RunManifest:
        """Stamp the final status and wall clock; close the event log.

        Idempotent: only the first call wins.
        """
        if self._finalized:
            return self.manifest
        self._finalized = True
        self.manifest.status = status
        self.manifest.wall_clock_seconds = round(
            time.monotonic() - self._started, 6)
        self.manifest.finished_at = time.strftime("%Y-%m-%dT%H:%M:%S%z")
        self.events.emit(
            "run_finished", kind=self.manifest.kind,
            run_id=self.manifest.run_id, status=status,
            wall_clock_seconds=self.manifest.wall_clock_seconds)
        self.manifest.write(self.manifest_path)
        if self._installed:
            set_event_sink(self._previous_sink)
            self._installed = False
        self.events.close()
        _logger.info("telemetry run %s finalized: %s in %.2fs",
                     self.manifest.run_id, status,
                     self.manifest.wall_clock_seconds)
        return self.manifest

    def __enter__(self) -> "TelemetryRun":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finalize("failed" if exc_type is not None else "complete")
