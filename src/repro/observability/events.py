"""Append-only telemetry event streams (``events.jsonl``).

An :class:`EventLog` writes one JSON object per line: a wall-clock
``ts``, a monotonically increasing ``seq`` (total order independent of
clock resolution), the ``event`` name, and event-specific fields.  The
schema of every event the library emits lives in :data:`EVENT_SCHEMAS`
so telemetry files can be validated offline
(:mod:`repro.observability.validate`) and replayed to reconstruct a
run's full history — which cells ran, retried, timed out, or were
restored from checkpoints, and where the trace reader burned its
error budget.

Instrumented library code emits through the module-level :func:`emit`,
which routes to the process-wide sink — a no-op unless a
:class:`~repro.observability.manifest.TelemetryRun` (or an explicit
:func:`set_event_sink`) installed a real log.  Emitting to the null
sink costs one attribute call, so the library is free to emit from
cold paths unconditionally.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Union

from repro.observability.logs import get_logger

PathLike = Union[str, Path]

_logger = get_logger("observability.events")

#: event name -> required field names (beyond ``ts``/``seq``/``event``).
EVENT_SCHEMAS: Dict[str, Set[str]] = {
    # run lifecycle (manifest side)
    "run_started": {"kind", "run_id"},
    "run_finished": {"kind", "run_id", "status", "wall_clock_seconds"},
    # parallel sweep cell lifecycle
    "cell_scheduled": {"key", "attempt"},
    "cell_finished": {"key", "attempt", "duration_seconds"},
    "cell_retried": {"key", "attempt", "error_type", "delay_seconds"},
    "cell_timed_out": {"key", "attempt", "timeout_seconds"},
    "cell_failed": {"key", "attempts", "error_type"},
    "cell_checkpoint_restored": {"key"},
    "pool_rebuilt": {"reason"},
    # shared-pass engine (one trace pass serving N cache cells)
    "pass_started": {"cells", "requests"},
    "pass_finished": {"cells", "requests", "duration_seconds",
                      "lru_fast_path_cells"},
    # analytical model (repro.model): calibration and predictions
    "model_calibrated": {"documents", "requests", "source"},
    "model_predicted": {"policy", "capacity_bytes", "hit_rate"},
    "model_curve_computed": {"policy", "points"},
    "model_validated": {"cells", "mean_absolute_error",
                        "max_absolute_error"},
    "hierarchy_model_validated": {"cells", "mean_absolute_error",
                                  "max_absolute_error"},
    # cache-network engine (repro.network)
    "network_simulated": {"trace", "requests", "hit_rate",
                          "byte_hit_rate", "sibling_serves",
                          "topology", "strategy"},
    # suite experiment lifecycle
    "experiment_started": {"experiment_id"},
    "experiment_finished": {"experiment_id", "duration_seconds"},
    "experiment_retried": {"experiment_id", "attempt", "error_type"},
    "experiment_failed": {"experiment_id", "attempts", "error_type"},
    "experiment_checkpoint_restored": {"experiment_id"},
    # trace-reader error budget
    "trace_line_quarantined": {"error"},
    "trace_error_budget_exhausted": {"errors"},
    # durable experiment service: leases
    "lease_acquired": {"name", "owner"},
    "lease_renewed": {"name", "owner"},
    "lease_reclaimed": {"name", "owner", "previous_owner"},
    "lease_lost": {"name", "owner"},
    # durable experiment service: trial queue lifecycle
    "trial_enqueued": {"trial_id"},
    "trial_claimed": {"trial_id", "owner", "attempt"},
    "trial_completed": {"trial_id", "owner", "duration_seconds"},
    "trial_requeued": {"trial_id", "reason"},
    "trial_abandoned": {"trial_id", "attempts", "reason"},
    # durable experiment service: results store
    "record_appended": {"key"},
    "record_quarantined": {"source", "reason"},
    "store_compacted": {"records", "segments", "quarantined"},
    # durable experiment service: worker lifecycle
    "service_worker_started": {"owner"},
    "service_worker_exited": {"owner", "executed"},
    "service_worker_restarted": {"worker", "exitcode", "restarts"},
    # online serving subsystem (repro.serving)
    "serving_started": {"host", "port", "shards", "policy",
                        "capacity_bytes"},
    "replay_finished": {"requests", "threads", "shards", "policy",
                        "hit_rate", "duration_seconds",
                        "requests_per_second"},
    "shard_rebalanced": {"action", "shard", "shards"},
    # hierarchical spans (repro.observability.trace): opened on start
    # so live dashboards see in-flight work, closed with the timing
    "span_started": {"name", "trace_id", "span_id", "parent_id"},
    "span": {"name", "trace_id", "span_id", "parent_id", "started_at",
             "duration_seconds", "status"},
}

_STR = (str,)
_NUM = (int, float)
_OPT_STR = (str, type(None))

#: event name -> {field: allowed types}.  Presence alone is too weak
#: for the fields downstream tooling computes with — the regression
#: detector and span waterfall would silently misrender a span whose
#: duration is a string — so these are type-checked on validation.
#: Only fields with a contract consumers rely on are listed.
EVENT_FIELD_TYPES: Dict[str, Dict[str, tuple]] = {
    "span_started": {"name": _STR, "trace_id": _STR, "span_id": _STR,
                     "parent_id": _OPT_STR},
    "span": {"name": _STR, "trace_id": _STR, "span_id": _STR,
             "parent_id": _OPT_STR, "started_at": _NUM,
             "duration_seconds": _NUM, "status": _STR},
    # durable-service lifecycle: the live dashboard aggregates these
    "service_worker_started": {"owner": _STR},
    "service_worker_exited": {"owner": _STR, "executed": (int,)},
    "service_worker_restarted": {"worker": (int,),
                                 "restarts": (int,)},
    "trial_claimed": {"trial_id": _STR, "owner": _STR,
                      "attempt": (int,)},
    "trial_completed": {"trial_id": _STR, "owner": _STR,
                        "duration_seconds": _NUM},
    "trial_abandoned": {"trial_id": _STR, "attempts": (int,),
                        "reason": _STR},
    "lease_acquired": {"name": _STR, "owner": _STR},
    "lease_renewed": {"name": _STR, "owner": _STR},
    "lease_reclaimed": {"name": _STR, "owner": _STR,
                        "previous_owner": _STR},
    "lease_lost": {"name": _STR, "owner": _STR},
    "record_appended": {"key": _STR},
    "store_compacted": {"records": (int,), "segments": (int,),
                        "quarantined": (int,)},
    # online serving: the replay gate and dashboards read these
    "serving_started": {"host": _STR, "port": (int,),
                        "shards": (int,), "policy": _STR,
                        "capacity_bytes": (int,)},
    "replay_finished": {"requests": (int,), "threads": (int,),
                        "shards": (int,), "policy": _STR,
                        "hit_rate": _NUM, "duration_seconds": _NUM,
                        "requests_per_second": _NUM},
    "shard_rebalanced": {"action": _STR, "shard": _STR,
                         "shards": (int,)},
}


def validate_event(event: dict) -> List[str]:
    """Problems with one event dict; empty list when it conforms."""
    problems = []
    if not isinstance(event, dict):
        return [f"event is not an object: {event!r}"]
    name = event.get("event")
    for required in ("ts", "seq", "event"):
        if required not in event:
            problems.append(f"missing {required!r} in {name or event!r}")
    if name not in EVENT_SCHEMAS:
        problems.append(f"unknown event type {name!r}")
        return problems
    missing = EVENT_SCHEMAS[name] - set(event)
    if missing:
        problems.append(
            f"{name}: missing fields {sorted(missing)}")
    for field, allowed in EVENT_FIELD_TYPES.get(name, {}).items():
        if field not in event:
            continue  # absence is already reported above
        value = event[field]
        # bool is an int subclass but never a legal count/duration
        if not isinstance(value, allowed) or (isinstance(value, bool)
                                              and bool not in allowed):
            problems.append(
                f"{name}: field {field!r} has type "
                f"{type(value).__name__}, expected "
                + " or ".join(t.__name__ for t in allowed))
    return problems


class EventLog:
    """An append-only ``events.jsonl`` writer.

    Lines are flushed as they are written, so a crashed run keeps every
    event emitted before the crash.  The log is a context manager;
    closing it is idempotent.
    """

    def __init__(self, path: PathLike, clock=time.time):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._clock = clock
        self._seq = 0
        self._stream = open(self.path, "a", encoding="utf-8")

    def emit(self, event: str, **fields) -> dict:
        """Append one event; returns the record as written."""
        self._seq += 1
        record = {"ts": round(self._clock(), 6), "seq": self._seq,
                  "event": event}
        record.update(fields)
        self._stream.write(json.dumps(record, default=str) + "\n")
        self._stream.flush()
        return record

    def close(self) -> None:
        if not self._stream.closed:
            self._stream.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullEventLog:
    """The do-nothing default sink."""

    def emit(self, event: str, **fields) -> dict:
        return {}

    def close(self) -> None:
        pass


_NULL_SINK = NullEventLog()
_sink = _NULL_SINK


def set_event_sink(sink: Optional[EventLog]) -> object:
    """Install the process-wide sink; returns the previous one."""
    global _sink
    previous = _sink
    _sink = sink if sink is not None else _NULL_SINK
    return previous


def event_sink():
    """The currently installed process-wide sink."""
    return _sink


def emit(event: str, **fields) -> dict:
    """Emit through the process-wide sink (no-op by default)."""
    return _sink.emit(event, **fields)


def iter_events(path: PathLike, strict: bool = False) -> Iterator[dict]:
    """Stream parsed events from an ``events.jsonl`` file.

    A line that does not parse — usually the torn trailing line a
    SIGKILL'd writer left mid-append — is skipped with a warning
    instead of poisoning every event before it; the crash-safety story
    promises that events emitted before a crash stay readable.  Pass
    ``strict=True`` to re-raise instead (offline validation wants the
    error, not the tolerance).
    """
    path = Path(path)
    with open(path, "r", encoding="utf-8") as stream:
        for number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except ValueError:
                if strict:
                    raise
                _logger.warning(
                    "skipping unparsable event line (%s line %d, "
                    "%d bytes): torn append?", path.name, number,
                    len(line),
                    extra={"source": path.name, "line_number": number})


def read_events(path: PathLike,
                event: Optional[str] = None) -> List[dict]:
    """All events from a file, optionally filtered by event name."""
    records = list(iter_events(path))
    if event is not None:
        records = [r for r in records if r.get("event") == event]
    return records
