"""Telemetry for the simulation stack: logs, metrics, events, timing.

Four orthogonal pieces, all zero-overhead until switched on:

* :mod:`~repro.observability.logs` — structured logging (plain text or
  JSON lines) behind one :func:`configure` call; the library is silent
  by default.
* :mod:`~repro.observability.metrics` — an in-process counter / gauge /
  histogram registry whose default implementation is a shared no-op.
* :mod:`~repro.observability.manifest` /
  :mod:`~repro.observability.events` — per-run ``manifest.json`` +
  append-only ``events.jsonl`` recording cell and experiment lifecycle,
  retries, timeouts, and checkpoint restores
  (:class:`TelemetryRun` bundles both; see also
  :mod:`repro.observability.validate` for offline checking).
* :mod:`~repro.observability.progress` /
  :mod:`~repro.observability.profiling` — heartbeat/ETA reporting and
  per-phase timers plus opt-in cProfile dumps.

Typical setup in a script::

    from repro.observability import configure_logging, enable_metrics

    configure_logging(level="info", json_lines=True)
    registry = enable_metrics()
"""

from repro.observability.events import (
    EVENT_FIELD_TYPES,
    EVENT_SCHEMAS,
    EventLog,
    NullEventLog,
    emit,
    event_sink,
    iter_events,
    read_events,
    set_event_sink,
    validate_event,
)
from repro.observability.logs import (
    LOG_LEVELS,
    JsonLinesFormatter,
    PlainFormatter,
    get_logger,
)
from repro.observability.logs import configure as configure_logging
from repro.observability.manifest import (
    RunManifest,
    TelemetryRun,
    host_info,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    disable_metrics,
    enable_metrics,
    get_registry,
    set_registry,
)
from repro.observability.profiling import (
    PhaseTimings,
    maybe_profile,
    phase_timer,
)
from repro.observability.progress import ProgressReporter
from repro.observability.trace import (
    NullTracer,
    Span,
    Tracer,
    adopt,
    disable_tracing,
    enable_tracing,
    get_tracer,
    inject,
    set_tracer,
    span,
)
from repro.observability.validate import validate_telemetry_dir

__all__ = [
    # logs
    "configure_logging", "get_logger", "LOG_LEVELS",
    "JsonLinesFormatter", "PlainFormatter",
    # metrics
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "NullRegistry",
    "get_registry", "set_registry", "enable_metrics", "disable_metrics",
    # events
    "EventLog", "NullEventLog", "EVENT_SCHEMAS", "EVENT_FIELD_TYPES",
    "emit", "event_sink", "set_event_sink", "iter_events",
    "read_events", "validate_event",
    # spans
    "Span", "Tracer", "NullTracer", "span", "get_tracer", "set_tracer",
    "enable_tracing", "disable_tracing", "inject", "adopt",
    # manifest
    "RunManifest", "TelemetryRun", "host_info",
    # progress / profiling
    "ProgressReporter", "PhaseTimings", "phase_timer", "maybe_profile",
    # validation
    "validate_telemetry_dir",
]
