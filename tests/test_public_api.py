"""Public-API surface freeze.

Downstream code imports from the paths documented in README and
docs/guide.md; this module pins those paths so refactors cannot break
them silently.
"""

import importlib

import pytest

import repro

#: (module, attribute) pairs the documentation promises.
DOCUMENTED_API = [
    ("repro", "simulate"),
    ("repro", "run_sweep"),
    ("repro", "cache_sizes_from_fractions"),
    ("repro", "generate_trace"),
    ("repro", "dfn_like"),
    ("repro", "rtp_like"),
    ("repro", "future_like"),
    ("repro", "uniform_profile"),
    ("repro", "fit_profile"),
    ("repro", "fidelity_report"),
    ("repro", "characterize"),
    ("repro", "estimate_alpha"),
    ("repro", "estimate_beta"),
    ("repro", "load_trace"),
    ("repro", "write_trace"),
    ("repro", "run_experiment"),
    ("repro", "make_policy"),
    ("repro", "Cache"),
    ("repro", "DocumentType"),
    ("repro", "Request"),
    ("repro", "Trace"),
    ("repro", "SimulationConfig"),
    ("repro", "SizeInterpretation"),
    ("repro.core", "ReplacementPolicy"),
    ("repro.core", "CacheEntry"),
    ("repro.core", "BeladyPolicy"),
    ("repro.core", "SecondHitAdmission"),
    ("repro.core", "PartitionedCache"),
    ("repro.core", "LatencyCost"),
    ("repro.core.belady", "compute_next_uses"),
    ("repro.simulation", "simulate_hierarchy"),
    ("repro.simulation", "simulate_mesh"),
    ("repro.simulation", "run_sweep_parallel"),
    ("repro.simulation", "TTLModel"),
    ("repro.simulation.latency", "LatencyModel"),
    ("repro.analysis", "stack_profile"),
    ("repro.analysis", "approximate_byte_curve"),
    ("repro.analysis", "alpha_mle"),
    ("repro.analysis", "gini_coefficient"),
    ("repro.analysis", "working_set_series"),
    ("repro.analysis", "drift_report"),
    ("repro.analysis", "wilson_interval"),
    ("repro.analysis", "hit_rate_interval"),
    ("repro.trace", "TracePipeline"),
    ("repro.trace", "validate_trace"),
    ("repro.trace", "anonymize"),
    ("repro.trace", "thin"),
    ("repro.trace", "interleave"),
    ("repro.experiments", "EXPERIMENT_IDS"),
    ("repro.experiments", "write_report"),
    ("repro.experiments", "run_suite"),
    ("repro.experiments", "SuiteResult"),
    ("repro", "run_suite"),
    ("repro", "RetryPolicy"),
    ("repro", "retry_call"),
    ("repro", "CheckpointStore"),
    ("repro", "config_hash"),
    ("repro", "FaultInjector"),
    ("repro", "WorkerCrashError"),
    ("repro", "CellTimeoutError"),
    ("repro", "CheckpointError"),
    ("repro.resilience", "FaultSpec"),
    ("repro.resilience", "InjectedFaultError"),
    ("repro.simulation", "FailureRecord"),
    ("repro.simulation", "cell_key"),
    ("repro.trace.budget", "ErrorBudget"),
    ("repro.experiments.claims", "ClaimChecker"),
    ("repro.experiments.summary", "write_markdown_summary"),
    ("repro", "configure_logging"),
    ("repro", "get_logger"),
    ("repro", "enable_metrics"),
    ("repro", "disable_metrics"),
    ("repro", "get_registry"),
    ("repro", "TelemetryRun"),
    ("repro", "RunManifest"),
    ("repro", "ProgressReporter"),
    ("repro", "read_events"),
    ("repro", "validate_telemetry_dir"),
    ("repro.observability", "MetricsRegistry"),
    ("repro.observability", "EventLog"),
    ("repro.observability", "EVENT_SCHEMAS"),
    ("repro.observability", "PhaseTimings"),
    ("repro.observability", "phase_timer"),
    ("repro.observability", "maybe_profile"),
    ("repro.observability", "host_info"),
    ("repro.observability.logs", "JsonLinesFormatter"),
    ("repro.observability.validate", "validate_events_file"),
]


@pytest.mark.parametrize("module_name,attribute", DOCUMENTED_API)
def test_documented_path_resolves(module_name, attribute):
    module = importlib.import_module(module_name)
    assert hasattr(module, attribute), f"{module_name}.{attribute}"


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version_is_semver():
    major, minor, patch = repro.__version__.split(".")
    assert all(part.isdigit() for part in (major, minor, patch))


def test_policy_names_documented_in_guide():
    """Every registry name appears in docs/guide.md."""
    from pathlib import Path
    from repro.core.registry import POLICY_NAMES

    guide = (Path(__file__).resolve().parents[1]
             / "docs" / "guide.md").read_text()
    missing = [name for name in POLICY_NAMES
               if name not in guide and name.split("(")[0] not in guide]
    assert not missing, f"guide.md does not mention: {missing}"