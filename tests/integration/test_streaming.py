"""Streaming end-to-end: simulate straight from disk.

``CacheSimulator.run_stream`` over ``open_trace`` consumes a csv trace
lazily — the path for traces too large to materialize.  The results
must match the in-memory run exactly.
"""

import pytest

from repro.simulation.simulator import CacheSimulator, SimulationConfig
from repro.trace.reader import open_trace
from repro.trace.writer import write_trace
from repro.workload.generator import generate_trace
from repro.workload.profiles import dfn_like


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    trace = generate_trace(dfn_like(scale=1.0 / 512))
    path = tmp_path_factory.mktemp("stream") / "trace.csv.gz"
    write_trace(path, trace)
    return path, trace


def test_stream_matches_in_memory(trace_file):
    path, trace = trace_file
    capacity = int(trace.metadata().total_size_bytes * 0.02)
    warmup = int(len(trace) * 0.10)

    in_memory = CacheSimulator(
        SimulationConfig(capacity_bytes=capacity, policy="gd*(1)")
    ).run(trace)

    streaming = CacheSimulator(
        SimulationConfig(capacity_bytes=capacity, policy="gd*(1)")
    ).run_stream(open_trace(path), warmup_requests=warmup,
                 trace_name="streamed")

    assert streaming.total_requests == in_memory.total_requests
    assert streaming.hit_rate() == pytest.approx(in_memory.hit_rate())
    assert streaming.byte_hit_rate() == pytest.approx(
        in_memory.byte_hit_rate())
    assert streaming.final_beta == pytest.approx(in_memory.final_beta)


def test_stream_with_occupancy_and_ttl(trace_file):
    from repro.simulation.freshness import TTLModel

    path, trace = trace_file
    capacity = int(trace.metadata().total_size_bytes * 0.02)
    simulator = CacheSimulator(SimulationConfig(
        capacity_bytes=capacity, policy="lru",
        occupancy_interval=1000,
        ttl_model=TTLModel.typical_proxy()))
    result = simulator.run_stream(open_trace(path))
    assert result.total_requests == len(trace)
    assert result.occupancy is not None
    assert result.ttl_expiries is not None
