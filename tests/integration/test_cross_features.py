"""Cross-feature integration: composed configurations that exercise
several subsystems at once."""

import pytest

from repro.simulation.simulator import CacheSimulator, SimulationConfig
from repro.simulation.sweep import cache_sizes_from_fractions, run_sweep
from repro.types import DocumentType


class TestSweepCsv:
    def test_tidy_export(self, tiny_dfn_trace):
        capacities = cache_sizes_from_fractions(tiny_dfn_trace, [0.02])
        sweep = run_sweep(tiny_dfn_trace, ["lru", "gd*(1)"], capacities)
        csv = sweep.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "policy,capacity_bytes,doc_type,metric,value"
        # 2 policies x 1 capacity x 6 groups x 2 metrics.
        assert len(lines) == 1 + 2 * 1 * 6 * 2
        assert any(line.startswith("gd*(1)") and ",multimedia," in line
                   for line in lines)

    def test_save_csv(self, tiny_dfn_trace, tmp_path):
        capacities = cache_sizes_from_fractions(tiny_dfn_trace, [0.02])
        sweep = run_sweep(tiny_dfn_trace, ["lru"], capacities)
        path = tmp_path / "sweep.csv"
        sweep.save_csv(path)
        assert path.read_text() == sweep.to_csv()


class TestTypedGDStarInSweeps:
    def test_typed_policy_sweepable_by_name(self, tiny_dfn_trace):
        capacities = cache_sizes_from_fractions(tiny_dfn_trace,
                                                [0.01, 0.04])
        sweep = run_sweep(tiny_dfn_trace, ["gd*t(1)"], capacities)
        rates = [rate for _, rate in sweep.series("gd*t(1)")]
        assert rates == sorted(rates)


class TestPartitionedWithOccupancy:
    def test_occupancy_tracks_partitions(self, tiny_dfn_trace):
        from repro.core.partitioned import (
            PartitionedCache, make_policy_factory)

        capacity = int(
            tiny_dfn_trace.metadata().total_size_bytes * 0.02)
        cache = PartitionedCache(
            capacity, policy_factory=make_policy_factory("lru"))
        config = SimulationConfig(capacity_bytes=capacity, policy="lru",
                                  occupancy_interval=1000)
        result = CacheSimulator(config, cache=cache).run(tiny_dfn_trace)
        tracker = result.occupancy
        assert tracker.samples
        # Equal partitions cap every type's byte share at ~1/5 of the
        # cache plus imbalance from partly-filled partitions.
        final = tracker.samples[-1]
        assert sum(final.byte_fraction.values()) == pytest.approx(1.0)


class TestEverythingAtOnce:
    def test_kitchen_sink_config(self, tiny_dfn_trace):
        """TTL + latency + cost accounting + occupancy + paper rule,
        all in one run."""
        from repro.core.cost import PacketCost
        from repro.simulation.freshness import TTLModel
        from repro.simulation.latency import LatencyModel
        from repro.simulation.simulator import SizeInterpretation

        capacity = int(
            tiny_dfn_trace.metadata().total_size_bytes * 0.02)
        config = SimulationConfig(
            capacity_bytes=capacity,
            policy="gd*(p)",
            size_interpretation=SizeInterpretation.PAPER_RULE,
            occupancy_interval=2000,
            ttl_model=TTLModel.typical_proxy(),
            report_cost_model=PacketCost(),
            latency_model=LatencyModel(),
        )
        result = CacheSimulator(config).run(tiny_dfn_trace)
        assert 0.0 < result.hit_rate() < 1.0
        assert result.cost_savings_ratio() > 0.0
        assert result.latency.speedup >= 1.0
        assert result.ttl_expiries is not None
        assert result.occupancy.samples
        assert result.final_beta is not None


class TestAdmissionInSimulator:
    def test_second_hit_wrapper_full_run(self, tiny_dfn_trace):
        from repro.core.admission import SecondHitAdmission
        from repro.core.registry import make_policy

        capacity = int(
            tiny_dfn_trace.metadata().total_size_bytes * 0.02)
        policy = SecondHitAdmission(make_policy("gds(1)"))
        config = SimulationConfig(capacity_bytes=capacity, policy=policy)
        result = CacheSimulator(config).run(tiny_dfn_trace)
        assert result.policy == "2hit+gds(1)"
        assert result.bypasses > 0          # one-hit wonders filtered
        assert 0.0 < result.hit_rate() < 1.0