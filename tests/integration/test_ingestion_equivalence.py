"""Ingestion-path equivalence theorem.

There are two ways to run the paper's methodology on a raw proxy log:

1. preprocess it with :class:`~repro.trace.pipeline.TracePipeline`
   (which reconstructs canonical sizes with the 5 % rule) and simulate
   with ``SizeInterpretation.TRUSTED``;
2. hand the simulator the raw logged sizes and let *it* apply the rule
   (``SizeInterpretation.PAPER_RULE``).

Both paths run the identical :class:`ModificationDetector` over the
identical logged-size sequence, so every hit/miss decision — and
therefore every metric — must agree exactly.  This test renders a
synthetic trace into Squid log lines (losing the size/transfer split,
as real logs do), then drives both paths and compares.
"""

import pytest

from repro.simulation.simulator import (
    CacheSimulator,
    SimulationConfig,
    SizeInterpretation,
)
from repro.trace.pipeline import TracePipeline
from repro.trace.record import LogRecord
from repro.trace.squid import SquidParser, format_squid_line
from repro.types import Request, Trace
from repro.workload.generator import generate_trace
from repro.workload.profiles import dfn_like


@pytest.fixture(scope="module")
def logged_trace():
    """A DFN-like trace flattened to what a proxy would actually log."""
    original = generate_trace(dfn_like(scale=1.0 / 512))
    lines = [
        format_squid_line(LogRecord(
            timestamp=request.timestamp,
            url=request.url,
            status=request.status,
            size=request.transfer_size,        # logs carry transfers
            content_type=request.content_type,
            client="10.0.0.1", elapsed_ms=1))
        for request in original
    ]
    return original, lines


def simulate_requests(requests, capacity, interpretation):
    config = SimulationConfig(
        capacity_bytes=capacity, policy="lru",
        size_interpretation=interpretation)
    return CacheSimulator(config).run(Trace(list(requests)))


def test_pipeline_trusted_equals_simulator_paper_rule(logged_trace):
    original, lines = logged_trace
    capacity = int(original.metadata().total_size_bytes * 0.02)

    # Path 1: ingest the log (pipeline reconstructs canonical sizes),
    # then trust the reconstruction.
    records = SquidParser().parse(lines)
    ingested = list(TracePipeline().process(records))
    trusted = simulate_requests(ingested, capacity,
                                SizeInterpretation.TRUSTED)

    # Path 2: feed raw logged sizes (size == transfer == logged) and
    # let the simulator's own detector apply the paper rule.
    raw = [Request(r.timestamp, r.url, r.transfer_size,
                   r.transfer_size, r.doc_type, r.status,
                   r.content_type) for r in original]
    paper_rule = simulate_requests(raw, capacity,
                                   SizeInterpretation.PAPER_RULE)

    assert trusted.metrics.overall.requests == \
        paper_rule.metrics.overall.requests
    assert trusted.metrics.overall.hits == \
        paper_rule.metrics.overall.hits
    assert trusted.hit_rate() == pytest.approx(paper_rule.hit_rate())
    assert trusted.invalidations == paper_rule.invalidations


def test_ingestion_approximates_ground_truth(logged_trace):
    """The reconstructed run lands near the ground-truth run (exact
    equality is impossible: logs cannot distinguish a first partial
    transfer from a small document)."""
    original, lines = logged_trace
    capacity = int(original.metadata().total_size_bytes * 0.02)

    ground_truth = simulate_requests(original.requests, capacity,
                                     SizeInterpretation.TRUSTED)
    ingested = list(TracePipeline().process(SquidParser().parse(lines)))
    reconstructed = simulate_requests(ingested, capacity,
                                      SizeInterpretation.TRUSTED)
    assert reconstructed.hit_rate() == pytest.approx(
        ground_truth.hit_rate(), abs=0.02)
