"""Cross-process determinism audit.

Every published number in EXPERIMENTS.md assumes that the same profile
and seed regenerate the identical trace and the identical simulation
results — in *any* Python process, regardless of PYTHONHASHSEED.  The
in-process half of that guarantee is covered by the generator and
policy tests; this module pins the cross-process half by rerunning the
pipeline in subprocesses with different hash seeds and comparing
digests.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

SCRIPT = r"""
import hashlib
from repro import dfn_like, generate_trace, simulate

trace = generate_trace(dfn_like(scale=1 / 512))
digest = hashlib.sha256()
for r in trace:
    digest.update(f"{r.url}|{r.size}|{r.transfer_size}".encode())
result = simulate(trace, "gd*(1)",
                  int(trace.metadata().total_size_bytes * 0.02))
print(digest.hexdigest(), f"{result.hit_rate():.12f}",
      f"{result.byte_hit_rate():.12f}")
"""


#: The repo's src/ directory, so the subprocess can import repro no
#: matter how the parent process found it (installed or PYTHONPATH).
_SRC = Path(__file__).resolve().parents[2] / "src"


def run_with_hash_seed(seed: str) -> str:
    pythonpath = os.pathsep.join(
        [str(_SRC)] + ([os.environ["PYTHONPATH"]]
                       if os.environ.get("PYTHONPATH") else []))
    completed = subprocess.run(
        [sys.executable, "-c", SCRIPT],
        capture_output=True, text=True, timeout=600,
        env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin",
             "PYTHONPATH": pythonpath},
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    return completed.stdout.strip()


@pytest.mark.slow
def test_identical_across_hash_seeds():
    outputs = {run_with_hash_seed(seed) for seed in ("0", "12345")}
    assert len(outputs) == 1, (
        "trace generation or simulation depends on PYTHONHASHSEED:\n"
        + "\n".join(outputs))
