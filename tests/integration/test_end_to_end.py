"""End-to-end integration: generate → write → reload → simulate →
characterize, through the public API only."""

import pytest

import repro
from repro import (
    DocumentType,
    SizeInterpretation,
    cache_sizes_from_fractions,
    characterize,
    dfn_like,
    generate_trace,
    load_trace,
    run_sweep,
    simulate,
    write_trace,
)


@pytest.fixture(scope="module")
def trace():
    return generate_trace(dfn_like(scale=1.0 / 512.0))


def test_version_exposed():
    assert repro.__version__


def test_public_api_complete():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_trace_round_trip_through_disk(tmp_path, trace):
    path = tmp_path / "dfn.csv.gz"
    write_trace(path, trace)
    reloaded = load_trace(path)
    assert len(reloaded) == len(trace)
    result_direct = simulate(trace, "gds(1)",
                             capacity_bytes=2_000_000)
    result_reloaded = simulate(reloaded, "gds(1)",
                               capacity_bytes=2_000_000)
    assert result_direct.hit_rate() == \
        pytest.approx(result_reloaded.hit_rate(), abs=1e-9)


def test_simulation_reproducible(trace):
    a = simulate(trace, "gd*(1)", capacity_bytes=2_000_000)
    b = simulate(trace, "gd*(1)", capacity_bytes=2_000_000)
    assert a.hit_rate() == b.hit_rate()
    assert a.byte_hit_rate() == b.byte_hit_rate()
    assert a.final_beta == b.final_beta


def test_sweep_over_paper_policies(trace):
    capacities = cache_sizes_from_fractions(trace, [0.01, 0.04])
    sweep = run_sweep(trace, ("lru", "lfu-da", "gds(1)", "gd*(1)"),
                      capacities)
    for policy in sweep.policies:
        series = sweep.series(policy)
        rates = [rate for _, rate in series]
        # More cache never hurts dramatically; allow small noise for
        # non-stack policies.
        assert rates[-1] >= rates[0] - 0.02

    # Larger cache: overall hit rate for LRU strictly monotone (stack).
    lru_rates = [rate for _, rate in sweep.series("lru")]
    assert lru_rates == sorted(lru_rates)


def test_characterize_from_public_api(trace):
    char = characterize(trace)
    assert char.metadata.total_requests == len(trace)
    assert char.breakdown.total_requests[DocumentType.IMAGE] > 50


def test_size_interpretations_comparable(trace):
    trusted = simulate(trace, "lru", 2_000_000)
    paper = simulate(trace, "lru", 2_000_000,
                     size_interpretation=SizeInterpretation.PAPER_RULE)
    any_change = simulate(trace, "lru", 2_000_000,
                          size_interpretation=SizeInterpretation.ANY_CHANGE)
    # The paper's rule reconstructs ground truth almost perfectly on
    # synthetic traces; any-change manufactures extra misses.
    assert trusted.hit_rate() == pytest.approx(paper.hit_rate(),
                                               abs=0.01)
    assert any_change.hit_rate() <= paper.hit_rate() + 1e-9
    assert any_change.invalidations >= paper.invalidations


def test_belady_bounds_online_policies(trace):
    from repro.core.belady import BeladyPolicy, compute_next_uses
    from repro.core.cache import Cache
    from repro.simulation.simulator import CacheSimulator, SimulationConfig

    capacity = 2_000_000
    policy = BeladyPolicy(compute_next_uses(trace.requests))
    config = SimulationConfig(capacity_bytes=capacity, policy=policy)
    belady = CacheSimulator(config).run(trace)
    lru = simulate(trace, "lru", capacity)
    assert belady.hit_rate() >= lru.hit_rate() - 0.01
