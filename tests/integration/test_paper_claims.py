"""The paper's qualitative findings, asserted on synthetic DFN/RTP traces.

These are the scientific acceptance tests of the reproduction: each test
names the claim from Lindemann & Waldhorst (DSN 2002) it checks.  Traces
are 1/128-scale but keep the paper's per-type mixes, size distributions,
and temporal-locality parameters; cache sizes are the same *fractions*
of trace bytes the paper sweeps.
"""

import pytest

from repro import (
    cache_sizes_from_fractions,
    dfn_like,
    generate_trace,
    rtp_like,
    run_sweep,
)
from repro.simulation.simulator import CacheSimulator, SimulationConfig
from repro.types import DocumentType

SCALE = 1.0 / 128.0
CONSTANT = ("lru", "lfu-da", "gds(1)", "gd*(1)")
PACKET = ("lru", "lfu-da", "gds(p)", "gd*(p)")

IMAGE = DocumentType.IMAGE
HTML = DocumentType.HTML
MM = DocumentType.MULTIMEDIA
APP = DocumentType.APPLICATION


@pytest.fixture(scope="module")
def dfn_trace():
    return generate_trace(dfn_like(scale=SCALE))


@pytest.fixture(scope="module")
def rtp_trace():
    return generate_trace(rtp_like(scale=SCALE))


@pytest.fixture(scope="module")
def dfn_constant(dfn_trace):
    capacities = cache_sizes_from_fractions(dfn_trace, [0.01, 0.04])
    return run_sweep(dfn_trace, CONSTANT, capacities)


@pytest.fixture(scope="module")
def dfn_packet(dfn_trace):
    capacities = cache_sizes_from_fractions(dfn_trace, [0.01, 0.04])
    return run_sweep(dfn_trace, PACKET, capacities)


def rate(sweep, policy, doc_type=None, byte_rate=False, point=-1):
    return sweep.series(policy, doc_type, byte_rate)[point][1]


class TestFigure2ConstantCost:
    """DFN trace, constant cost model."""

    def test_frequency_beats_recency_in_hit_rate(self, dfn_constant):
        """'Frequency based replacement schemes outperform recency-based
        schemes in terms of hit rates': LFU-DA > LRU, GD*(1) > GDS(1)."""
        for point in (0, -1):
            assert rate(dfn_constant, "lfu-da", point=point) > \
                rate(dfn_constant, "lru", point=point)
            assert rate(dfn_constant, "gd*(1)", point=point) > \
                rate(dfn_constant, "gds(1)", point=point)

    def test_size_aware_beats_size_blind_in_hit_rate(self, dfn_constant):
        """'LRU and LFU-DA perform worse than GDS(1) and GD*(1) in terms
        of hit rate', most significantly for images and HTML."""
        for doc_type in (None, IMAGE, HTML):
            assert rate(dfn_constant, "gds(1)", doc_type) > \
                rate(dfn_constant, "lfu-da", doc_type)
            assert rate(dfn_constant, "gd*(1)", doc_type) > \
                rate(dfn_constant, "lru", doc_type)

    def test_gdstar_best_hit_rate_for_images_and_html(self, dfn_constant):
        """'GD*(1) is clearly superior ... in terms of hit rate for
        image and HTML documents.'"""
        for doc_type in (IMAGE, HTML):
            best = max(CONSTANT,
                       key=lambda p: rate(dfn_constant, p, doc_type))
            assert best == "gd*(1)", doc_type

    def test_multimedia_hit_rate_inverts(self, dfn_constant):
        """'For multimedia documents [LFU-DA and LRU] achieve the best
        hit rates ... [GD*(1)] performs worse than [GDS(1)]' — the
        size-aware schemes discard large documents."""
        assert rate(dfn_constant, "lfu-da", MM) > \
            rate(dfn_constant, "gds(1)", MM)
        assert rate(dfn_constant, "lru", MM) > \
            rate(dfn_constant, "gd*(1)", MM)
        assert rate(dfn_constant, "gd*(1)", MM) <= \
            rate(dfn_constant, "gds(1)", MM)

    def test_multimedia_byte_hit_rate_collapse(self, dfn_constant):
        """'For multimedia documents [GDS(1)] performs significantly
        worse in terms of byte hit rate than LRU and LFU-DA', dragging
        its overall byte hit rate down."""
        assert rate(dfn_constant, "lru", MM, byte_rate=True) > \
            2 * rate(dfn_constant, "gds(1)", MM, byte_rate=True)
        assert rate(dfn_constant, "lru", byte_rate=True) > \
            rate(dfn_constant, "gds(1)", byte_rate=True)

    def test_hit_rates_grow_with_cache_size(self, dfn_constant):
        """The log-like growth of hit rate in cache size (cited from
        Breslau et al.): more cache, more hits, for every scheme."""
        for policy in CONSTANT:
            series = dfn_constant.series(policy)
            rates = [value for _, value in series]
            assert rates == sorted(rates)


class TestFigure3PacketCost:
    """DFN trace, packet cost model."""

    def test_gdstar_packet_best_overall_hit_rate(self, dfn_packet):
        """'GD*(P) outperforms LRU, LFU-DA, and GDS(P) ... in terms of
        hit rates.'"""
        best = max(PACKET, key=lambda p: rate(dfn_packet, p))
        assert best == "gd*(p)"

    def test_gdstar_packet_best_for_images_html(self, dfn_packet):
        """'[GD*(P)] has clear advantages in terms of hit rate over the
        other schemes for images [and] HTML' — and in byte hit rate."""
        for doc_type in (IMAGE, HTML):
            for byte_rate in (False, True):
                best = max(PACKET, key=lambda p: rate(
                    dfn_packet, p, doc_type, byte_rate))
                assert best == "gd*(p)", (doc_type, byte_rate)

    def test_packet_cost_rescues_multimedia(self, dfn_constant,
                                            dfn_packet):
        """'Opposed to the constant cost model, [the packet cost model]
        does not discriminate large documents': GDS(P)/GD*(P) recover
        the multimedia hit rate their constant-cost variants lose."""
        assert rate(dfn_packet, "gds(p)", MM) > \
            rate(dfn_constant, "gds(1)", MM)
        assert rate(dfn_packet, "gd*(p)", MM) > \
            rate(dfn_constant, "gd*(1)", MM)

    def test_packet_variants_trade_hit_rate_for_bytes(self, dfn_constant,
                                                      dfn_packet):
        """'GD*(P) achieves lower hit rates than GD*(1) for image [and]
        application documents but considerably higher byte hit rates
        for ... multimedia ... documents.'"""
        assert rate(dfn_packet, "gd*(p)", IMAGE) < \
            rate(dfn_constant, "gd*(1)", IMAGE)
        assert rate(dfn_packet, "gd*(p)", MM, byte_rate=True) > \
            rate(dfn_constant, "gd*(1)", MM, byte_rate=True)


class TestFigure1Adaptability:
    """Occupancy adaptation of the GD* family (Section 4.2)."""

    @pytest.fixture(scope="class")
    def occupancy(self, dfn_trace):
        capacity = cache_sizes_from_fractions(dfn_trace, [0.02])[0]
        trackers = {}
        for policy in ("gd*(1)", "gd*(p)"):
            config = SimulationConfig(
                capacity_bytes=capacity, policy=policy,
                occupancy_interval=max(len(dfn_trace) // 100, 1))
            trackers[policy] = CacheSimulator(config).run(
                dfn_trace).occupancy
        return trackers

    def test_constant_cost_tracks_request_mix_in_documents(
            self, occupancy, dfn_trace):
        """'The optimal case [under constant cost is] that the fraction
        of cached documents equals the fraction of requests': GD*(1)'s
        image document share lands near the 70 % request share."""
        image_share = occupancy["gd*(1)"].mean_fraction(IMAGE, False)
        assert image_share == pytest.approx(0.70, abs=0.10)

    def test_constant_cost_discards_large_documents(self, occupancy):
        """'[GD*(1)] does not waste space of the web cache by keeping
        large multimedia and application documents.'"""
        small = occupancy["gd*(1)"]
        large_bytes = (small.mean_fraction(MM, True)
                       + small.mean_fraction(APP, True))
        assert large_bytes < 0.15

    def test_packet_cost_keeps_large_documents(self, occupancy):
        """'[GD*(P)] is able to deliver even large documents': its
        multimedia+application byte share far exceeds GD*(1)'s."""
        constant = occupancy["gd*(1)"]
        packet = occupancy["gd*(p)"]
        constant_large = (constant.mean_fraction(MM, True)
                          + constant.mean_fraction(APP, True))
        packet_large = (packet.mean_fraction(MM, True)
                        + packet.mean_fraction(APP, True))
        assert packet_large > 2 * constant_large


class TestSection44RTP:
    """RTP trace: same overall ordering, diminished GD* advantages."""

    @pytest.fixture(scope="class")
    def rtp_constant(self, rtp_trace):
        capacities = cache_sizes_from_fractions(rtp_trace, [0.01, 0.04])
        return run_sweep(rtp_trace, CONSTANT, capacities)

    @pytest.fixture(scope="class")
    def rtp_packet(self, rtp_trace):
        capacities = cache_sizes_from_fractions(rtp_trace, [0.01, 0.04])
        return run_sweep(rtp_trace, PACKET, capacities)

    def test_same_constant_cost_ordering_as_dfn(self, rtp_constant):
        """'Under the constant cost model the RTP trace yields the same
        results as the DFN trace': GD*/GDS lead the hit rate, LRU and
        LFU-DA lead for multimedia."""
        assert rate(rtp_constant, "gd*(1)") > rate(rtp_constant, "lru")
        assert rate(rtp_constant, "gds(1)") > rate(rtp_constant, "lfu-da")
        assert rate(rtp_constant, "lru", MM) > \
            rate(rtp_constant, "gd*(1)", MM)

    def test_gdstar_advantage_diminishes(self, dfn_constant,
                                         rtp_constant):
        """'For image, HTML, and application documents ... the advantage
        of GD* over the other schemes is considerably smaller than for
        the DFN trace.'  Measured as the absolute hit-rate separation
        between GD*(1) and LRU — the curve gap the paper's figures
        show.  (At 1/128 scale the image class carries the signal; see
        EXPERIMENTS.md for the per-type discussion.)"""
        def lead(sweep, doc_type):
            return (rate(sweep, "gd*(1)", doc_type)
                    - rate(sweep, "lru", doc_type))

        assert lead(rtp_constant, IMAGE) < lead(dfn_constant, IMAGE)

    def test_gdstar_packet_no_byte_advantage_on_rtp(self, rtp_packet):
        """'In terms of byte hit rate, [GD*(P)] does not perform better
        than [GDS(P)] for HTML [and] multimedia' — the advantage
        vanishes (small tolerance; the application sub-claim does not
        reproduce at this scale, see EXPERIMENTS.md)."""
        for doc_type in (HTML, MM):
            gdstar = rate(rtp_packet, "gd*(p)", doc_type, byte_rate=True)
            gds = rate(rtp_packet, "gds(p)", doc_type, byte_rate=True)
            assert gdstar <= gds + 0.02, doc_type
