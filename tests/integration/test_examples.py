"""Smoke tests: every example script runs to completion.

Examples are user-facing documentation; a broken one is a bug.  Each
runs in a subprocess with the repo's interpreter.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))

#: Expected stdout fragments proving the script did its job.
EXPECTED_OUTPUT = {
    "quickstart.py": "byte hit rate",
    "compare_policies.py": "belady",
    "characterize_workload.py": "alpha",
    "adaptive_gdstar.py": "beta=",
    "cache_mesh.py": "sibling share",
    "custom_policy.py": "mru",
    "hierarchy.py": "hierarchy hit rate",
    "hierarchy_placement.py": "resident bytes",
    "lru_curves.py": "cold miss rate",
    "synthetic_twin.py": "fidelity",
}


def test_every_example_has_an_expectation():
    assert set(EXAMPLES) == set(EXPECTED_OUTPUT), (
        "examples/ and EXPECTED_OUTPUT drifted apart")


@pytest.mark.slow
@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=600)
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert EXPECTED_OUTPUT[script] in completed.stdout, (
        f"{script} output missing {EXPECTED_OUTPUT[script]!r}")
