"""Tests for the shared value types."""

import pytest

from repro.errors import ReproError, TraceFormatError
from repro.types import (
    DOCUMENT_TYPES,
    PLOTTED_TYPES,
    DocumentType,
    Request,
    Trace,
)


class TestDocumentType:
    def test_five_classes_in_paper_order(self):
        assert [t.value for t in DOCUMENT_TYPES] == [
            "image", "html", "multimedia", "application", "other"]

    def test_plotted_types_exclude_other(self):
        assert DocumentType.OTHER not in PLOTTED_TYPES
        assert len(PLOTTED_TYPES) == 4

    def test_labels_match_paper_headers(self):
        assert DocumentType.IMAGE.label == "Images"
        assert DocumentType.MULTIMEDIA.label == "Multi Media"

    def test_str(self):
        assert str(DocumentType.HTML) == "html"

    def test_constructible_from_value(self):
        assert DocumentType("image") is DocumentType.IMAGE
        with pytest.raises(ValueError):
            DocumentType("video")


class TestRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            Request(0.0, "u", -1, 0, DocumentType.OTHER)
        with pytest.raises(ValueError):
            Request(0.0, "u", 10, -5, DocumentType.OTHER)

    def test_complete_flag(self):
        full = Request(0.0, "u", 100, 100, DocumentType.OTHER)
        partial = Request(0.0, "u", 100, 40, DocumentType.OTHER)
        assert full.complete
        assert not partial.complete

    def test_frozen(self):
        request = Request(0.0, "u", 100, 100, DocumentType.OTHER)
        with pytest.raises(AttributeError):
            request.size = 50


class TestTrace:
    def requests(self):
        return [
            Request(0.0, "a", 100, 100, DocumentType.IMAGE),
            Request(1.0, "b", 200, 150, DocumentType.HTML),
            Request(2.0, "a", 100, 100, DocumentType.IMAGE),
        ]

    def test_container_protocol(self):
        trace = Trace(self.requests(), name="t")
        assert len(trace) == 3
        assert trace[0].url == "a"
        assert [r.url for r in trace] == ["a", "b", "a"]

    def test_metadata(self):
        meta = Trace(self.requests()).metadata()
        assert meta.total_requests == 3
        assert meta.distinct_documents == 2
        assert meta.total_size_bytes == 300
        assert meta.requested_bytes == 350

    def test_metadata_gb_properties(self):
        meta = Trace([Request(0.0, "a", 2 * 10 ** 9, 10 ** 9,
                              DocumentType.OTHER)]).metadata()
        assert meta.total_size_gb == pytest.approx(2.0)
        assert meta.requested_gb == pytest.approx(1.0)

    def test_metadata_tracks_size_changes(self):
        requests = [
            Request(0.0, "a", 100, 100, DocumentType.HTML),
            Request(1.0, "a", 104, 104, DocumentType.HTML),  # modified
        ]
        meta = Trace(requests).metadata()
        assert meta.distinct_documents == 1
        assert meta.total_size_bytes == 104


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(TraceFormatError, ReproError)

    def test_trace_format_error_line_context(self):
        error = TraceFormatError("bad field", line_number=12,
                                 line="raw text")
        assert "line 12" in str(error)
        assert error.line == "raw text"

    def test_trace_format_error_without_line(self):
        assert str(TraceFormatError("oops")) == "oops"
