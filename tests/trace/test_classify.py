"""Tests for document-type classification."""

import pytest

from repro.trace.classify import (
    classify,
    classify_content_type,
    classify_extension,
    classify_url,
)
from repro.types import DocumentType


class TestContentType:
    @pytest.mark.parametrize("mime,expected", [
        ("image/gif", DocumentType.IMAGE),
        ("image/jpeg", DocumentType.IMAGE),
        ("text/html", DocumentType.HTML),
        ("text/plain", DocumentType.HTML),
        ("text/anything-else", DocumentType.HTML),
        ("audio/mpeg", DocumentType.MULTIMEDIA),
        ("video/mpeg", DocumentType.MULTIMEDIA),
        ("application/pdf", DocumentType.APPLICATION),
        ("application/zip", DocumentType.APPLICATION),
        ("application/x-shockwave-flash", DocumentType.MULTIMEDIA),
        ("application/ogg", DocumentType.MULTIMEDIA),
    ])
    def test_mime_mapping(self, mime, expected):
        assert classify_content_type(mime) is expected

    def test_mime_parameters_stripped(self):
        assert classify_content_type(
            "text/html; charset=utf-8") is DocumentType.HTML

    def test_case_insensitive(self):
        assert classify_content_type("IMAGE/GIF") is DocumentType.IMAGE

    def test_unknown_returns_none(self):
        assert classify_content_type("x-custom/whatever") is None

    def test_empty_returns_none(self):
        assert classify_content_type(None) is None
        assert classify_content_type("") is None
        assert classify_content_type("   ;") is None


class TestExtension:
    @pytest.mark.parametrize("ext,expected", [
        ("gif", DocumentType.IMAGE),
        ("JPEG", DocumentType.IMAGE),
        (".png", DocumentType.IMAGE),
        ("html", DocumentType.HTML),
        ("txt", DocumentType.HTML),
        ("tex", DocumentType.HTML),     # paper: text files -> HTML class
        ("java", DocumentType.HTML),
        ("mp3", DocumentType.MULTIMEDIA),
        ("mpeg", DocumentType.MULTIMEDIA),
        ("ram", DocumentType.MULTIMEDIA),
        ("mov", DocumentType.MULTIMEDIA),
        ("ps", DocumentType.APPLICATION),
        ("pdf", DocumentType.APPLICATION),
        ("zip", DocumentType.APPLICATION),
    ])
    def test_extension_mapping(self, ext, expected):
        assert classify_extension(ext) is expected

    def test_unknown_extension(self):
        assert classify_extension("xyz123") is None


class TestUrl:
    def test_extension_from_path(self):
        assert classify_url("http://a.com/img/logo.gif") is DocumentType.IMAGE

    def test_directory_url_is_html(self):
        assert classify_url("http://a.com/") is DocumentType.HTML
        assert classify_url("http://a.com/docs/") is DocumentType.HTML

    def test_no_extension_is_html(self):
        assert classify_url("http://a.com/about") is DocumentType.HTML

    def test_unknown_extension_is_none(self):
        assert classify_url("http://a.com/file.weirdext") is None

    def test_query_does_not_confuse_extension(self):
        assert classify_url(
            "http://a.com/pic.jpeg?x=1") is DocumentType.IMAGE


class TestClassify:
    def test_content_type_wins_over_extension(self):
        # Says .gif but serves HTML: trust the header.
        assert classify("http://a.com/x.gif",
                        "text/html") is DocumentType.HTML

    def test_falls_back_to_extension(self):
        assert classify("http://a.com/x.pdf", None) is \
            DocumentType.APPLICATION

    def test_unrecognized_both_is_other(self):
        assert classify("http://a.com/x.weird",
                        "mystery/stuff") is DocumentType.OTHER

    def test_unparseable_content_type_falls_through(self):
        assert classify("http://a.com/a.mp3",
                        "unknown/thing") is DocumentType.MULTIMEDIA
