"""Tests for the ``python -m repro.trace`` CLI."""

import gzip

import pytest

from repro.trace.cli import main
from repro.trace.pipeline import load_trace

SQUID = ("981172094.106 1523 10.0.0.1 TCP_MISS/200 4158 GET "
         "http://a.com/x.gif - DIRECT/a.com image/gif\n"
         "981172095.106 20 10.0.0.1 TCP_MISS/200 900 GET "
         "http://a.com/y.html - DIRECT/a.com text/html\n")


class TestGenerate:
    def test_writes_trace(self, tmp_path, capsys):
        out = tmp_path / "t.csv"
        assert main(["generate", "dfn", "--scale", "0.0005",
                     "-o", str(out)]) == 0
        # Diagnostics go through the logging layer on stderr; stdout
        # stays reserved for results.
        assert "dfn-like requests" in capsys.readouterr().err
        trace = load_trace(out)
        assert len(trace) > 1000

    def test_irm_flag(self, tmp_path):
        out = tmp_path / "irm.csv"
        assert main(["generate", "rtp", "--scale", "0.0005", "--irm",
                     "-o", str(out), "--seed", "5"]) == 0
        assert load_trace(out)

    def test_deterministic_seed(self, tmp_path):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        main(["generate", "dfn", "--scale", "0.0003", "--seed", "7",
              "-o", str(a)])
        main(["generate", "dfn", "--scale", "0.0003", "--seed", "7",
              "-o", str(b)])
        assert a.read_text() == b.read_text()


class TestConvert:
    def test_squid_to_csv(self, tmp_path, capsys):
        log = tmp_path / "access.log"
        log.write_text(SQUID)
        out = tmp_path / "out.csv.gz"
        assert main(["convert", str(log), str(out)]) == 0
        assert "wrote 2" in capsys.readouterr().err
        with gzip.open(out, "rt") as stream:
            assert stream.readline().startswith("timestamp,")

    def test_explicit_format(self, tmp_path):
        log = tmp_path / "access.log"
        log.write_text(SQUID)
        out = tmp_path / "out.csv"
        assert main(["convert", str(log), str(out),
                     "--format", "squid"]) == 0


class TestStatsAndCharacterize:
    def test_stats_line(self, tmp_path, capsys):
        log = tmp_path / "access.log"
        log.write_text(SQUID)
        assert main(["stats", str(log)]) == 0
        out = capsys.readouterr().out
        assert "2 requests" in out
        assert "2 documents" in out

    def test_characterize_tables(self, tmp_path, capsys):
        out = tmp_path / "t.csv"
        main(["generate", "dfn", "--scale", "0.0005", "-o", str(out)])
        capsys.readouterr()
        assert main(["characterize", str(out)]) == 0
        text = capsys.readouterr().out
        assert "Trace properties" in text
        assert "% of Total Requests" in text
        assert "alpha" in text

    def test_no_locality_flag(self, tmp_path, capsys):
        out = tmp_path / "t.csv"
        main(["generate", "dfn", "--scale", "0.0005", "-o", str(out)])
        capsys.readouterr()
        assert main(["characterize", str(out), "--no-locality"]) == 0
        assert "n/a" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
