"""Property-based tests for the trace manipulation tools."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.sampling import (
    anonymize,
    head,
    interleave,
    sample,
    split,
    thin,
)
from repro.types import DocumentType, Request, Trace

DOC_TYPES = list(DocumentType)

traces = st.lists(
    st.tuples(st.integers(0, 20), st.integers(1, 10_000),
              st.integers(0, 4)),
    min_size=1, max_size=80,
).map(lambda rows: Trace([
    Request(float(i), f"u{url_id}", size, size, DOC_TYPES[t])
    for i, (url_id, size, t) in enumerate(rows)
]))


@settings(max_examples=40, deadline=None)
@given(trace=traces, keep=st.integers(1, 10))
def test_thin_counts_and_order(trace, keep):
    thinned = thin(trace, keep)
    expected = (len(trace) + keep - 1) // keep
    assert len(thinned) == expected
    stamps = [r.timestamp for r in thinned]
    assert stamps == sorted(stamps)
    # Every kept request exists in the original at the right position.
    for index, request in enumerate(thinned):
        assert trace[index * keep] is request


@settings(max_examples=40, deadline=None)
@given(trace=traces, n=st.integers(0, 100))
def test_head_is_prefix(trace, n):
    prefix = head(trace, n)
    assert len(prefix) == min(n, len(trace))
    for a, b in zip(prefix, trace):
        assert a is b


@settings(max_examples=40, deadline=None)
@given(trace=traces, fraction=st.floats(0.01, 1.0),
       seed=st.integers(0, 5))
def test_sample_is_subsequence(trace, fraction, seed):
    sampled = sample(trace, fraction, seed=seed)
    assert len(sampled) <= len(trace)
    iterator = iter(trace)
    for request in sampled:
        # Each sampled request appears later in the original order.
        for candidate in iterator:
            if candidate is request:
                break
        else:  # pragma: no cover - failure path
            raise AssertionError("sampled request not in order")


@settings(max_examples=40, deadline=None)
@given(trace=traces,
       cuts=st.sampled_from([[1.0], [0.5, 0.5], [0.2, 0.3, 0.5]]))
def test_split_partitions(trace, cuts):
    parts = split(trace, cuts)
    assert sum(len(p) for p in parts) == len(trace)
    rebuilt = [r for part in parts for r in part]
    assert [r.url for r in rebuilt] == [r.url for r in trace]


@settings(max_examples=30, deadline=None)
@given(a=traces, b=traces)
def test_interleave_conserves_and_orders(a, b):
    merged = interleave([a, b])
    assert len(merged) == len(a) + len(b)
    stamps = [r.timestamp for r in merged]
    assert stamps == sorted(stamps)
    # Prefixing keeps the two sources' documents disjoint.
    sources = {r.url.split("/", 1)[0] for r in merged}
    assert sources <= {"src0", "src1"}


@settings(max_examples=30, deadline=None)
@given(trace=traces, salt=st.text(min_size=1, max_size=8))
def test_anonymize_preserves_structure(trace, salt):
    anon = anonymize(trace, salt)
    assert len(anon) == len(trace)
    # URL identity is an isomorphism: equal before <=> equal after.
    mapping = {}
    for original, hashed in zip(trace, anon):
        previous = mapping.setdefault(original.url, hashed.url)
        assert previous == hashed.url
    assert len(set(mapping.values())) == len(mapping)
