"""Tests for the Common Log Format parser."""

import pytest

from repro.errors import TraceFormatError
from repro.trace.clf import CLFParser, format_clf_line, parse_clf_timestamp

GOOD_LINE = ('host1 - frank [10/Oct/2000:13:55:36 -0700] '
             '"GET /apache_pb.gif HTTP/1.0" 200 2326')

COMBINED_LINE = GOOD_LINE + ' "http://ref/" "Mozilla/4.08"'


class TestTimestamp:
    def test_parses_with_offset(self):
        # 13:55:36 -0700 == 20:55:36 UTC
        epoch = parse_clf_timestamp("10/Oct/2000:13:55:36 -0700")
        import time
        assert time.gmtime(epoch)[:6] == (2000, 10, 10, 20, 55, 36)

    def test_parses_positive_offset(self):
        epoch_utc = parse_clf_timestamp("10/Oct/2000:12:00:00 +0000")
        epoch_east = parse_clf_timestamp("10/Oct/2000:14:00:00 +0200")
        assert epoch_utc == epoch_east

    def test_parses_without_offset(self):
        epoch = parse_clf_timestamp("01/Jan/2001:00:00:00")
        import time
        assert time.gmtime(epoch)[:3] == (2001, 1, 1)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_clf_timestamp("yesterday at noon")
        with pytest.raises(ValueError):
            parse_clf_timestamp("10/Zzz/2000:13:55:36 -0700")


class TestParser:
    def test_parse_good_line(self):
        record = CLFParser().parse_line(GOOD_LINE)
        assert record.client == "host1"
        assert record.method == "GET"
        assert record.url == "/apache_pb.gif"
        assert record.status == 200
        assert record.size == 2326
        assert record.content_type is None  # CLF has no MIME field

    def test_combined_format_tolerated(self):
        record = CLFParser().parse_line(COMBINED_LINE)
        assert record.url == "/apache_pb.gif"

    def test_dash_size_becomes_zero(self):
        line = GOOD_LINE.rsplit(" ", 1)[0] + " -"
        record = CLFParser().parse_line(line)
        assert record.size == 0

    def test_malformed_lenient(self):
        parser = CLFParser()
        assert parser.parse_line("definitely not CLF") is None
        assert parser.skipped == 1

    def test_malformed_strict_raises(self):
        with pytest.raises(TraceFormatError):
            CLFParser(strict=True).parse_line("nope", line_number=3)

    def test_blank_lines_skipped(self):
        parser = CLFParser()
        assert parser.parse_line("") is None
        assert parser.parse_line("# hi") is None
        assert parser.skipped == 0

    def test_request_without_protocol(self):
        line = ('h - - [10/Oct/2000:13:55:36 +0000] "/just-a-path" 200 10')
        record = CLFParser().parse_line(line)
        assert record.method == "GET"
        assert record.url == "/just-a-path"

    def test_parse_stream(self):
        records = list(CLFParser().parse([GOOD_LINE, "", GOOD_LINE]))
        assert len(records) == 2

    def test_sniff(self):
        assert CLFParser.sniff(GOOD_LINE)
        assert not CLFParser.sniff("1.0 1 c TCP_MISS/200 10 GET http://u")


def test_format_round_trip():
    record = CLFParser().parse_line(GOOD_LINE)
    line = format_clf_line(record)
    again = CLFParser(strict=True).parse_line(line)
    assert again.url == record.url
    assert again.status == record.status
    assert again.size == record.size
    assert again.timestamp == record.timestamp
