"""Property-based round-trip tests for all trace formats.

Hypothesis generates arbitrary (well-formed) records; formatting then
re-parsing must preserve every field each format can carry.
"""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.clf import CLFParser, format_clf_line
from repro.trace.csvtrace import CsvTraceParser, dumps
from repro.trace.record import LogRecord
from repro.trace.squid import SquidParser, format_squid_line
from repro.types import DocumentType, Request

# URL path segments: printable, no whitespace/quotes/control chars.
url_segments = st.text(
    alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd"),
        whitelist_characters="-_.~"),
    min_size=1, max_size=12)

urls = st.builds(
    lambda host, path: f"http://{host}.example/{path}",
    url_segments, url_segments)

mime_types = st.sampled_from([
    None, "text/html", "image/gif", "video/mpeg", "application/pdf",
    "application/x-thing+xml"])

log_records = st.builds(
    LogRecord,
    timestamp=st.floats(min_value=1.0, max_value=2_000_000_000.0,
                        allow_nan=False),
    url=urls,
    status=st.sampled_from([200, 203, 206, 301, 304, 404, 500]),
    size=st.integers(min_value=0, max_value=2 ** 31 - 1),
    method=st.sampled_from(["GET", "HEAD", "POST"]),
    content_type=mime_types,
    client=st.just("10.1.2.3"),
    elapsed_ms=st.integers(min_value=0, max_value=60_000),
)


@settings(max_examples=80, deadline=None)
@given(record=log_records)
def test_squid_round_trip(record):
    line = format_squid_line(record)
    again = SquidParser(strict=True).parse_line(line)
    assert again is not None
    assert again.url == record.url
    assert again.status == record.status
    assert again.size == record.size
    assert again.method == record.method
    assert again.content_type == record.content_type
    assert abs(again.timestamp - record.timestamp) < 0.01
    assert again.elapsed_ms == record.elapsed_ms


@settings(max_examples=80, deadline=None)
@given(record=log_records)
def test_clf_round_trip(record):
    line = format_clf_line(record)
    again = CLFParser(strict=True).parse_line(line)
    assert again is not None
    assert again.url == record.url
    assert again.status == record.status
    assert again.size == record.size
    assert again.method == record.method
    # CLF timestamps have one-second resolution.
    assert abs(again.timestamp - record.timestamp) < 1.0


requests_strategy = st.builds(
    lambda ts, url, size, cut, doc_type, status, mime: Request(
        timestamp=ts, url=url, size=size,
        transfer_size=min(size, cut), doc_type=doc_type,
        status=status, content_type=mime),
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    urls,
    st.integers(min_value=0, max_value=2 ** 31 - 1),
    st.integers(min_value=0, max_value=2 ** 31 - 1),
    st.sampled_from(list(DocumentType)),
    st.sampled_from([200, 203, 304]),
    mime_types,
)


@settings(max_examples=80, deadline=None)
@given(records=st.lists(requests_strategy, min_size=1, max_size=20))
def test_csv_round_trip(records):
    text = dumps(records)
    again = list(CsvTraceParser(strict=True).parse(io.StringIO(text)))
    assert len(again) == len(records)
    for original, parsed in zip(records, again):
        assert parsed.url == original.url
        assert parsed.size == original.size
        assert parsed.transfer_size == original.transfer_size
        assert parsed.doc_type is original.doc_type
        assert parsed.status == original.status
        assert parsed.content_type == original.content_type
        assert abs(parsed.timestamp - original.timestamp) <= 0.001


@settings(max_examples=40, deadline=None)
@given(records=st.lists(log_records, min_size=1, max_size=15))
def test_squid_stream_round_trip_via_autodetect(records, tmp_path_factory):
    from repro.trace.reader import open_trace
    path = tmp_path_factory.mktemp("rt") / "log"
    path.write_text("".join(format_squid_line(r) + "\n" for r in records))
    parsed = list(open_trace(path))
    assert len(parsed) == len(records)
