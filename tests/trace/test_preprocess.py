"""Tests for the cacheability preprocessing (paper Section 2)."""

import pytest

from repro.trace.preprocess import (
    CACHEABLE_STATUS_CODES,
    CacheabilityFilter,
    is_cacheable_status,
    is_uncacheable_url,
)
from repro.trace.record import LogRecord


def record(url="http://a.com/x.gif", status=200, size=100, method="GET"):
    return LogRecord(timestamp=0.0, url=url, status=status, size=size,
                     method=method)


class TestHeuristics:
    def test_cgi_marker(self):
        assert is_uncacheable_url("http://a.com/cgi-bin/run")
        assert is_uncacheable_url("http://a.com/CGI-BIN/run")  # case

    def test_query_marker(self):
        assert is_uncacheable_url("http://a.com/search?q=x")

    def test_plain_url_cacheable(self):
        assert not is_uncacheable_url("http://a.com/images/logo.gif")

    def test_paper_status_code_set(self):
        assert CACHEABLE_STATUS_CODES == {200, 203, 206, 300, 301, 302, 304}
        for code in (200, 203, 206, 300, 301, 302, 304):
            assert is_cacheable_status(code)
        for code in (204, 307, 400, 403, 404, 500, 503):
            assert not is_cacheable_status(code)


class TestFilter:
    def test_accepts_plain_get_200(self):
        assert CacheabilityFilter().accepts(record())

    def test_drops_query_url(self):
        filt = CacheabilityFilter()
        assert not filt.accepts(record(url="http://a.com/x?y=1"))
        assert filt.stats.dropped_url == 1

    def test_drops_cgi_url(self):
        assert not CacheabilityFilter().accepts(
            record(url="http://a.com/cgi-bin/x"))

    def test_drops_bad_status(self):
        filt = CacheabilityFilter()
        assert not filt.accepts(record(status=404))
        assert filt.stats.dropped_status == 1

    def test_drops_non_get(self):
        filt = CacheabilityFilter()
        assert not filt.accepts(record(method="POST"))
        assert filt.stats.dropped_method == 1

    def test_drops_zero_size(self):
        filt = CacheabilityFilter()
        assert not filt.accepts(record(size=0))
        assert filt.stats.dropped_empty == 1

    def test_keeps_zero_size_when_configured(self):
        filt = CacheabilityFilter(drop_zero_size=False)
        assert filt.accepts(record(size=0))

    def test_stats_totals(self):
        filt = CacheabilityFilter()
        records = [record(), record(status=500),
                   record(url="http://a/cgi/x"), record()]
        kept = list(filt.filter(records))
        assert len(kept) == 2
        assert filt.stats.seen == 4
        assert filt.stats.kept == 2

    def test_custom_markers(self):
        filt = CacheabilityFilter(url_markers=("secret",))
        assert not filt.accepts(record(url="http://a.com/secret/x.gif"))
        assert filt.accepts(record(url="http://a.com/cgi-bin/x.gif"))

    def test_custom_status_codes(self):
        filt = CacheabilityFilter(status_codes=frozenset({200}))
        assert not filt.accepts(record(status=304))
