"""Tests for the Squid native access.log parser."""

import pytest

from repro.errors import TraceFormatError
from repro.trace.record import LogRecord
from repro.trace.squid import SquidParser, format_squid_line

GOOD_LINE = ("981172094.106 1523 10.0.0.1 TCP_MISS/200 4158 GET "
             "http://a.com/x.gif - DIRECT/a.com image/gif")


def test_parse_full_line():
    record = SquidParser().parse_line(GOOD_LINE)
    assert record.timestamp == pytest.approx(981172094.106)
    assert record.elapsed_ms == 1523
    assert record.client == "10.0.0.1"
    assert record.status == 200
    assert record.size == 4158
    assert record.method == "GET"
    assert record.url == "http://a.com/x.gif"
    assert record.content_type == "image/gif"


def test_parse_line_without_content_type():
    line = ("981172094.106 15 10.0.0.1 TCP_HIT/304 120 GET "
            "http://a.com/y.html - NONE/-")
    record = SquidParser().parse_line(line)
    assert record.content_type is None
    assert record.status == 304


def test_dash_content_type_is_none():
    line = GOOD_LINE.rsplit(" ", 1)[0] + " -"
    record = SquidParser().parse_line(line)
    assert record.content_type is None


def test_blank_and_comment_lines_skipped():
    parser = SquidParser()
    assert parser.parse_line("") is None
    assert parser.parse_line("   ") is None
    assert parser.parse_line("# comment") is None
    assert parser.skipped == 0


def test_malformed_line_lenient_counts_skip():
    parser = SquidParser(strict=False)
    assert parser.parse_line("not a log line") is None
    assert parser.skipped == 1


def test_malformed_line_strict_raises():
    parser = SquidParser(strict=True)
    with pytest.raises(TraceFormatError):
        parser.parse_line("garbage here too short", line_number=7)


@pytest.mark.parametrize("bad", [
    "x 1523 c TCP_MISS/200 4158 GET http://u",       # bad timestamp
    "1.0 x c TCP_MISS/200 4158 GET http://u",        # bad elapsed
    "1.0 1 c TCPMISS200 4158 GET http://u",          # no slash
    "1.0 1 c TCP_MISS/xx 4158 GET http://u",         # bad status
    "1.0 1 c TCP_MISS/200 xx GET http://u",          # bad size
])
def test_malformed_variants(bad):
    parser = SquidParser(strict=True)
    with pytest.raises(TraceFormatError):
        parser.parse_line(bad)


def test_parse_stream():
    lines = [GOOD_LINE, "", "# comment", GOOD_LINE]
    records = list(SquidParser().parse(lines))
    assert len(records) == 2
    assert all(isinstance(r, LogRecord) for r in records)


def test_sniff():
    assert SquidParser.sniff(GOOD_LINE)
    assert not SquidParser.sniff("a - - [x] \"GET /\" 200 5")
    assert not SquidParser.sniff("short line")


def test_format_round_trip():
    record = SquidParser().parse_line(GOOD_LINE)
    line = format_squid_line(record)
    again = SquidParser(strict=True).parse_line(line)
    assert again.url == record.url
    assert again.status == record.status
    assert again.size == record.size
    assert again.content_type == record.content_type
    assert again.timestamp == pytest.approx(record.timestamp)
