"""Property-based tests for the columnar trace codec.

Hypothesis drives arbitrary request streams — unicode and pathologically
long urls, zero sizes, repeated documents with size changes — through a
write/read cycle, and separately attacks the file's integrity story:
every truncation point and every corrupted byte must be detected.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.columnar import (
    HEADER_RESERVE,
    ColumnarFormatError,
    open_columnar,
    read_header,
    write_columnar,
)
from repro.types import DocumentType, Request, Trace

# Urls exercise the string table: ascii, unicode (escaped or not by the
# source format — the columnar blob is raw utf-8 either way), and very
# long paths that span flush blocks.
url_text = st.text(
    alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd", "Lo"),
        whitelist_characters="-_.~%/"),
    min_size=1, max_size=40)
urls = st.one_of(
    st.builds(lambda p: f"http://h.example/{p}", url_text),
    st.builds(lambda p: f"http://h.example/long/{p * 50}", url_text),
)

content_types = st.sampled_from(
    [None, "text/html", "image/png", "väri/tyyppi"])

requests_strategy = st.builds(
    lambda ts, url, size, cut, doc_type, status, mime: Request(
        timestamp=ts, url=url, size=size,
        transfer_size=min(size, cut), doc_type=doc_type,
        status=status, content_type=mime),
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    urls,
    st.integers(min_value=0, max_value=2 ** 40),   # zero sizes included
    st.integers(min_value=0, max_value=2 ** 40),
    st.sampled_from(list(DocumentType)),
    st.sampled_from([200, 203, 206, 304]),
    content_types,
)

streams = st.lists(requests_strategy, min_size=0, max_size=60)


@settings(max_examples=80, deadline=None)
@given(requests=streams)
def test_round_trip_is_exact(requests, tmp_path_factory):
    path = tmp_path_factory.mktemp("col") / "t.rcol"
    write_columnar(path, requests)
    with open_columnar(path) as trace:
        assert list(trace) == requests


@settings(max_examples=60, deadline=None)
@given(requests=streams)
def test_header_metadata_matches_object_trace(requests,
                                              tmp_path_factory):
    path = tmp_path_factory.mktemp("col") / "t.rcol"
    write_columnar(path, requests, name="p")
    expected = Trace(requests, name="p").metadata()
    with open_columnar(path) as trace:
        assert trace.metadata() == expected


@settings(max_examples=60, deadline=None)
@given(requests=streams)
def test_epoch_column_counts_size_changes(requests, tmp_path_factory):
    path = tmp_path_factory.mktemp("col") / "t.rcol"
    write_columnar(path, requests)
    last, changes = {}, {}
    expected = []
    for request in requests:
        if request.url in last and last[request.url] != request.size:
            changes[request.url] = changes.get(request.url, 0) + 1
        last[request.url] = request.size
        expected.append(changes.get(request.url, 0))
    with open_columnar(path) as trace:
        assert trace.epochs.tolist() == expected


@settings(max_examples=25, deadline=None)
@given(requests=st.lists(requests_strategy, min_size=1, max_size=20),
       drop=st.integers(min_value=1, max_value=64))
def test_any_truncation_is_detected(requests, drop, tmp_path_factory):
    path = tmp_path_factory.mktemp("col") / "t.rcol"
    write_columnar(path, requests)
    data = path.read_bytes()
    clipped = min(drop, len(data) - 1)
    path.write_bytes(data[:-clipped])
    try:
        read_header(path)
    except ColumnarFormatError:
        return          # header read already caught it
    # Header intact ⇒ the data-section CRC sweep must catch it.
    try:
        open_columnar(path, verify=True)
    except ColumnarFormatError:
        return
    raise AssertionError("truncation went undetected")


@settings(max_examples=25, deadline=None)
@given(requests=st.lists(requests_strategy, min_size=1, max_size=20),
       offset=st.integers(min_value=0, max_value=10 ** 9),
       flip=st.integers(min_value=1, max_value=255))
def test_any_corrupted_byte_is_detected(requests, offset, flip,
                                        tmp_path_factory):
    path = tmp_path_factory.mktemp("col") / "t.rcol"
    write_columnar(path, requests)
    data = bytearray(path.read_bytes())
    header = read_header(path)
    # Target a byte the format actually covers: the header (fixed +
    # json) or the data section.  The reserve padding between them is
    # dead space by design.
    spans = [(0, _header_length(data)),
             (header.records_offset, header.data_end)]
    total = sum(stop - start for start, stop in spans)
    pick = offset % total
    for start, stop in spans:
        if pick < stop - start:
            index = start + pick
            break
        pick -= stop - start
    data[index] ^= flip
    path.write_bytes(bytes(data))
    try:
        open_columnar(path, verify=True)
    except ColumnarFormatError:
        return
    raise AssertionError(
        f"corrupt byte at {index} went undetected")


def _header_length(data: bytes) -> int:
    import struct
    return struct.unpack_from("<8sIII", data)[2]


@settings(max_examples=40, deadline=None)
@given(requests=streams)
def test_count_requests_matches_len(requests, tmp_path_factory):
    from repro.trace.pipeline import count_requests
    path = tmp_path_factory.mktemp("col") / "t.rcol"
    write_columnar(path, requests)
    assert count_requests(path) == len(requests)
