"""Unit tests for the columnar (``.rcol``) trace codec.

Round trips, header integrity (CRCs, truncation, versioning), lazy
string tables, O(1) metadata, append mode, and the conversion helper.
"""

import json
import struct
import zlib

import pytest

from repro.trace.columnar import (
    COLUMNAR_SUFFIX,
    FORMAT_VERSION,
    HEADER_RESERVE,
    MAGIC,
    READER_VERSION,
    RECORD_DTYPE,
    ColumnarFormatError,
    ColumnarWriter,
    convert_to_columnar,
    inspect_columnar,
    is_columnar_file,
    open_columnar,
    read_header,
    write_columnar,
)
from repro.trace.csvtrace import dumps
from repro.trace.pipeline import count_requests
from repro.types import DOCUMENT_TYPES, DocumentType, Request, Trace

from tests.conftest import make_request


def sample_requests():
    return [
        make_request(url="http://a/x.html", size=1000, timestamp=1.5),
        make_request(url="http://a/y.gif", size=200, transfer=150,
                     doc_type=DocumentType.IMAGE, timestamp=2.0),
        make_request(url="http://a/x.html", size=1000, timestamp=2.5),
        # size change: opens modification epoch 1 for x.html
        make_request(url="http://a/x.html", size=1200, timestamp=3.0),
        make_request(url="http://b/z.mpg", size=50_000,
                     doc_type=DocumentType.MULTIMEDIA, timestamp=4.0,
                     status=206),
    ]


def write_sample(tmp_path, requests=None, name="sample"):
    path = tmp_path / f"t{COLUMNAR_SUFFIX}"
    if requests is None:
        requests = sample_requests()
    write_columnar(path, requests, name=name)
    return path


def test_round_trip_preserves_every_field(tmp_path):
    requests = sample_requests()
    path = write_sample(tmp_path, requests)
    with open_columnar(path) as trace:
        decoded = list(trace)
    assert decoded == requests


def test_getitem_and_slicing(tmp_path):
    requests = sample_requests()
    path = write_sample(tmp_path, requests)
    with open_columnar(path) as trace:
        assert trace[0] == requests[0]
        assert trace[-1] == requests[-1]
        assert trace[1:3] == requests[1:3]
        assert len(trace) == len(requests)


def test_metadata_matches_object_trace(tmp_path):
    requests = sample_requests()
    path = write_sample(tmp_path, requests, name="meta")
    expected = Trace(requests, name="meta").metadata()
    with open_columnar(path) as trace:
        assert trace.metadata() == expected


def test_doc_id_interning_and_epochs(tmp_path):
    path = write_sample(tmp_path)
    with open_columnar(path) as trace:
        doc_ids = trace.doc_ids.tolist()
        # x.html interned once, referenced three times.
        assert doc_ids == [0, 1, 0, 0, 2]
        assert trace.urls() == ["http://a/x.html", "http://a/y.gif",
                                "http://b/z.mpg"]
        # epoch bumps only when the size actually changes
        assert trace.epochs.tolist() == [0, 0, 0, 1, 0]


def test_type_histogram_matches_requests(tmp_path):
    requests = sample_requests()
    path = write_sample(tmp_path, requests)
    with open_columnar(path) as trace:
        histogram = trace.type_histogram()
    for doc_type in DOCUMENT_TYPES:
        mine = [r for r in requests if r.doc_type is doc_type]
        assert histogram[doc_type]["requests"] == len(mine)
        assert histogram[doc_type]["requested_bytes"] == sum(
            r.transfer_size for r in mine)


def test_content_type_table(tmp_path):
    requests = [
        make_request(url="http://a/1"),
        Request(timestamp=1.0, url="http://a/2", size=10,
                transfer_size=10, doc_type=DocumentType.HTML,
                status=200, content_type="text/html"),
        Request(timestamp=2.0, url="http://a/3", size=10,
                transfer_size=10, doc_type=DocumentType.IMAGE,
                status=200, content_type="image/gif"),
    ]
    path = write_sample(tmp_path, requests)
    with open_columnar(path) as trace:
        assert trace.ctype_ids.tolist() == [0, 1, 2]
        assert trace.content_types() == ["text/html", "image/gif"]
        assert [r.content_type for r in trace] == \
            [None, "text/html", "image/gif"]


def test_empty_trace_round_trips(tmp_path):
    path = write_sample(tmp_path, requests=[])
    assert is_columnar_file(path)
    with open_columnar(path) as trace:
        assert len(trace) == 0
        assert list(trace) == []
        assert trace.metadata().total_requests == 0
    assert count_requests(path) == 0


def test_count_requests_is_a_header_read(tmp_path):
    requests = sample_requests()
    path = write_sample(tmp_path, requests)
    assert count_requests(path) == len(requests)
    # No .rcount sidecar for columnar files — the header answers.
    assert not (tmp_path / f"t{COLUMNAR_SUFFIX}.rcount").exists()


def test_count_sidecar_for_text_formats(tmp_path):
    requests = sample_requests()
    path = tmp_path / "t.csv"
    path.write_text(dumps(requests))
    assert count_requests(path) == len(requests)
    sidecar = tmp_path / "t.csv.rcount"
    assert sidecar.exists()
    cached = json.loads(sidecar.read_text())
    assert cached["count"] == len(requests)
    # A stale sidecar (file changed) is ignored and rewritten.
    sidecar.write_text(json.dumps({"count": 999, "fmt": "csv",
                                   "size": -1, "mtime_ns": -1}))
    assert count_requests(path) == len(requests)


def test_writer_name_lands_in_header(tmp_path):
    path = write_sample(tmp_path, name="dfn-like")
    with open_columnar(path) as trace:
        assert trace.name == "dfn-like"
    assert read_header(path).extra["name"] == "dfn-like"


def test_inspect_columnar(tmp_path):
    requests = sample_requests()
    path = write_sample(tmp_path, requests)
    info = inspect_columnar(path)
    assert info["requests"] == len(requests)
    assert info["distinct_documents"] == 3
    assert info["format_version"] == FORMAT_VERSION
    assert info["requested_bytes"] == sum(
        r.transfer_size for r in requests)


def test_append_mode_continues_the_record_section(tmp_path):
    first = sample_requests()
    more = [make_request(url="http://a/x.html", size=1200,
                         timestamp=9.0),
            make_request(url="http://new/doc", size=77, timestamp=10.0)]
    path = write_sample(tmp_path, first)
    writer = ColumnarWriter.open_append(path)
    writer.write_all(more)
    writer.close()
    with open_columnar(path) as trace:
        assert list(trace) == first + more
        # epoch state survives the reopen: x.html stays at epoch 1
        assert trace.epochs.tolist()[-2] == 1
        assert trace.metadata() == Trace(first + more,
                                         name="sample").metadata()


def test_truncated_file_is_detected(tmp_path):
    path = write_sample(tmp_path)
    data = path.read_bytes()
    path.write_bytes(data[:-8])
    with pytest.raises(ColumnarFormatError, match="truncated"):
        read_header(path)
    with pytest.raises(ColumnarFormatError):
        open_columnar(path)


def test_data_corruption_is_detected_by_verify(tmp_path):
    path = write_sample(tmp_path)
    data = bytearray(path.read_bytes())
    data[HEADER_RESERVE + 3] ^= 0xFF   # flip a record byte
    path.write_bytes(bytes(data))
    with pytest.raises(ColumnarFormatError, match="data CRC"):
        open_columnar(path, verify=True)
    # verify=False trades the CRC pass for open speed — it must not
    # raise, which is exactly why sweeps own the verified open.
    with open_columnar(path, verify=False) as trace:
        assert len(trace) == len(sample_requests())


def test_header_corruption_always_detected(tmp_path):
    path = write_sample(tmp_path)
    data = bytearray(path.read_bytes())
    data[20] ^= 0xFF                   # inside the fixed header
    path.write_bytes(bytes(data))
    with pytest.raises(ColumnarFormatError):
        open_columnar(path, verify=False)


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / f"x{COLUMNAR_SUFFIX}"
    path.write_bytes(b"NOTATRACE" + b"\0" * 100)
    assert not is_columnar_file(path)
    with pytest.raises(ColumnarFormatError, match="magic"):
        read_header(path)


def _rewrite_header_field(path, *, min_reader=None, extra_json=None):
    """Surgically patch header fields and re-seal the header CRC."""
    data = bytearray(path.read_bytes())
    fixed = struct.Struct("<8sIIIIQQQQQQQQII")
    fields = list(fixed.unpack_from(bytes(data)))
    if min_reader is not None:
        fields[2] = min_reader
    json_bytes = bytes(data[fixed.size:fields[3]])
    if extra_json is not None:
        json_bytes = json.dumps(extra_json, separators=(",", ":"),
                                sort_keys=True).encode()
        fields[3] = fixed.size + len(json_bytes)
        fields[4] = len(json_bytes)
    fields[-1] = 0
    without_crc = fixed.pack(*fields)
    fields[-1] = zlib.crc32(without_crc + json_bytes)
    patched = fixed.pack(*fields) + json_bytes
    data[:len(patched)] = patched
    if len(patched) < HEADER_RESERVE:
        data[len(patched):HEADER_RESERVE] = \
            b"\0" * (HEADER_RESERVE - len(patched))
    path.write_bytes(bytes(data))


def test_future_min_reader_rejected_with_clear_error(tmp_path):
    path = write_sample(tmp_path)
    _rewrite_header_field(path, min_reader=READER_VERSION + 1)
    with pytest.raises(ColumnarFormatError, match="needs reader"):
        read_header(path)


def test_unknown_header_extras_are_ignored(tmp_path):
    # Additive format revisions add json fields; old readers skip them.
    path = write_sample(tmp_path)
    header = read_header(path)
    extra = dict(header.extra)
    extra["future_field"] = {"anything": [1, 2, 3]}
    _rewrite_header_field(path, extra_json=extra)
    with open_columnar(path) as trace:
        assert list(trace) == sample_requests()


def test_record_layout_mismatch_rejected(tmp_path):
    path = write_sample(tmp_path)
    header = read_header(path)
    extra = dict(header.extra)
    extra["record_itemsize"] = RECORD_DTYPE.itemsize + 8
    _rewrite_header_field(path, extra_json=extra)
    with pytest.raises(ColumnarFormatError, match="layout mismatch"):
        read_header(path)


def test_oversized_document_rejected(tmp_path):
    huge = Request(timestamp=0.0, url="http://a/big", size=2 ** 63,
                   transfer_size=10, doc_type=DocumentType.OTHER,
                   status=200)
    with pytest.raises(ColumnarFormatError, match="63-bit"):
        write_columnar(tmp_path / f"t{COLUMNAR_SUFFIX}", [huge])


def test_convert_round_trip_from_csv(tmp_path):
    requests = sample_requests()
    source = tmp_path / "trace.csv"
    source.write_text(dumps(requests))
    dest = convert_to_columnar(source)
    assert dest.suffix == COLUMNAR_SUFFIX
    with open_columnar(dest) as trace:
        decoded = list(trace)
    assert len(decoded) == len(requests)
    for original, parsed in zip(requests, decoded):
        assert parsed.url == original.url
        assert parsed.size == original.size
        assert parsed.transfer_size == original.transfer_size
        assert parsed.doc_type is original.doc_type
        # csv carries millisecond timestamps
        assert abs(parsed.timestamp - original.timestamp) <= 0.001


def test_open_trace_routes_columnar(tmp_path):
    from repro.trace.reader import open_trace

    path = write_sample(tmp_path)
    assert [r.url for r in open_trace(path)] == \
        [r.url for r in sample_requests()]
