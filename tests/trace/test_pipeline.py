"""Tests for the end-to-end preprocessing pipeline and trace I/O."""

import pytest

from repro.trace.pipeline import TracePipeline, load_trace
from repro.trace.record import LogRecord
from repro.trace.writer import write_trace
from repro.types import DocumentType, Request, Trace


def record(url, size, status=200, content_type=None, ts=0.0):
    return LogRecord(timestamp=ts, url=url, status=status, size=size,
                     content_type=content_type)


class TestPipeline:
    def test_drops_uncacheable(self):
        pipeline = TracePipeline()
        records = [
            record("http://a/x.gif", 100, content_type="image/gif"),
            record("http://a/cgi-bin/q", 100),
            record("http://a/y.html?id=1", 100),
            record("http://a/z.pdf", 100, status=404),
        ]
        out = list(pipeline.process(records))
        assert len(out) == 1
        assert out[0].doc_type is DocumentType.IMAGE

    def test_classification_prefers_mime(self):
        pipeline = TracePipeline()
        out = list(pipeline.process([
            record("http://a/x.gif", 100, content_type="text/html")]))
        assert out[0].doc_type is DocumentType.HTML

    def test_interrupted_transfer_reconstruction(self):
        """Full fetch then aborted fetch: size stays, transfer shrinks."""
        pipeline = TracePipeline()
        out = list(pipeline.process([
            record("http://a/big.mpg", 1_000_000),
            record("http://a/big.mpg", 200_000),
        ]))
        assert out[0].size == 1_000_000
        assert out[1].size == 1_000_000        # canonical size kept
        assert out[1].transfer_size == 200_000  # logged bytes

    def test_modification_reconstruction(self):
        pipeline = TracePipeline()
        out = list(pipeline.process([
            record("http://a/page.html", 10_000),
            record("http://a/page.html", 10_200),  # +2 %: modified
        ]))
        assert out[1].size == 10_200
        assert out[1].transfer_size == 10_200

    def test_requests_carry_metadata(self):
        pipeline = TracePipeline()
        out = list(pipeline.process([
            record("http://a/x.gif", 100, content_type="image/gif",
                   ts=42.5)]))
        assert out[0].timestamp == 42.5
        assert out[0].status == 200
        assert out[0].content_type == "image/gif"


class TestLoadTrace:
    def test_load_csv_round_trip(self, tmp_path):
        requests = [
            Request(0.0, "http://a/x.gif", 100, 100, DocumentType.IMAGE),
            Request(1.0, "http://a/y.pdf", 900, 900,
                    DocumentType.APPLICATION),
        ]
        path = tmp_path / "trace.csv"
        assert write_trace(path, requests) == 2
        trace = load_trace(path)
        assert isinstance(trace, Trace)
        assert len(trace) == 2
        assert trace[0].doc_type is DocumentType.IMAGE

    def test_load_csv_gzip(self, tmp_path):
        requests = [Request(0.0, "u", 10, 10, DocumentType.OTHER)]
        path = tmp_path / "trace.csv.gz"
        write_trace(path, requests)
        assert len(load_trace(path)) == 1

    def test_load_raw_log_applies_pipeline(self, tmp_path):
        lines = [
            "1.0 10 c TCP_MISS/200 500 GET http://a/x.gif - D/- image/gif",
            "2.0 10 c TCP_MISS/200 500 GET http://a/q?x=1 - D/- text/html",
            "3.0 10 c TCP_MISS/404 500 GET http://a/z.gif - D/- image/gif",
        ]
        path = tmp_path / "access.log"
        path.write_text("\n".join(lines) + "\n")
        trace = load_trace(path)
        assert len(trace) == 1  # query URL and 404 dropped
        assert trace[0].url == "http://a/x.gif"

    def test_load_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        trace = load_trace(path)
        assert len(trace) == 0

    def test_trace_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "mytrace.csv"
        write_trace(path, [Request(0.0, "u", 10, 10, DocumentType.OTHER)])
        assert load_trace(path).name == "mytrace"
        assert load_trace(path, name="custom").name == "custom"
