"""Tests for trace file reading with format auto-detection."""

import gzip

import pytest

from repro.errors import TraceFormatError
from repro.trace.reader import detect_format, open_trace, read_records
from repro.types import Request

SQUID = ("981172094.106 1523 10.0.0.1 TCP_MISS/200 4158 GET "
         "http://a.com/x.gif - DIRECT/a.com image/gif\n")
CLF = ('host1 - - [10/Oct/2000:13:55:36 -0700] '
       '"GET /a.gif HTTP/1.0" 200 2326\n')
CSV = ("timestamp,url,size,transfer_size,doc_type,status,content_type\n"
       "1.000,http://a/x.gif,100,100,image,200,image/gif\n")


class TestDetect:
    def test_detects_each_format(self):
        assert detect_format(SQUID) == "squid"
        assert detect_format(CLF) == "clf"
        assert detect_format(CSV.splitlines()[0]) == "csv"

    def test_unknown_raises(self):
        with pytest.raises(TraceFormatError):
            detect_format("mystery content")


class TestOpenTrace:
    def test_auto_detect_squid(self, tmp_path):
        path = tmp_path / "access.log"
        path.write_text(SQUID * 3)
        records = list(open_trace(path))
        assert len(records) == 3
        assert records[0].url == "http://a.com/x.gif"

    def test_auto_detect_csv_yields_requests(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(CSV)
        records = list(open_trace(path))
        assert len(records) == 1
        assert isinstance(records[0], Request)

    def test_explicit_format(self, tmp_path):
        path = tmp_path / "log.txt"
        path.write_text(CLF)
        records = list(open_trace(path, fmt="clf"))
        assert records[0].status == 200

    def test_gzip_transparent(self, tmp_path):
        path = tmp_path / "access.log.gz"
        with gzip.open(path, "wt") as stream:
            stream.write(SQUID * 5)
        assert len(list(open_trace(path))) == 5

    def test_leading_blank_lines_skipped_for_detection(self, tmp_path):
        path = tmp_path / "log"
        path.write_text("\n\n" + SQUID)
        assert len(list(open_trace(path))) == 1

    def test_empty_file_yields_nothing(self, tmp_path):
        path = tmp_path / "empty.log"
        path.write_text("")
        assert list(open_trace(path)) == []

    def test_unknown_format_name(self, tmp_path):
        path = tmp_path / "log"
        path.write_text(SQUID)
        with pytest.raises(TraceFormatError):
            list(open_trace(path, fmt="xml"))


class TestErrorBudget:
    def test_lenient_default_skips_unlimited(self, tmp_path):
        path = tmp_path / "access.log"
        path.write_text(SQUID + "garbage line\n" * 5 + SQUID)
        assert len(list(open_trace(path))) == 2

    def test_budget_exhaustion_aborts_loudly(self, tmp_path):
        path = tmp_path / "access.log"
        path.write_text(SQUID + "garbage line\n" * 5 + SQUID)
        with pytest.raises(TraceFormatError, match="error budget"):
            list(open_trace(path, max_errors=3))

    def test_budget_boundary_is_inclusive(self, tmp_path):
        path = tmp_path / "access.log"
        path.write_text(SQUID + "garbage line\n" * 3 + SQUID)
        # Exactly max_errors malformed lines is still within budget.
        assert len(list(open_trace(path, max_errors=3))) == 2

    def test_quarantine_callback_sees_each_bad_line(self, tmp_path):
        path = tmp_path / "access.log"
        path.write_text(SQUID + "garbage one\n" + SQUID + "garbage two\n")
        quarantined = []
        records = list(open_trace(path, on_error=quarantined.append))
        assert len(records) == 2
        assert len(quarantined) == 2
        assert all(isinstance(e, TraceFormatError) for e in quarantined)
        assert quarantined[0].line_number == 2
        assert quarantined[1].line_number == 4

    def test_budget_applies_to_clf(self, tmp_path):
        path = tmp_path / "access.log"
        path.write_text(CLF + "not clf at all\n" * 2)
        with pytest.raises(TraceFormatError, match="error budget"):
            list(open_trace(path, fmt="clf", max_errors=1))

    def test_budget_applies_to_csv(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(CSV + "1.0,http://a/y.gif,not-a-size\n" * 2)
        with pytest.raises(TraceFormatError, match="error budget"):
            list(open_trace(path, strict=False, max_errors=1))

    def test_strict_wins_over_budget(self, tmp_path):
        path = tmp_path / "access.log"
        path.write_text(SQUID + "garbage\n")
        with pytest.raises(TraceFormatError) as info:
            list(open_trace(path, strict=True, max_errors=100))
        assert "error budget" not in str(info.value)

    def test_read_records_passes_budget_through(self, tmp_path):
        path = tmp_path / "access.log"
        path.write_text(SQUID + "garbage\n" * 2)
        quarantined = []
        with pytest.raises(TraceFormatError, match="error budget"):
            list(read_records(path, max_errors=1,
                              on_error=quarantined.append))
        assert len(quarantined) == 2  # both seen before the abort


class TestReadRecords:
    def test_rejects_csv(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(CSV)
        with pytest.raises(TraceFormatError):
            list(read_records(path, fmt="csv"))

    def test_reads_raw_log(self, tmp_path):
        path = tmp_path / "log"
        path.write_text(SQUID)
        assert len(list(read_records(path))) == 1
