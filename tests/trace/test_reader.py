"""Tests for trace file reading with format auto-detection."""

import gzip

import pytest

from repro.errors import TraceFormatError
from repro.trace.reader import detect_format, open_trace, read_records
from repro.types import Request

SQUID = ("981172094.106 1523 10.0.0.1 TCP_MISS/200 4158 GET "
         "http://a.com/x.gif - DIRECT/a.com image/gif\n")
CLF = ('host1 - - [10/Oct/2000:13:55:36 -0700] '
       '"GET /a.gif HTTP/1.0" 200 2326\n')
CSV = ("timestamp,url,size,transfer_size,doc_type,status,content_type\n"
       "1.000,http://a/x.gif,100,100,image,200,image/gif\n")


class TestDetect:
    def test_detects_each_format(self):
        assert detect_format(SQUID) == "squid"
        assert detect_format(CLF) == "clf"
        assert detect_format(CSV.splitlines()[0]) == "csv"

    def test_unknown_raises(self):
        with pytest.raises(TraceFormatError):
            detect_format("mystery content")


class TestOpenTrace:
    def test_auto_detect_squid(self, tmp_path):
        path = tmp_path / "access.log"
        path.write_text(SQUID * 3)
        records = list(open_trace(path))
        assert len(records) == 3
        assert records[0].url == "http://a.com/x.gif"

    def test_auto_detect_csv_yields_requests(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(CSV)
        records = list(open_trace(path))
        assert len(records) == 1
        assert isinstance(records[0], Request)

    def test_explicit_format(self, tmp_path):
        path = tmp_path / "log.txt"
        path.write_text(CLF)
        records = list(open_trace(path, fmt="clf"))
        assert records[0].status == 200

    def test_gzip_transparent(self, tmp_path):
        path = tmp_path / "access.log.gz"
        with gzip.open(path, "wt") as stream:
            stream.write(SQUID * 5)
        assert len(list(open_trace(path))) == 5

    def test_leading_blank_lines_skipped_for_detection(self, tmp_path):
        path = tmp_path / "log"
        path.write_text("\n\n" + SQUID)
        assert len(list(open_trace(path))) == 1

    def test_empty_file_yields_nothing(self, tmp_path):
        path = tmp_path / "empty.log"
        path.write_text("")
        assert list(open_trace(path)) == []

    def test_unknown_format_name(self, tmp_path):
        path = tmp_path / "log"
        path.write_text(SQUID)
        with pytest.raises(TraceFormatError):
            list(open_trace(path, fmt="xml"))


class TestReadRecords:
    def test_rejects_csv(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(CSV)
        with pytest.raises(TraceFormatError):
            list(read_records(path, fmt="csv"))

    def test_reads_raw_log(self, tmp_path):
        path = tmp_path / "log"
        path.write_text(SQUID)
        assert len(list(read_records(path))) == 1
