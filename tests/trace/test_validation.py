"""Tests for trace validation."""

import pytest

from repro.trace.validation import (
    OSCILLATION_THRESHOLD,
    Severity,
    render_findings,
    validate_trace,
)
from repro.types import DocumentType, Request, Trace


def req(url="u", ts=0.0, size=100, transfer=None):
    return Request(ts, url, size,
                   transfer if transfer is not None else size,
                   DocumentType.HTML)


def by_check(findings):
    return {f.check: f for f in findings}


def test_clean_trace():
    trace = Trace([req(ts=float(i), url=f"u{i}") for i in range(10)])
    assert validate_trace(trace) == []
    assert "clean" in render_findings([])


def test_empty_trace_is_error():
    findings = validate_trace(Trace([]))
    assert findings[0].check == "empty-trace"
    assert findings[0].severity is Severity.ERROR


def test_out_of_order_timestamps():
    trace = Trace([req(ts=5.0), req(ts=3.0, url="v")])
    findings = by_check(validate_trace(trace))
    assert "timestamp-order" in findings
    assert findings["timestamp-order"].severity is Severity.WARNING
    assert findings["timestamp-order"].count == 1


def test_transfer_exceeding_size_is_error():
    trace = Trace([req(size=100, transfer=500)])
    findings = by_check(validate_trace(trace))
    assert findings["transfer-exceeds-size"].severity is Severity.ERROR


def test_zero_size_warning():
    trace = Trace([req(size=0), req(url="ok", ts=1.0)])
    findings = by_check(validate_trace(trace))
    assert findings["zero-size-documents"].count == 1


def test_size_oscillation_detected():
    requests = [req(url="wobbly", ts=float(i), size=100 + i)
                for i in range(OSCILLATION_THRESHOLD + 5)]
    findings = by_check(validate_trace(Trace(requests)))
    assert "size-oscillation" in findings


def test_render_lists_counts():
    trace = Trace([req(ts=5.0), req(ts=3.0, url="v"),
                   req(ts=6.0, url="w", size=10, transfer=20)])
    text = render_findings(validate_trace(trace))
    assert "timestamp-order" in text
    assert "transfer-exceeds-size" in text


def test_cli_validate(tmp_path, capsys):
    from repro.trace.cli import main
    from repro.trace.writer import write_trace

    clean = tmp_path / "clean.csv"
    write_trace(clean, [req(ts=float(i), url=f"u{i}")
                        for i in range(5)])
    assert main(["validate", str(clean)]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_validate_error_exit(tmp_path, capsys):
    from repro.trace.cli import main
    from repro.trace.writer import write_trace

    # transfer > size survives the canonical format? Request clamps are
    # not applied at construction, so build the file by hand.
    bad = tmp_path / "bad.csv"
    bad.write_text(
        "timestamp,url,size,transfer_size,doc_type,status,content_type\n"
        "1.0,u,100,500,html,200,\n")
    assert main(["validate", str(bad)]) == 1
    assert "transfer-exceeds-size" in capsys.readouterr().out
