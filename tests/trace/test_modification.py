"""Tests for the 5 %-delta modification/interruption rule (Section 4.1)."""

import pytest

from repro.trace.modification import (
    ModificationDetector,
    ModificationPolicy,
    SizeEvent,
)


def test_validates_tolerance():
    with pytest.raises(ValueError):
        ModificationDetector(tolerance=0.0)
    with pytest.raises(ValueError):
        ModificationDetector(tolerance=1.0)


def test_first_observation():
    detector = ModificationDetector()
    obs = detector.observe("u", 1000)
    assert obs.event is SizeEvent.FIRST
    assert obs.document_size == 1000
    assert not obs.invalidates
    assert len(detector) == 1


def test_unchanged_size():
    detector = ModificationDetector()
    detector.observe("u", 1000)
    obs = detector.observe("u", 1000)
    assert obs.event is SizeEvent.UNCHANGED
    assert not obs.invalidates


def test_small_delta_is_modification():
    """< 5 % size change = the document was edited."""
    detector = ModificationDetector()
    detector.observe("u", 1000)
    obs = detector.observe("u", 1030)  # +3 %
    assert obs.event is SizeEvent.MODIFIED
    assert obs.invalidates
    assert obs.document_size == 1030
    assert detector.canonical_size("u") == 1030


def test_small_shrink_is_modification():
    detector = ModificationDetector()
    detector.observe("u", 1000)
    obs = detector.observe("u", 980)  # -2 %
    assert obs.event is SizeEvent.MODIFIED
    assert obs.document_size == 980


def test_large_shrink_is_interruption():
    """>= 5 % smaller = the client aborted; document unchanged."""
    detector = ModificationDetector()
    detector.observe("u", 1000)
    obs = detector.observe("u", 300)
    assert obs.event is SizeEvent.INTERRUPTED
    assert not obs.invalidates
    assert obs.document_size == 1000      # full size belief kept
    assert detector.canonical_size("u") == 1000


def test_exactly_5_percent_is_interruption():
    detector = ModificationDetector()
    detector.observe("u", 1000)
    obs = detector.observe("u", 950)  # exactly 5 %
    assert obs.event is SizeEvent.INTERRUPTED


def test_large_growth_reveals_partial_history():
    detector = ModificationDetector()
    detector.observe("u", 300)       # was itself a partial transfer
    obs = detector.observe("u", 1000)
    assert obs.event is SizeEvent.GREW
    assert obs.invalidates           # short cached copy can't serve this
    assert obs.document_size == 1000


def test_any_change_policy_treats_interruption_as_modification():
    detector = ModificationDetector(policy=ModificationPolicy.ANY_CHANGE)
    detector.observe("u", 1000)
    obs = detector.observe("u", 300)
    assert obs.event is SizeEvent.MODIFIED
    assert obs.invalidates
    assert obs.document_size == 300


def test_any_change_policy_unchanged_still_unchanged():
    detector = ModificationDetector(policy=ModificationPolicy.ANY_CHANGE)
    detector.observe("u", 1000)
    obs = detector.observe("u", 1000)
    assert obs.event is SizeEvent.UNCHANGED


def test_interruption_then_full_fetch_again():
    """u: 1000, 300 (abort), 1000 (full) — last one is unchanged."""
    detector = ModificationDetector()
    detector.observe("u", 1000)
    detector.observe("u", 300)
    obs = detector.observe("u", 1000)
    assert obs.event is SizeEvent.UNCHANGED


def test_event_counts_summary():
    detector = ModificationDetector()
    detector.observe("u", 1000)
    detector.observe("u", 1000)
    detector.observe("u", 1020)
    detector.observe("u", 100)
    summary = detector.summary()
    assert summary["first"] == 1
    assert summary["unchanged"] == 1
    assert summary["modified"] == 1
    assert summary["interrupted"] == 1


def test_urls_tracked_independently():
    detector = ModificationDetector()
    detector.observe("a", 1000)
    detector.observe("b", 50)
    assert detector.canonical_size("a") == 1000
    assert detector.canonical_size("b") == 50
    with pytest.raises(KeyError):
        detector.canonical_size("c")
