"""Tests for the canonical CSV trace format."""

import io

import pytest

from repro.errors import TraceFormatError
from repro.trace.csvtrace import (
    CsvTraceParser,
    CsvTraceWriter,
    dumps,
    loads,
)
from repro.types import DocumentType, Request


def sample_requests():
    return [
        Request(0.0, "http://a/x.gif", 1000, 1000, DocumentType.IMAGE,
                200, "image/gif"),
        Request(1.5, "http://a/y.mp3", 5_000_000, 250_000,
                DocumentType.MULTIMEDIA, 200, "audio/mpeg"),
        Request(2.0, "http://a/z", 40, 40, DocumentType.OTHER, 203, None),
    ]


def test_round_trip_preserves_everything():
    original = sample_requests()
    again = list(loads(dumps(original)))
    assert len(again) == len(original)
    for a, b in zip(original, again):
        assert a.url == b.url
        assert a.size == b.size
        assert a.transfer_size == b.transfer_size
        assert a.doc_type is b.doc_type
        assert a.status == b.status
        assert a.content_type == b.content_type
        assert a.timestamp == pytest.approx(b.timestamp, abs=1e-3)


def test_writer_counts():
    buffer = io.StringIO()
    writer = CsvTraceWriter(buffer)
    assert writer.write_all(sample_requests()) == 3
    assert writer.count == 3


def test_header_is_first_line():
    text = dumps(sample_requests())
    assert text.splitlines()[0].startswith("timestamp,url,size")


def test_unexpected_header_raises():
    bad = "timestamp,url,oops\n"
    with pytest.raises(TraceFormatError):
        list(CsvTraceParser().parse(io.StringIO(bad)))


def test_wrong_column_count_strict_raises():
    text = dumps(sample_requests()) + "1.0,only,three\n"
    with pytest.raises(TraceFormatError):
        list(loads(text))


def test_wrong_column_count_lenient_skips():
    text = dumps(sample_requests()) + "1.0,only,three\n"
    parser = CsvTraceParser(strict=False)
    records = list(parser.parse(io.StringIO(text)))
    assert len(records) == 3
    assert parser.skipped == 1


def test_bad_doc_type_raises():
    text = ("timestamp,url,size,transfer_size,doc_type,status,content_type\n"
            "1.0,http://a,10,10,martian,200,\n")
    with pytest.raises(TraceFormatError):
        list(loads(text))


def test_empty_content_type_is_none():
    again = list(loads(dumps(sample_requests())))
    assert again[2].content_type is None


def test_sniff():
    assert CsvTraceParser.sniff(
        "timestamp,url,size,transfer_size,doc_type,status,content_type")
    assert not CsvTraceParser.sniff("981172094.106 1523 ...")


def test_empty_input_yields_nothing():
    assert list(loads("")) == []
