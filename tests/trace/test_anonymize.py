"""Tests for trace anonymization."""

import pytest

from repro.errors import ConfigurationError
from repro.trace.classify import classify_url
from repro.trace.sampling import anonymize
from repro.types import DocumentType, Request, Trace


def make_trace():
    return Trace([
        Request(0.0, "http://secret.corp/payroll.html", 100, 100,
                DocumentType.HTML),
        Request(1.0, "http://secret.corp/logo.gif", 50, 50,
                DocumentType.IMAGE),
        Request(2.0, "http://secret.corp/payroll.html", 100, 100,
                DocumentType.HTML),
    ], name="secret")


def test_empty_salt_rejected():
    with pytest.raises(ConfigurationError):
        anonymize(make_trace(), "")


def test_urls_replaced():
    anon = anonymize(make_trace(), "s3cret")
    for request in anon:
        assert "secret.corp" not in request.url
        assert request.url.startswith("anon://")


def test_identity_preserved():
    """Same URL hashes to the same token: hit patterns are unchanged."""
    anon = anonymize(make_trace(), "s3cret")
    assert anon[0].url == anon[2].url
    assert anon[0].url != anon[1].url


def test_everything_else_untouched():
    original = make_trace()
    anon = anonymize(original, "s3cret")
    for a, b in zip(original, anon):
        assert a.timestamp == b.timestamp
        assert a.size == b.size
        assert a.transfer_size == b.transfer_size
        assert a.doc_type is b.doc_type
        assert a.status == b.status


def test_different_salts_differ():
    a = anonymize(make_trace(), "salt-a")
    b = anonymize(make_trace(), "salt-b")
    assert a[0].url != b[0].url


def test_simulation_results_identical():
    """Anonymization is a pure renaming: every cache metric matches."""
    from repro.simulation.simulator import simulate

    original = make_trace()
    anon = anonymize(original, "s3cret")
    for policy in ("lru", "gd*(1)"):
        a = simulate(original, policy, 10_000, warmup_fraction=0.0)
        b = simulate(anon, policy, 10_000, warmup_fraction=0.0)
        assert a.hit_rate() == b.hit_rate()
        assert a.byte_hit_rate() == b.byte_hit_rate()


def test_name_suffix():
    assert anonymize(make_trace(), "x").name == "secret-anon"
