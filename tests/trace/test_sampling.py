"""Tests for trace manipulation tools."""

import pytest

from repro.errors import ConfigurationError
from repro.trace.sampling import (
    filter_by_type,
    filter_requests,
    head,
    interleave,
    sample,
    split,
    thin,
    time_slice,
)
from repro.types import DocumentType, Request, Trace


def make_trace(n=20, name="t"):
    types = list(DocumentType)
    return Trace([Request(float(i), f"u{i}", 100, 100,
                          types[i % len(types)]) for i in range(n)],
                 name=name)


class TestFilters:
    def test_filter_by_type(self):
        trace = make_trace(20)
        images = filter_by_type(trace, DocumentType.IMAGE)
        assert len(images) == 4
        assert all(r.doc_type is DocumentType.IMAGE for r in images)
        assert images.name == "t-image"

    def test_filter_requests_predicate(self):
        trace = make_trace(10)
        big = filter_requests(trace, lambda r: r.timestamp >= 5.0)
        assert len(big) == 5

    def test_order_preserved(self):
        trace = make_trace(20)
        sub = filter_by_type(trace, DocumentType.HTML)
        stamps = [r.timestamp for r in sub]
        assert stamps == sorted(stamps)


class TestHeadThinSample:
    def test_head(self):
        assert len(head(make_trace(20), 5)) == 5
        assert len(head(make_trace(3), 10)) == 3
        with pytest.raises(ConfigurationError):
            head(make_trace(3), -1)

    def test_thin_every_nth(self):
        trace = make_trace(10)
        thinned = thin(trace, 3)
        assert [r.url for r in thinned] == ["u0", "u3", "u6", "u9"]
        offset = thin(trace, 3, offset=1)
        assert [r.url for r in offset] == ["u1", "u4", "u7"]

    def test_thin_one_is_identity(self):
        trace = make_trace(10)
        assert len(thin(trace, 1)) == 10
        with pytest.raises(ConfigurationError):
            thin(trace, 0)

    def test_sample_fraction(self):
        trace = make_trace(2000)
        sampled = sample(trace, 0.25, seed=1)
        assert 400 < len(sampled) < 600
        with pytest.raises(ConfigurationError):
            sample(trace, 0.0)

    def test_sample_deterministic(self):
        trace = make_trace(200)
        a = [r.url for r in sample(trace, 0.5, seed=9)]
        b = [r.url for r in sample(trace, 0.5, seed=9)]
        assert a == b


class TestSliceSplit:
    def test_time_slice(self):
        trace = make_trace(10)
        sliced = time_slice(trace, 3.0, 7.0)
        assert [r.timestamp for r in sliced] == [3.0, 4.0, 5.0, 6.0]
        with pytest.raises(ConfigurationError):
            time_slice(trace, 5.0, 5.0)

    def test_split_counts(self):
        trace = make_trace(10)
        parts = split(trace, [0.3, 0.3, 0.4])
        assert [len(p) for p in parts] == [3, 3, 4]
        assert parts[0][0].url == "u0"
        assert parts[2][-1].url == "u9"

    def test_split_validation(self):
        trace = make_trace(10)
        with pytest.raises(ConfigurationError):
            split(trace, [])
        with pytest.raises(ConfigurationError):
            split(trace, [0.5, 0.6])
        with pytest.raises(ConfigurationError):
            split(trace, [1.5, -0.5])


class TestInterleave:
    def test_merged_by_timestamp(self):
        a = Trace([Request(0.0, "x", 1, 1, DocumentType.HTML),
                   Request(2.0, "y", 1, 1, DocumentType.HTML)], "a")
        b = Trace([Request(1.0, "x", 1, 1, DocumentType.HTML)], "b")
        merged = interleave([a, b])
        assert [r.timestamp for r in merged] == [0.0, 1.0, 2.0]

    def test_prefixing_separates_populations(self):
        a = Trace([Request(0.0, "doc", 1, 1, DocumentType.HTML)], "a")
        b = Trace([Request(1.0, "doc", 1, 1, DocumentType.HTML)], "b")
        merged = interleave([a, b])
        urls = {r.url for r in merged}
        assert urls == {"src0/doc", "src1/doc"}

    def test_shared_population_mode(self):
        a = Trace([Request(0.0, "doc", 1, 1, DocumentType.HTML)], "a")
        b = Trace([Request(1.0, "doc", 1, 1, DocumentType.HTML)], "b")
        merged = interleave([a, b], prefix_urls=False)
        assert {r.url for r in merged} == {"doc"}

    def test_empty_input(self):
        with pytest.raises(ConfigurationError):
            interleave([])
