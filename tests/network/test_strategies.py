"""Tests for placement strategies (LCE / LCD / ProbCache)."""

import pytest

from repro.errors import ConfigurationError
from repro.network.strategies import (
    STRATEGY_NAMES,
    LeaveCopyDown,
    LeaveCopyEverywhere,
    ProbCache,
    make_strategy,
)
from repro.network.topology import NodeSpec


def specs(*capacities):
    return [NodeSpec(name=f"n{i}", capacity_bytes=cap)
            for i, cap in enumerate(capacities)]


class TestLeaveCopyEverywhere:
    def test_copies_every_visited_cache(self):
        strategy = LeaveCopyEverywhere()
        visited = specs(100, 200, 300)
        assert strategy.copies(visited, visited) == ["n0", "n1", "n2"]
        assert strategy.admit_on_probe


class TestLeaveCopyDown:
    def test_copies_one_below_serving_point(self):
        strategy = LeaveCopyDown()
        visited = specs(100, 200)
        path = visited + specs(300)
        assert strategy.copies(visited, path) == ["n1"]
        assert not strategy.admit_on_probe

    def test_no_visited_no_copies(self):
        assert LeaveCopyDown().copies([], specs(100)) == []


class _FixedRng:
    """Stand-in RNG: every draw returns the same value."""

    def __init__(self, value):
        self.value = value

    def random(self):
        return self.value


class TestProbCache:
    def test_target_window_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ProbCache(target_window=0)

    def test_seeded_determinism(self):
        visited = specs(100, 100, 100)
        a = ProbCache(seed=7)
        b = ProbCache(seed=7)
        decisions_a = [a.copies(visited, visited) for _ in range(200)]
        decisions_b = [b.copies(visited, visited) for _ in range(200)]
        assert decisions_a == decisions_b
        assert any(decisions_a)              # it does admit sometimes

    def test_weight_formula(self):
        """p(k) = min(1, TimesIn) * x/c with x = c - k hops from the
        server; a fixed-draw RNG exposes the per-node thresholds."""
        strategy = ProbCache(target_window=2.0)
        visited = specs(100, 100, 100)        # c = 3, mean cap 100
        # TimesIn(k) = sum(caps[k:]) / (2 * 100) -> 1.5, 1.0, 0.5
        # p(k) = min(1, TimesIn) * (3 - k) / 3 -> 1.0, 2/3, 1/6
        strategy._rng = _FixedRng(0.5)
        assert strategy.copies(visited, visited) == ["n0", "n1"]
        strategy._rng = _FixedRng(0.7)
        assert strategy.copies(visited, visited) == ["n0"]
        strategy._rng = _FixedRng(0.1)
        assert strategy.copies(visited, visited) == ["n0", "n1", "n2"]

    def test_edge_bias(self):
        """The edge cache (largest x) admits at least as often as any
        upstream cache."""
        strategy = ProbCache(seed=3)
        visited = specs(100, 100, 100)
        admitted = {"n0": 0, "n1": 0, "n2": 0}
        for _ in range(500):
            for name in strategy.copies(visited, visited):
                admitted[name] += 1
        assert admitted["n0"] >= admitted["n1"] >= admitted["n2"]

    def test_no_visited_no_copies(self):
        assert ProbCache().copies([], specs(100)) == []


class TestMakeStrategy:
    def test_known_names(self):
        for name in STRATEGY_NAMES:
            assert make_strategy(name).name == name

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_strategy("mcd")

    def test_seed_reaches_probcache(self):
        assert make_strategy("probcache", seed=5).seed == 5
        assert make_strategy("probcache",
                             target_window=4.0).target_window == 4.0
