"""Behavioural tests for the cache-network engine."""

import pytest

from repro.errors import ConfigurationError
from repro.network.engine import (
    NetworkConfig,
    NetworkSimulator,
    run_network,
    run_network_cells,
)
from repro.network.topology import (
    path,
    sibling_mesh,
    single,
    tree,
    two_level,
)
from repro.simulation.latency import LatencyModel
from repro.simulation.simulator import simulate
from repro.types import DocumentType, Request, Trace


def req(url, size=1000, doc_type=DocumentType.HTML, ts=0.0):
    return Request(ts, url, size, size, doc_type)


def run(topology, requests, **config_kwargs):
    config_kwargs.setdefault("warmup_fraction", 0.0)
    return NetworkSimulator(NetworkConfig(
        topology=topology, **config_kwargs)).run(Trace(list(requests)))


class TestConfig:
    def test_warmup_bounds(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(topology=single(100),
                          warmup_fraction=1.0).validate()

    def test_unknown_strategy(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(topology=single(100),
                          strategy="mcd").validate()


class TestSiblingRing:
    def test_replicate_copies_into_home(self):
        """proxy1 owns the document; proxy0's miss is sibling-served
        and (replicating) proxy0 keeps a copy: the next proxy0
        request hits locally."""
        trace = [req("a"), req("a"), req("a")]   # proxies 0,1,0
        result = run(sibling_mesh(10_000, n_proxies=2), trace,
                     replicate_on_sibling_hit=True)
        # Request 0: proxy0 miss (admits). 1: proxy1 sibling-served
        # by proxy0. 2: proxy0 local hit.
        assert result.sibling_serves == 1
        assert result.nodes["proxy0"].metrics.overall.hits == 1
        assert result.hit_rate == pytest.approx(2 / 3)

    def test_single_owner_drops_home_copy(self):
        trace = [req("a"), req("a"), req("a")]
        result = run(sibling_mesh(10_000, n_proxies=2), trace,
                     replicate_on_sibling_hit=False)
        # Request 1 (proxy1's) is sibling-served by proxy0; the
        # non-replicating home gives its walk-admitted copy back, so
        # proxy0 stays the sole owner and serves request 2 locally.
        assert result.sibling_serves == 1
        assert result.nodes["proxy1"].used_bytes == 0
        assert result.nodes["proxy1"].invalidations == 1
        assert result.nodes["proxy0"].used_bytes == 1000
        assert result.nodes["proxy0"].metrics.overall.hits == 1

    def test_network_view_counts_sibling_serves_as_hits(self):
        trace = [req("a"), req("a")]
        result = run(sibling_mesh(10_000, n_proxies=2), trace)
        assert result.network.overall.hits == 1
        assert result.edge_metrics().overall.hits == 0


class TestPlacement:
    def test_lcd_descends_one_level_per_request(self):
        """On a 3-deep path, a document reaches the edge only on its
        third request: origin→l2, l2→l1, l1→l0."""
        topo = path([10_000, 10_000, 10_000])
        result = run(topo, [req("a")] * 4, strategy="lcd")
        # Requests: miss everywhere (copy at l2); hit l2 (copy at
        # l1); hit l1 (copy at l0); hit l0.
        assert result.nodes["l2"].metrics.overall.hits == 1
        assert result.nodes["l1"].metrics.overall.hits == 1
        assert result.nodes["l0"].metrics.overall.hits == 1
        assert result.hit_rate == pytest.approx(3 / 4)

    def test_lce_floods_every_level(self):
        topo = path([10_000, 10_000, 10_000])
        result = run(topo, [req("a")] * 2)
        # One miss planted copies at every level; the second request
        # hits at the edge.
        assert result.nodes["l0"].metrics.overall.hits == 1
        for name in ("l0", "l1", "l2"):
            assert result.nodes[name].used_bytes == 1000

    def test_stale_copy_dropped_in_non_lce_walk(self):
        topo = path([10_000, 10_000])
        result = run(topo, [req("a", size=1000), req("a", size=2000)],
                     strategy="lcd")
        # The size change invalidates the stale copies mid-walk.
        assert result.nodes["l1"].invalidations == 1
        assert result.hit_rate == pytest.approx(0.0)

    def test_placement_sums_match_used_bytes(self, tiny_dfn_trace):
        topo = two_level(400_000, 1_600_000, n_children=3)
        result = NetworkSimulator(NetworkConfig(
            topology=topo)).run(tiny_dfn_trace)
        for node in result.nodes.values():
            assert sum(node.placement.values()) == node.used_bytes

    def test_placement_shares_sum_to_one_or_zero(self, tiny_dfn_trace):
        topo = tree([200_000, 400_000, 800_000])
        result = NetworkSimulator(NetworkConfig(
            topology=topo, strategy="lcd")).run(tiny_dfn_trace)
        for by_level in result.placement_shares().values():
            total = sum(by_level.values())
            assert total == pytest.approx(1.0) or total == 0.0


class TestLatency:
    def test_single_topology_matches_latency_model(self):
        """A ``single`` topology under the default links reproduces
        the single-cache LatencyModel's floats exactly."""
        trace = Trace([req("a"), req("a"), req("b", size=5000)])
        classic = simulate(trace, "lru", 10_000, warmup_fraction=0.0,
                           latency_model=LatencyModel())
        network = run(single(10_000), trace, measure_latency=True)
        assert network.latency.overall.count == 3
        assert network.latency.mean_latency() == \
            classic.latency.mean_latency()
        assert network.latency.speedup == classic.latency.speedup

    def test_sibling_serve_cheaper_than_origin(self):
        trace = [req("a"), req("a")]
        result = run(sibling_mesh(10_000, n_proxies=2), trace,
                     measure_latency=True)
        latencies = sorted((result.latency.overall.minimum,
                            result.latency.overall.maximum))
        assert latencies[0] < latencies[1]        # sibling < origin
        assert result.latency.speedup > 1.0

    def test_latency_off_by_default(self):
        assert run(single(10_000), [req("a")]).latency is None


class TestRunNetworkCells:
    def test_matches_individual_runs(self, tiny_dfn_trace):
        configs = [
            NetworkConfig(topology=two_level(300_000, 1_200_000)),
            NetworkConfig(topology=sibling_mesh(300_000),
                          strategy="lce"),
            NetworkConfig(topology=path([300_000] * 3),
                          strategy="lcd"),
        ]
        batched = run_network_cells(tiny_dfn_trace, configs)
        for config, result in zip(configs, batched):
            solo = run_network(tiny_dfn_trace, config)
            assert result.network.as_dict() == solo.network.as_dict()
            assert result.sibling_serves == solo.sibling_serves


class TestPolicySeed:
    def test_seed_accepted_for_unseedable_policies(self,
                                                   tiny_dfn_trace):
        """policy_seed must not break policies that take no seed."""
        config = NetworkConfig(topology=two_level(300_000, 1_200_000),
                               policy_seed=42)
        seeded = run_network(tiny_dfn_trace, config)
        plain = run_network(tiny_dfn_trace, NetworkConfig(
            topology=two_level(300_000, 1_200_000)))
        assert seeded.network.as_dict() == plain.network.as_dict()
