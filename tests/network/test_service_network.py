"""Network trials through the durable experiment service."""

import pytest

from repro.errors import ServiceError
from repro.experiments.service import (
    NetworkTrialSpec,
    TrialSpec,
    build_report,
    enqueue_grid,
    enqueue_network_grid,
    execute_network_trial,
    open_service,
    work,
)

TINY = 1 / 512


def make_spec(**overrides):
    base = dict(trace="dfn", scale=TINY, topology="two-level",
                strategy="lce", policy="lru", size_fraction=0.01,
                seed=42, n=3)
    base.update(overrides)
    return NetworkTrialSpec(**base)


class TestNetworkTrialSpec:
    def test_validation(self):
        with pytest.raises(ServiceError, match="trace"):
            make_spec(trace="nonsense")
        with pytest.raises(ServiceError, match="topology"):
            make_spec(topology="torus")
        with pytest.raises(ServiceError, match="strategy"):
            make_spec(strategy="mcd")
        with pytest.raises(ServiceError, match="size_fraction"):
            make_spec(size_fraction=0.0)
        with pytest.raises(ServiceError, match="n must"):
            make_spec(n=0)

    def test_from_dict_roundtrip(self):
        spec = make_spec()
        assert NetworkTrialSpec.from_dict(spec.as_dict()) == spec

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(ServiceError, match="malformed"):
            NetworkTrialSpec.from_dict({"trace": "dfn"})

    def test_config_key_groups_replicas_across_seeds(self):
        assert make_spec(seed=1).config_key() == \
            make_spec(seed=2).config_key()
        assert make_spec(strategy="lcd").config_key() != \
            make_spec(strategy="lce").config_key()

    def test_spec_dict_carries_topology_discriminator(self):
        """The worker dispatches on the ``topology`` key: network
        specs must carry it and classic specs must not."""
        assert "topology" in make_spec().as_dict()
        classic = TrialSpec(trace="dfn", scale=TINY, policy="lru",
                            size_fraction=0.01, seed=1)
        assert "topology" not in classic.as_dict()


class TestExecuteNetworkTrial:
    def test_payload_deterministic(self):
        spec = make_spec(topology="mesh", strategy="probcache")
        assert execute_network_trial(spec) == \
            execute_network_trial(spec)

    def test_payload_shape(self):
        payload = execute_network_trial(make_spec())
        assert payload["spec"] == make_spec().as_dict()
        assert payload["n_caches"] == 4           # 3 children + parent
        assert 0.0 <= payload["hit_rate"] <= 1.0
        assert 0.0 <= payload["edge_hit_rate"] <= payload["hit_rate"]
        assert "html" in payload["type_hit_rates"]
        assert any(key.startswith("html/")
                   for key in payload["placement_shares"])

    def test_seed_feeds_probcache(self):
        base = make_spec(topology="path", strategy="probcache")
        same = execute_network_trial(base)
        other = execute_network_trial(make_spec(
            topology="path", strategy="probcache", seed=1042))
        assert same["spec"] != other["spec"]
        assert same["hit_rate"] != other["hit_rate"]


class TestServiceRoundTrip:
    def test_enqueue_work_report(self, tmp_path):
        root = tmp_path / "svc"
        queue, store = open_service(root)
        ids = enqueue_network_grid(
            queue, traces=["dfn"], scale=TINY,
            topologies=["two-level", "mesh"], strategies=["lce"],
            policies=["lru"], size_fractions=[0.01], seeds=[42],
            n=3)
        assert len(ids) == 2
        # Enqueueing the same grid again is a no-op.
        assert enqueue_network_grid(
            queue, traces=["dfn"], scale=TINY,
            topologies=["two-level", "mesh"], strategies=["lce"],
            policies=["lru"], size_fractions=[0.01], seeds=[42],
            n=3) == ids
        # A classic trial shares the queue and store.
        enqueue_grid(queue, traces=["dfn"], scale=TINY,
                     policies=["lru"], size_fractions=[0.01],
                     seeds=[42])
        executed = work(queue, store, git_hash="testhash")
        assert executed == 3
        assert queue.status().pending == 0

        records = store.records()
        assert len(records) == 3
        topologies = {record["payload"]["spec"].get("topology")
                      for record in records.values()}
        assert topologies == {"two-level", "mesh", None}

        report = build_report(store)
        # Network and classic conditions land in separate groups.
        assert "topology=two-level strategy=lce" in report.text
        assert "topology=mesh strategy=lce" in report.text
        assert len(report.data["groups"]) == 3
