"""Equivalence pins: the network engine reproduces the legacy loops.

Three families of guarantees, all byte-for-byte:

* the goldens under ``data/`` — produced by the pre-refactor
  ``HierarchySimulator``/``MeshSimulator`` loops across the whole
  policy registry — replayed through the thin wrappers over the
  engine (this is what licensed deleting the old loops);
* a ``single`` topology under LCE equals the single-cache
  :class:`~repro.simulation.simulator.CacheSimulator`;
* the vectorized fast path equals the object walk on every eligible
  topology shape.
"""

import json
from pathlib import Path

import pytest

from repro.network.engine import NetworkConfig, NetworkSimulator, run_network
from repro.network.fastpath import fastpath_eligible, run_fastpath
from repro.network.topology import path, single, tree, two_level
from repro.simulation.hierarchy import simulate_hierarchy
from repro.simulation.mesh import simulate_mesh
from repro.simulation.simulator import simulate
from repro.trace.columnar import ColumnarTrace, write_columnar
from repro.types import Request

DATA_DIR = Path(__file__).parent / "data"

GOLDEN_HIERARCHY = json.loads(
    (DATA_DIR / "golden_hierarchy.json").read_text())
GOLDEN_MESH = json.loads((DATA_DIR / "golden_mesh.json").read_text())


@pytest.fixture(scope="session")
def golden_trace(tiny_dfn_trace):
    """The goldens were generated at the shared fixture's scale."""
    assert GOLDEN_HIERARCHY["meta"]["trace_scale"] == 1.0 / 512.0
    assert GOLDEN_HIERARCHY["meta"]["trace_requests"] == \
        len(tiny_dfn_trace)
    return tiny_dfn_trace


class TestHierarchyGoldens:
    @pytest.mark.parametrize("key",
                             sorted(GOLDEN_HIERARCHY["cells"]))
    def test_cell(self, key, golden_trace):
        child_policy, parent_policy, n_children = key.split("|")
        meta = GOLDEN_HIERARCHY["meta"]
        result = simulate_hierarchy(
            golden_trace, meta["child_capacity_bytes"],
            meta["parent_capacity_bytes"],
            child_policy=child_policy, parent_policy=parent_policy,
            n_children=int(n_children))
        expected = GOLDEN_HIERARCHY["cells"][key]
        assert result.total_requests == expected["total_requests"]
        assert result.warmup_requests == expected["warmup_requests"]
        assert result.child.as_dict() == expected["child"]
        assert result.parent.as_dict() == expected["parent"]
        assert result.hierarchy.as_dict() == expected["hierarchy"]


class TestMeshGoldens:
    @pytest.mark.parametrize("key", sorted(GOLDEN_MESH["cells"]))
    def test_cell(self, key, golden_trace):
        policy, mode, n_proxies = key.split("|")
        meta = GOLDEN_MESH["meta"]
        result = simulate_mesh(
            golden_trace, meta["proxy_capacity_bytes"],
            n_proxies=int(n_proxies), policy=policy,
            replicate_on_sibling_hit=(mode == "replicate"))
        expected = GOLDEN_MESH["cells"][key]
        assert result.total_requests == expected["total_requests"]
        assert result.warmup_requests == expected["warmup_requests"]
        assert result.sibling_hits == expected["sibling_hits"]
        assert result.local.as_dict() == expected["local"]
        assert result.mesh.as_dict() == expected["mesh"]


class TestSingleNodeEquivalence:
    @pytest.mark.parametrize("policy", ["lru", "gds(1)", "gd*(p)"])
    def test_matches_cache_simulator(self, policy, tiny_dfn_trace):
        capacity = 500_000
        classic = simulate(tiny_dfn_trace, policy, capacity,
                           warmup_fraction=0.10)
        network = NetworkSimulator(NetworkConfig(
            topology=single(capacity, policy),
            strategy="lce")).run(tiny_dfn_trace)
        node = network.nodes["cache"]
        assert network.network.as_dict() == classic.metrics.as_dict()
        assert node.metrics.as_dict() == classic.metrics.as_dict()
        assert node.evictions == classic.evictions
        assert node.bypasses == classic.bypasses
        assert node.invalidations == classic.invalidations


# -- fast path vs object walk ---------------------------------------------

#: Caps object sizes so every document fits every node (a bypass
#: would disqualify the fast path, which is exactly what we want to
#: avoid here — bypass behaviour is pinned by the goldens above).
MAX_SIZE = 200_000


@pytest.fixture(scope="module")
def columnar_trace(tiny_dfn_trace, tmp_path_factory):
    # Pin every document to its first-seen (capped) size: the dfn
    # workload contains modification events, and a size change forces
    # the object walk's stale-drop — the fast path refuses such cells.
    pinned = {}
    requests = []
    for r in tiny_dfn_trace:
        size = pinned.setdefault(r.url, min(r.size, MAX_SIZE))
        requests.append(Request(r.timestamp, r.url, size, size,
                                r.doc_type, r.status))
    target = tmp_path_factory.mktemp("rcol") / "capped.rcol"
    write_columnar(target, requests, name="capped-dfn")
    return ColumnarTrace(target)


def topologies():
    total = int(MAX_SIZE * 40)
    per = total // 8
    return [
        single(total),
        two_level(per, per * 4, n_children=3),
        path([per, per * 2, per * 4]),
        tree([per, per * 2, per * 4], branching=2),
    ]


class TestFastpath:
    @pytest.mark.parametrize("topology", topologies(),
                             ids=lambda t: t.name)
    def test_bit_identical_to_object_walk(self, topology,
                                          columnar_trace):
        config = NetworkConfig(topology=topology, strategy="lce")
        assert fastpath_eligible(columnar_trace, config)
        fast = run_fastpath(columnar_trace, config)
        slow = NetworkSimulator(config).run(columnar_trace)
        assert fast.trace_name == slow.trace_name
        assert fast.total_requests == slow.total_requests
        assert fast.warmup_requests == slow.warmup_requests
        assert fast.network.as_dict() == slow.network.as_dict()
        for name in topology.nodes:
            assert fast.nodes[name].as_dict() == \
                slow.nodes[name].as_dict(), name

    def test_run_network_dispatches_to_fastpath(self, columnar_trace,
                                                monkeypatch):
        import repro.network.fastpath as fastpath_module

        called = {}
        original = fastpath_module.run_fastpath

        def spy(trace, config, trace_name=None):
            called["yes"] = True
            return original(trace, config, trace_name)

        monkeypatch.setattr(fastpath_module, "run_fastpath", spy)
        config = NetworkConfig(topology=topologies()[0],
                               strategy="lce")
        run_network(columnar_trace, config)
        assert called

    def test_ineligible_cells_detected(self, columnar_trace,
                                       tiny_dfn_trace):
        topology = topologies()[0]
        # Object traces never qualify.
        assert not fastpath_eligible(
            tiny_dfn_trace, NetworkConfig(topology=topology))
        # Non-LRU policies disqualify.
        assert not fastpath_eligible(columnar_trace, NetworkConfig(
            topology=single(MAX_SIZE * 40, "gds(1)")))
        # Non-LCE placement disqualifies.
        assert not fastpath_eligible(columnar_trace, NetworkConfig(
            topology=topology, strategy="lcd"))
        # Latency accounting disqualifies.
        assert not fastpath_eligible(columnar_trace, NetworkConfig(
            topology=topology, measure_latency=True))
        # A node smaller than the largest document disqualifies.
        assert not fastpath_eligible(columnar_trace, NetworkConfig(
            topology=single(MAX_SIZE - 1)))
