"""Tests for cache-network topologies and their constructors."""

import pytest

from repro.errors import ConfigurationError
from repro.network.topology import (
    DEFAULT_ORIGIN_LINK,
    DEFAULT_PEER_LINK,
    TOPOLOGY_KINDS,
    NodeSpec,
    Topology,
    build_topology,
    path,
    sibling_mesh,
    single,
    tree,
    two_level,
)


class TestValidation:
    def test_node_needs_positive_capacity(self):
        with pytest.raises(ConfigurationError):
            NodeSpec(name="a", capacity_bytes=0).validate()
        with pytest.raises(ConfigurationError):
            NodeSpec(name="", capacity_bytes=100).validate()

    def test_empty_topology_rejected(self):
        with pytest.raises(ConfigurationError):
            Topology(name="t", nodes={}, parents={}, edges=()).validate()

    def test_unknown_edge_rejected(self):
        spec = NodeSpec(name="a", capacity_bytes=100)
        with pytest.raises(ConfigurationError):
            Topology(name="t", nodes={"a": spec}, parents={"a": None},
                     edges=("ghost",)).validate()

    def test_unknown_parent_rejected(self):
        spec = NodeSpec(name="a", capacity_bytes=100)
        with pytest.raises(ConfigurationError):
            Topology(name="t", nodes={"a": spec},
                     parents={"a": "ghost"}, edges=("a",)).validate()

    def test_node_missing_from_parent_map_rejected(self):
        specs = {n: NodeSpec(name=n, capacity_bytes=100)
                 for n in ("a", "b")}
        with pytest.raises(ConfigurationError):
            Topology(name="t", nodes=specs, parents={"a": None},
                     edges=("a",)).validate()

    def test_cycle_rejected(self):
        specs = {n: NodeSpec(name=n, capacity_bytes=100)
                 for n in ("a", "b")}
        with pytest.raises(ConfigurationError):
            Topology(name="t", nodes=specs,
                     parents={"a": "b", "b": "a"},
                     edges=("a",)).validate()

    def test_duplicate_sibling_ring_rejected(self):
        specs = {n: NodeSpec(name=n, capacity_bytes=100)
                 for n in ("a", "b")}
        with pytest.raises(ConfigurationError):
            Topology(name="t", nodes=specs,
                     parents={"a": None, "b": None}, edges=("a", "b"),
                     sibling_ring=("a", "a")).validate()


class TestConstructors:
    def test_single(self):
        topo = single(1000, "lru")
        topo.validate()
        assert topo.n_caches == 1
        assert topo.edges == ("cache",)
        assert topo.path_to_origin("cache") == ["cache"]
        assert topo.nodes["cache"].uplink == DEFAULT_ORIGIN_LINK

    def test_two_level_shape(self):
        topo = two_level(100, 400, n_children=3)
        topo.validate()
        assert topo.n_caches == 4
        assert topo.edges == ("child0", "child1", "child2")
        assert topo.parents["child1"] == "parent"
        assert topo.parents["parent"] is None
        assert topo.path_to_origin("child2") == ["child2", "parent"]
        assert topo.level_of("child0") == 0
        assert topo.level_of("parent") == 1
        assert topo.nodes["child0"].uplink == DEFAULT_PEER_LINK
        assert topo.nodes["parent"].uplink == DEFAULT_ORIGIN_LINK
        with pytest.raises(ConfigurationError):
            two_level(100, 400, n_children=0)

    def test_sibling_mesh_shape(self):
        topo = sibling_mesh(100, n_proxies=3)
        topo.validate()
        assert topo.edges == topo.sibling_ring
        assert all(topo.parents[n] is None for n in topo.nodes)
        assert all(topo.path_to_origin(n) == [n] for n in topo.nodes)
        with pytest.raises(ConfigurationError):
            sibling_mesh(100, n_proxies=1)
        with pytest.raises(ConfigurationError):
            sibling_mesh(100, n_proxies=3, policies=["lru"])

    def test_path_shape(self):
        topo = path([100, 200, 300])
        topo.validate()
        assert topo.edges == ("l0",)
        assert topo.path_to_origin("l0") == ["l0", "l1", "l2"]
        assert topo.level_of("l2") == 2
        assert topo.nodes["l2"].uplink == DEFAULT_ORIGIN_LINK
        assert topo.nodes["l0"].uplink == DEFAULT_PEER_LINK
        with pytest.raises(ConfigurationError):
            path([])
        with pytest.raises(ConfigurationError):
            path([100, 200], policy=["lru"])

    def test_path_per_level_policies(self):
        topo = path([100, 200], policy=["lru", "lfu"])
        assert topo.nodes["l0"].policy == "lru"
        assert topo.nodes["l1"].policy == "lfu"

    def test_tree_shape(self):
        topo = tree([100, 200, 400], branching=2)
        topo.validate()
        # Depth 3, branching 2: 4 leaves + 2 mid + 1 root.
        assert topo.n_caches == 7
        assert len(topo.edges) == 4
        assert topo.parents["l0n3"] == "l1n1"
        assert topo.parents["l1n1"] == "l2n0"
        assert topo.parents["l2n0"] is None
        assert topo.path_to_origin("l0n2") == ["l0n2", "l1n1", "l2n0"]
        assert topo.depth("l0n0") == 2
        assert topo.level_of("l2n0") == 2
        with pytest.raises(ConfigurationError):
            tree([])
        with pytest.raises(ConfigurationError):
            tree([100], branching=0)

    def test_describe_mentions_shape(self):
        text = two_level(100, 400, n_children=3).describe()
        assert "4 cache(s)" in text
        assert sibling_mesh(100, n_proxies=3).describe().count("ring")


class TestBuildTopology:
    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            build_topology("torus", 1000)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            build_topology("single", 0)

    def test_single_gets_whole_budget(self):
        topo = build_topology("single", 1000)
        assert topo.total_capacity_bytes() == 1000

    def test_uniform_split(self):
        total = 10_000
        assert build_topology("two-level", total, n=4) \
            .nodes["parent"].capacity_bytes == total // 5
        assert build_topology("mesh", total, n=4) \
            .nodes["proxy0"].capacity_bytes == total // 4
        assert build_topology("path", total, n=5) \
            .nodes["l0"].capacity_bytes == total // 5
        # Depth-3 binary tree: 7 caches.
        topo = build_topology("tree", total, n=3)
        assert topo.n_caches == 7
        assert topo.nodes["l0n0"].capacity_bytes == total // 7

    def test_every_kind_validates(self):
        for kind in TOPOLOGY_KINDS:
            build_topology(kind, 100_000, n=2).validate()

    def test_mesh_needs_two_proxies(self):
        with pytest.raises(ConfigurationError):
            build_topology("mesh", 1000, n=1)
