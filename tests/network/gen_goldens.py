"""Regenerate the pinned hierarchy/mesh equivalence goldens.

Run from the repo root::

    PYTHONPATH=src python tests/network/gen_goldens.py

The JSON files under ``tests/network/data/`` were produced by the
*legacy* per-topology loops (``HierarchySimulator``/``MeshSimulator``
before the ``repro.network`` refactor) and pin their exact outputs —
every counter, every per-type accumulator — across the full policy
registry.  ``tests/network/test_equivalence.py`` replays the same
calls through the network engine and asserts byte-for-byte equality,
which is what licensed deleting the old loops.

Regenerating is only legitimate when the *workload generator* changes
(the goldens would then pin a trace nobody can produce anymore), never
to paper over an engine difference.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.registry import POLICY_NAMES
from repro.simulation.hierarchy import simulate_hierarchy
from repro.simulation.mesh import simulate_mesh
from repro.workload.generator import generate_trace
from repro.workload.profiles import dfn_like

DATA_DIR = Path(__file__).parent / "data"

#: The deterministic workload every golden runs against.
TRACE_SCALE = 1.0 / 512.0

#: Capacity fractions of the trace's distinct-document bytes.
CHILD_FRACTION = 0.005
PARENT_FRACTION = 0.02
PROXY_FRACTION = 0.005

#: Extra mixed-policy hierarchy cells (child policy != parent policy).
MIXED_LEVELS = (("gd*(1)", "gds(p)"), ("lru", "lfu-da"))


def golden_trace():
    return generate_trace(dfn_like(scale=TRACE_SCALE))


def capacities(trace):
    total = trace.metadata().total_size_bytes
    return (int(total * CHILD_FRACTION), int(total * PARENT_FRACTION),
            int(total * PROXY_FRACTION))


def hierarchy_key(child_policy, parent_policy, n_children):
    return f"{child_policy}|{parent_policy}|{n_children}"


def mesh_key(policy, replicate, n_proxies):
    return f"{policy}|{'replicate' if replicate else 'single-owner'}" \
           f"|{n_proxies}"


def hierarchy_record(result):
    return {
        "total_requests": result.total_requests,
        "warmup_requests": result.warmup_requests,
        "child": result.child.as_dict(),
        "parent": result.parent.as_dict(),
        "hierarchy": result.hierarchy.as_dict(),
    }


def mesh_record(result):
    return {
        "total_requests": result.total_requests,
        "warmup_requests": result.warmup_requests,
        "local": result.local.as_dict(),
        "mesh": result.mesh.as_dict(),
        "sibling_hits": result.sibling_hits,
    }


def generate():
    trace = golden_trace()
    child_cap, parent_cap, proxy_cap = capacities(trace)

    hierarchy = {}
    for policy in POLICY_NAMES:
        result = simulate_hierarchy(
            trace, child_cap, parent_cap,
            child_policy=policy, parent_policy=policy, n_children=3)
        hierarchy[hierarchy_key(policy, policy, 3)] = \
            hierarchy_record(result)
    for child_policy, parent_policy in MIXED_LEVELS:
        result = simulate_hierarchy(
            trace, child_cap, parent_cap,
            child_policy=child_policy, parent_policy=parent_policy,
            n_children=2)
        hierarchy[hierarchy_key(child_policy, parent_policy, 2)] = \
            hierarchy_record(result)

    mesh = {}
    for policy in POLICY_NAMES:
        for replicate in (True, False):
            result = simulate_mesh(
                trace, proxy_cap, n_proxies=3, policy=policy,
                replicate_on_sibling_hit=replicate)
            mesh[mesh_key(policy, replicate, 3)] = mesh_record(result)

    meta = {
        "trace_scale": TRACE_SCALE,
        "trace_requests": len(trace),
        "child_capacity_bytes": child_cap,
        "parent_capacity_bytes": parent_cap,
        "proxy_capacity_bytes": proxy_cap,
    }
    DATA_DIR.mkdir(parents=True, exist_ok=True)
    (DATA_DIR / "golden_hierarchy.json").write_text(
        json.dumps({"meta": meta, "cells": hierarchy}, indent=1,
                   sort_keys=True) + "\n")
    (DATA_DIR / "golden_mesh.json").write_text(
        json.dumps({"meta": meta, "cells": mesh}, indent=1,
                   sort_keys=True) + "\n")
    print(f"hierarchy: {len(hierarchy)} cells, mesh: {len(mesh)} cells "
          f"({len(trace)} requests each)")


if __name__ == "__main__":
    generate()
