"""Unit tests for histograms and the log-log slope fit."""

import math

import pytest

from repro.structures.histogram import (
    Histogram,
    LogHistogram,
    least_squares_slope,
)


class TestHistogram:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(1.0, 1.0, 4)
        with pytest.raises(ValueError):
            Histogram(0.0, 1.0, 0)

    def test_counts_land_in_bins(self):
        hist = Histogram(0.0, 10.0, 10)
        for value in (0.5, 1.5, 1.7, 9.9):
            hist.add(value)
        assert hist.counts[0] == 1
        assert hist.counts[1] == 2
        assert hist.counts[9] == 1
        assert hist.total == 4

    def test_under_overflow(self):
        hist = Histogram(0.0, 10.0, 5)
        hist.add(-1.0)
        hist.add(10.0)
        hist.add(100.0)
        assert hist.underflow == 1
        assert hist.overflow == 2
        assert sum(hist.counts) == 0

    def test_mean_of_midpoints(self):
        hist = Histogram(0.0, 10.0, 10)
        hist.add(2.2)  # bin 2, midpoint 2.5
        hist.add(7.9)  # bin 7, midpoint 7.5
        assert hist.mean() == pytest.approx(5.0)

    def test_mean_empty_is_nan(self):
        assert math.isnan(Histogram(0, 1, 2).mean())

    def test_bin_edges(self):
        hist = Histogram(0.0, 4.0, 4)
        assert hist.bin_edges() == [0.0, 1.0, 2.0, 3.0, 4.0]


class TestLogHistogram:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LogHistogram(max_value=1)
        with pytest.raises(ValueError):
            LogHistogram(bins_per_decade=0)

    def test_rejects_nonpositive_values(self):
        hist = LogHistogram()
        with pytest.raises(ValueError):
            hist.add(0)
        with pytest.raises(ValueError):
            hist.add(-5)

    def test_small_values_to_first_bin(self):
        hist = LogHistogram()
        hist.add(0.5)
        hist.add(1.0)
        assert hist.counts[0] == 2

    def test_bins_grow_logarithmically(self):
        hist = LogHistogram(max_value=1e6, bins_per_decade=1)
        hist.add(5)        # decade [1, 10)
        hist.add(50)       # decade [10, 100)
        hist.add(5000)     # decade [1000, 10000)
        assert hist.counts[0] == 1
        assert hist.counts[1] == 1
        assert hist.counts[3] == 1

    def test_values_above_max_clamp_to_last_bin(self):
        hist = LogHistogram(max_value=100, bins_per_decade=1)
        hist.add(10 ** 9)
        assert hist.counts[-1] == 1

    def test_bin_center_is_geometric_mean(self):
        hist = LogHistogram(max_value=1e4, bins_per_decade=1)
        lo, hi = hist.bin_bounds(2)
        assert hist.bin_center(2) == pytest.approx(math.sqrt(lo * hi))

    def test_densities_divide_by_width(self):
        hist = LogHistogram(max_value=1e4, bins_per_decade=1)
        hist.add(5, weight=90)    # bin [1,10): width 9
        hist.add(50, weight=90)   # bin [10,100): width 90
        densities = dict(hist.densities())
        values = sorted(densities.values(), reverse=True)
        assert values[0] == pytest.approx(10.0)  # 90 / 9
        assert values[1] == pytest.approx(1.0)   # 90 / 90

    def test_merge_compatible(self):
        a = LogHistogram(max_value=100, bins_per_decade=2)
        b = LogHistogram(max_value=100, bins_per_decade=2)
        a.add(5)
        b.add(5)
        a.merge(b)
        assert a.total == 2

    def test_merge_incompatible_raises(self):
        a = LogHistogram(max_value=100, bins_per_decade=2)
        b = LogHistogram(max_value=100, bins_per_decade=3)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_decay_scales_counts(self):
        hist = LogHistogram(max_value=100, bins_per_decade=1)
        hist.add(5, weight=100)
        hist.decay(0.5)
        assert hist.counts[0] == 50
        assert hist.total == 50

    def test_decay_validates_factor(self):
        hist = LogHistogram()
        with pytest.raises(ValueError):
            hist.decay(1.5)

    def test_power_law_slope_recovered(self):
        """Filling with an exact power law recovers its exponent."""
        beta = 0.7
        hist = LogHistogram(max_value=1e6, bins_per_decade=4)
        # Deterministic fill: per-bin count = pdf(center) * bin width,
        # i.e. what sampling x ~ x^-beta would put there in expectation.
        for idx in range(len(hist)):
            lo, hi = hist.bin_bounds(idx)
            center = hist.bin_center(idx)
            weight = int(1e5 * center ** (-beta) * (hi - lo))
            if weight:
                hist.add(center, weight=weight)
        slope = least_squares_slope(hist.loglog_points())
        assert -slope == pytest.approx(beta, abs=0.1)


class TestLeastSquaresSlope:
    def test_exact_line(self):
        points = [(x, 2.0 * x + 1.0) for x in range(10)]
        assert least_squares_slope(points) == pytest.approx(2.0)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            least_squares_slope([(1.0, 1.0)])

    def test_degenerate_x_raises(self):
        with pytest.raises(ValueError):
            least_squares_slope([(1.0, 1.0), (1.0, 2.0)])

    def test_negative_slope(self):
        points = [(x, -0.5 * x) for x in range(5)]
        assert least_squares_slope(points) == pytest.approx(-0.5)
