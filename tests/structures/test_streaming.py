"""Tests for streaming statistics against exact numpy references."""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.streaming import P2Quantile, StreamingStats


class TestStreamingStats:
    def test_empty(self):
        stats = StreamingStats()
        assert stats.count == 0
        assert math.isnan(stats.mean)
        assert math.isnan(stats.variance)
        assert math.isnan(stats.cov)

    def test_single_value(self):
        stats = StreamingStats()
        stats.add(5.0)
        assert stats.mean == 5.0
        assert stats.variance == 0.0
        assert stats.minimum == 5.0
        assert stats.maximum == 5.0
        assert stats.total == 5.0

    def test_matches_numpy(self):
        rng = random.Random(3)
        values = [rng.uniform(-100, 100) for _ in range(500)]
        stats = StreamingStats()
        stats.extend(values)
        assert stats.mean == pytest.approx(np.mean(values))
        assert stats.variance == pytest.approx(np.var(values))
        assert stats.sample_variance == pytest.approx(np.var(values, ddof=1))
        assert stats.stddev == pytest.approx(np.std(values))

    def test_cov(self):
        stats = StreamingStats()
        stats.extend([10.0, 10.0, 10.0])
        assert stats.cov == 0.0
        stats2 = StreamingStats()
        stats2.extend([1.0, 3.0])
        assert stats2.cov == pytest.approx(np.std([1, 3]) / 2.0)

    def test_cov_zero_mean_nan(self):
        stats = StreamingStats()
        stats.extend([-1.0, 1.0])
        assert math.isnan(stats.cov)

    def test_merge_matches_single_pass(self):
        rng = random.Random(9)
        a_vals = [rng.gauss(0, 5) for _ in range(200)]
        b_vals = [rng.gauss(10, 1) for _ in range(300)]
        a, b, combined = StreamingStats(), StreamingStats(), StreamingStats()
        a.extend(a_vals)
        b.extend(b_vals)
        combined.extend(a_vals + b_vals)
        a.merge(b)
        assert a.count == combined.count
        assert a.mean == pytest.approx(combined.mean)
        assert a.variance == pytest.approx(combined.variance)
        assert a.minimum == combined.minimum
        assert a.maximum == combined.maximum

    def test_merge_empty_sides(self):
        full = StreamingStats()
        full.extend([1.0, 2.0])
        empty = StreamingStats()
        full.merge(empty)
        assert full.count == 2
        empty2 = StreamingStats()
        empty2.merge(full)
        assert empty2.mean == pytest.approx(1.5)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=2, max_size=200))
    def test_property_mean_variance(self, values):
        stats = StreamingStats()
        stats.extend(values)
        assert stats.mean == pytest.approx(np.mean(values), rel=1e-9,
                                           abs=1e-6)
        assert stats.variance == pytest.approx(np.var(values), rel=1e-6,
                                               abs=1e-3)


class TestP2Quantile:
    def test_validates_p(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile().value)

    def test_exact_below_five_samples(self):
        quantile = P2Quantile(0.5)
        for value in (3.0, 1.0, 2.0):
            quantile.add(value)
        assert quantile.value == 2.0

    def test_median_of_uniform(self):
        rng = random.Random(7)
        quantile = P2Quantile(0.5)
        values = [rng.random() for _ in range(20000)]
        for value in values:
            quantile.add(value)
        assert quantile.value == pytest.approx(np.median(values), abs=0.02)

    def test_p90_of_exponential(self):
        rng = random.Random(11)
        quantile = P2Quantile(0.9)
        values = [rng.expovariate(1.0) for _ in range(20000)]
        for value in values:
            quantile.add(value)
        exact = np.quantile(values, 0.9)
        assert quantile.value == pytest.approx(exact, rel=0.1)

    def test_median_of_lognormal(self):
        """Heavy-tailed input, the regime the trace stats run in."""
        rng = random.Random(13)
        quantile = P2Quantile(0.5)
        values = [rng.lognormvariate(8.0, 1.5) for _ in range(20000)]
        for value in values:
            quantile.add(value)
        exact = float(np.median(values))
        assert quantile.value == pytest.approx(exact, rel=0.1)
