"""Unit tests for the intrusive doubly-linked list."""

import pytest

from repro.structures.dlist import DList


def test_empty_list_properties():
    dlist = DList()
    assert len(dlist) == 0
    assert not dlist
    assert list(dlist) == []
    assert list(reversed(dlist)) == []


def test_push_back_orders_front_to_back():
    dlist = DList()
    for value in "abc":
        dlist.push_back(value)
    assert list(dlist) == ["a", "b", "c"]
    assert dlist.front() == "a"
    assert dlist.back() == "c"


def test_push_front_inserts_at_eviction_end():
    dlist = DList()
    dlist.push_back("b")
    dlist.push_front("a")
    assert list(dlist) == ["a", "b"]


def test_reversed_iterates_back_to_front():
    dlist = DList()
    for value in "abc":
        dlist.push_back(value)
    assert list(reversed(dlist)) == ["c", "b", "a"]


def test_pop_front_removes_in_order():
    dlist = DList()
    for value in range(5):
        dlist.push_back(value)
    assert [dlist.pop_front() for _ in range(5)] == [0, 1, 2, 3, 4]
    assert len(dlist) == 0


def test_pop_front_empty_raises():
    with pytest.raises(IndexError):
        DList().pop_front()


def test_front_back_empty_raises():
    dlist = DList()
    with pytest.raises(IndexError):
        dlist.front()
    with pytest.raises(IndexError):
        dlist.back()


def test_unlink_middle_node():
    dlist = DList()
    nodes = [dlist.push_back(v) for v in "abc"]
    dlist.unlink(nodes[1])
    assert list(dlist) == ["a", "c"]
    assert len(dlist) == 2
    assert not nodes[1].linked


def test_unlink_only_node_empties_list():
    dlist = DList()
    node = dlist.push_back("a")
    dlist.unlink(node)
    assert len(dlist) == 0
    assert list(dlist) == []


def test_unlink_detached_node_raises():
    dlist = DList()
    node = dlist.push_back("a")
    dlist.unlink(node)
    with pytest.raises(ValueError):
        dlist.unlink(node)


def test_move_to_back_reorders():
    dlist = DList()
    nodes = [dlist.push_back(v) for v in "abc"]
    dlist.move_to_back(nodes[0])
    assert list(dlist) == ["b", "c", "a"]
    assert dlist.back() == "a"


def test_move_to_back_of_last_node_is_noop_order():
    dlist = DList()
    nodes = [dlist.push_back(v) for v in "ab"]
    dlist.move_to_back(nodes[1])
    assert list(dlist) == ["a", "b"]


def test_interleaved_operations_keep_count():
    dlist = DList()
    nodes = {}
    for i in range(100):
        nodes[i] = dlist.push_back(i)
    for i in range(0, 100, 2):
        dlist.unlink(nodes[i])
    assert len(dlist) == 50
    assert list(dlist) == list(range(1, 100, 2))


def test_lru_usage_pattern():
    """Simulate an LRU touch pattern: move hit nodes to the back."""
    dlist = DList()
    nodes = {v: dlist.push_back(v) for v in "abcd"}
    dlist.move_to_back(nodes["a"])   # touch a
    dlist.move_to_back(nodes["b"])   # touch b
    assert dlist.pop_front() == "c"  # c is now least recent
    assert dlist.pop_front() == "d"
    assert dlist.pop_front() == "a"
    assert dlist.pop_front() == "b"
