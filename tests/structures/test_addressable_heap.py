"""Unit and property tests for the addressable binary min-heap."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.addressable_heap import AddressableHeap


def test_empty_heap():
    heap = AddressableHeap()
    assert len(heap) == 0
    assert not heap
    assert "x" not in heap
    with pytest.raises(IndexError):
        heap.pop()
    with pytest.raises(IndexError):
        heap.peek()


def test_push_pop_single():
    heap = AddressableHeap()
    heap.push("a", 3.0)
    assert "a" in heap
    assert heap.peek() == ("a", 3.0)
    assert heap.pop() == ("a", 3.0)
    assert "a" not in heap


def test_pop_returns_minimum_order():
    heap = AddressableHeap()
    keys = [5, 1, 4, 2, 3]
    for i, key in enumerate(keys):
        heap.push(f"item{i}", key)
    popped = [heap.pop()[1] for _ in range(len(keys))]
    assert popped == sorted(keys)


def test_duplicate_push_raises():
    heap = AddressableHeap()
    heap.push("a", 1)
    with pytest.raises(KeyError):
        heap.push("a", 2)


def test_ties_break_fifo():
    heap = AddressableHeap()
    for name in ("first", "second", "third"):
        heap.push(name, 7)
    assert heap.pop()[0] == "first"
    assert heap.pop()[0] == "second"
    assert heap.pop()[0] == "third"


def test_update_key_decrease():
    heap = AddressableHeap()
    heap.push("a", 10)
    heap.push("b", 5)
    heap.update_key("a", 1)
    assert heap.pop()[0] == "a"


def test_update_key_increase():
    heap = AddressableHeap()
    heap.push("a", 1)
    heap.push("b", 5)
    heap.update_key("a", 10)
    assert heap.pop()[0] == "b"


def test_update_key_refreshes_tie_order():
    """Re-keyed items sort after existing items with equal keys."""
    heap = AddressableHeap()
    heap.push("a", 3)
    heap.push("b", 3)
    heap.update_key("a", 3)  # same value, but now "newer"
    assert heap.pop()[0] == "b"
    assert heap.pop()[0] == "a"


def test_key_of_and_remove():
    heap = AddressableHeap()
    heap.push("a", 2)
    heap.push("b", 1)
    assert heap.key_of("a") == 2
    assert heap.remove("a") == 2
    assert "a" not in heap
    assert heap.pop()[0] == "b"


def test_remove_missing_raises():
    heap = AddressableHeap()
    with pytest.raises(KeyError):
        heap.remove("ghost")
    with pytest.raises(KeyError):
        heap.key_of("ghost")


def test_remove_last_element_position():
    heap = AddressableHeap()
    heap.push("a", 1)
    heap.push("b", 2)
    heap.remove("b")
    heap.check_invariants()
    assert heap.pop()[0] == "a"


def test_clear():
    heap = AddressableHeap()
    for i in range(10):
        heap.push(i, i)
    heap.clear()
    assert len(heap) == 0
    heap.push("x", 1)  # usable after clear
    assert heap.pop()[0] == "x"


def test_iteration_covers_all_items():
    heap = AddressableHeap()
    for i in range(20):
        heap.push(i, -i)
    assert sorted(heap) == list(range(20))


def test_large_randomized_sequence_maintains_order():
    rng = random.Random(42)
    heap = AddressableHeap()
    live = {}
    for step in range(3000):
        action = rng.random()
        if action < 0.5 or not live:
            item = f"i{step}"
            key = rng.randint(0, 1000)
            heap.push(item, key)
            live[item] = key
        elif action < 0.75:
            item = rng.choice(list(live))
            key = rng.randint(0, 1000)
            heap.update_key(item, key)
            live[item] = key
        else:
            item, key = heap.pop()
            assert key == min(live.values())
            del live[item]
    heap.check_invariants()
    # Drain: pops must come out sorted.
    drained = [heap.pop()[1] for _ in range(len(heap))]
    assert drained == sorted(drained)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=-1000, max_value=1000),
                min_size=1, max_size=80))
def test_property_heapsort(keys):
    """Pushing arbitrary keys and draining yields sorted order."""
    heap = AddressableHeap()
    for index, key in enumerate(keys):
        heap.push(index, key)
    heap.check_invariants()
    drained = [heap.pop()[1] for _ in range(len(keys))]
    assert drained == sorted(keys)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 30), st.integers(-50, 50)),
                min_size=1, max_size=120))
def test_property_update_then_drain(ops):
    """Random pushes and re-keys never violate the heap invariant."""
    heap = AddressableHeap()
    live = {}
    for item, key in ops:
        if item in live:
            heap.update_key(item, key)
        else:
            heap.push(item, key)
        live[item] = key
        heap.check_invariants()
    drained = []
    while heap:
        _, key = heap.pop()
        drained.append(key)
    assert drained == sorted(live.values())
