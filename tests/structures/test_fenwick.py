"""Tests for the Fenwick tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.fenwick import FenwickTree


def test_validates_size():
    with pytest.raises(ValueError):
        FenwickTree(0)


def test_empty_sums_zero():
    tree = FenwickTree(10)
    assert tree.prefix_sum(9) == 0
    assert tree.prefix_sum(-1) == 0
    assert tree.total() == 0


def test_single_update():
    tree = FenwickTree(10)
    tree.add(3, 5)
    assert tree.prefix_sum(2) == 0
    assert tree.prefix_sum(3) == 5
    assert tree.prefix_sum(9) == 5


def test_range_sum():
    tree = FenwickTree(10)
    for index in range(10):
        tree.add(index, index)
    assert tree.range_sum(2, 4) == 2 + 3 + 4
    assert tree.range_sum(0, 9) == sum(range(10))
    assert tree.range_sum(5, 4) == 0


def test_negative_deltas():
    tree = FenwickTree(5)
    tree.add(2, 10)
    tree.add(2, -4)
    assert tree.prefix_sum(2) == 6


def test_out_of_range_raises():
    tree = FenwickTree(5)
    with pytest.raises(IndexError):
        tree.add(5, 1)
    with pytest.raises(IndexError):
        tree.add(-1, 1)


def test_prefix_sum_clamps_high_index():
    tree = FenwickTree(5)
    tree.add(4, 7)
    assert tree.prefix_sum(100) == 7


def test_matches_naive_reference():
    rng = random.Random(3)
    size = 200
    tree = FenwickTree(size)
    reference = [0] * size
    for _ in range(2000):
        index = rng.randrange(size)
        delta = rng.randint(-5, 5)
        tree.add(index, delta)
        reference[index] += delta
        probe = rng.randrange(size)
        assert tree.prefix_sum(probe) == sum(reference[:probe + 1])


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 49), st.integers(-10, 10)),
                min_size=1, max_size=100))
def test_property_prefix_sums(updates):
    tree = FenwickTree(50)
    reference = [0] * 50
    for index, delta in updates:
        tree.add(index, delta)
        reference[index] += delta
    for probe in (0, 10, 25, 49):
        assert tree.prefix_sum(probe) == sum(reference[:probe + 1])
