"""Tests for reservoir sampling."""

import pytest

from repro.structures.reservoir import Reservoir


def test_validates_capacity():
    with pytest.raises(ValueError):
        Reservoir(0)


def test_keeps_everything_under_capacity():
    reservoir = Reservoir(10, seed=1)
    reservoir.extend(range(5))
    assert sorted(reservoir.sample) == [0, 1, 2, 3, 4]
    assert len(reservoir) == 5
    assert reservoir.count == 5


def test_capacity_bound_holds():
    reservoir = Reservoir(16, seed=2)
    reservoir.extend(range(10000))
    assert len(reservoir) == 16
    assert reservoir.count == 10000
    assert all(0 <= x < 10000 for x in reservoir.sample)


def test_sample_returns_copy():
    reservoir = Reservoir(4, seed=3)
    reservoir.extend(range(4))
    sample = reservoir.sample
    sample.append(99)
    assert len(reservoir.sample) == 4


def test_deterministic_with_seed():
    a = Reservoir(8, seed=42)
    b = Reservoir(8, seed=42)
    a.extend(range(1000))
    b.extend(range(1000))
    assert a.sample == b.sample


def test_uniformity_roughly():
    """Each of 100 items should appear in ~10% of size-10 samples."""
    hits = [0] * 100
    for seed in range(300):
        reservoir = Reservoir(10, seed=seed)
        reservoir.extend(range(100))
        for item in reservoir.sample:
            hits[item] += 1
    # Expected 30 hits each; allow generous slack.
    assert all(10 <= h <= 60 for h in hits)
