"""Shared fixtures: small deterministic traces and request factories."""

from __future__ import annotations

import pytest

from repro.types import DocumentType, Request, Trace
from repro.workload.generator import generate_trace
from repro.workload.profiles import dfn_like, rtp_like, uniform_profile


def make_request(url: str = "http://x/a.html", size: int = 1000,
                 transfer: int = None, doc_type: DocumentType = None,
                 timestamp: float = 0.0, status: int = 200) -> Request:
    """Request factory with sane defaults (used across test modules)."""
    if transfer is None:
        transfer = size
    if doc_type is None:
        doc_type = DocumentType.HTML
    return Request(timestamp=timestamp, url=url, size=size,
                   transfer_size=transfer, doc_type=doc_type, status=status)


@pytest.fixture
def request_factory():
    return make_request


@pytest.fixture(scope="session")
def tiny_uniform_trace() -> Trace:
    """~4k requests, all five types equally likely."""
    return generate_trace(uniform_profile(n_requests=4000, n_documents=600,
                                          seed=11))


@pytest.fixture(scope="session")
def tiny_dfn_trace() -> Trace:
    """DFN-like trace at 1/512 scale (~13k requests)."""
    return generate_trace(dfn_like(scale=1.0 / 512.0))


@pytest.fixture(scope="session")
def tiny_rtp_trace() -> Trace:
    """RTP-like trace at 1/512 scale (~8k requests)."""
    return generate_trace(rtp_like(scale=1.0 / 512.0))
