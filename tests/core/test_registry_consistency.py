"""Registry-wide consistency checks.

Guards the invariants the documentation and experiment code rely on:
every registered policy constructs, reports its canonical name, and
behaves under the shared protocol.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost import ByteCost, ConstantCost, LatencyCost, PacketCost
from repro.core.registry import (
    PAPER_CONSTANT_COST,
    PAPER_PACKET_COST,
    POLICY_NAMES,
    canonical_name,
    make_policy,
)


def test_names_are_canonical_fixed_points():
    for name in POLICY_NAMES:
        assert canonical_name(name) == name
        assert canonical_name(name.upper()) == name


def test_policy_name_attribute_matches_registry_key():
    for name in POLICY_NAMES:
        assert make_policy(name).name == name


def test_paper_sets_subset_of_registry():
    for name in PAPER_CONSTANT_COST + PAPER_PACKET_COST:
        assert name in POLICY_NAMES


def test_every_policy_supports_the_protocol():
    """Construct, attach, admit, hit, evict, remove, clear — the full
    hook surface — for every registered policy."""
    from repro.core.cache import Cache
    from repro.types import DocumentType

    for name in POLICY_NAMES:
        cache = Cache(100, make_policy(name))
        cache.reference("a", 30, DocumentType.HTML)
        cache.reference("a", 30, DocumentType.HTML)      # hit
        cache.reference("b", 30, DocumentType.IMAGE)
        cache.reference("c", 30, DocumentType.OTHER)
        cache.reference("d", 30, DocumentType.HTML)      # forces evict
        cache.invalidate("d") or cache.invalidate("a") \
            or cache.invalidate("b") or cache.invalidate("c")
        cache.check_invariants()
        cache.flush()
        cache.reference("e", 10, DocumentType.HTML)      # usable after
        cache.check_invariants()


def test_cost_model_tags_unique():
    models = [ConstantCost(), PacketCost(), ByteCost(), LatencyCost()]
    tags = [m.tag for m in models]
    assert len(set(tags)) == len(tags)
    names = [m.name for m in models]
    assert len(set(names)) == len(names)


def test_greedy_dual_family_has_both_cost_variants():
    for family in ("gds", "gdsf", "gd*", "gd*t", "landlord",
                   "hyperbolic"):
        assert f"{family}(1)" in POLICY_NAMES, family
        assert f"{family}(p)" in POLICY_NAMES, family


@settings(max_examples=30, deadline=None)
@given(st.text(min_size=1, max_size=20))
def test_unknown_names_always_raise_cleanly(name):
    from repro.errors import ConfigurationError
    try:
        canonical = canonical_name(name)
    except ConfigurationError:
        return  # expected for garbage
    assert canonical in POLICY_NAMES
