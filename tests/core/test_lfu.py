"""Behavioural tests for plain LFU (and its pollution failure mode)."""

from repro.core.cache import Cache
from repro.core.lfu import LFUPolicy

from tests.core.helpers import ref, resident_urls


def cache(capacity=30):
    return Cache(capacity, LFUPolicy())


def test_evicts_least_frequent():
    c = cache()
    ref(c, "a"), ref(c, "a"), ref(c, "a")
    ref(c, "b"), ref(c, "b")
    ref(c, "c")
    ref(c, "d")   # c has frequency 1: the victim
    assert resident_urls(c) == ["a", "b", "d"]


def test_frequency_ties_break_fifo():
    c = cache()
    ref(c, "a"), ref(c, "b"), ref(c, "c")   # all frequency 1
    ref(c, "d")
    assert resident_urls(c) == ["b", "c", "d"]


def test_hit_raises_frequency():
    c = cache()
    ref(c, "a"), ref(c, "b"), ref(c, "c")
    ref(c, "a")       # a now freq 2
    ref(c, "d")       # b evicted (freq 1, oldest)
    assert resident_urls(c) == ["a", "c", "d"]


def test_cache_pollution():
    """Formerly-hot documents block the current working set — the flaw
    LFU-DA's aging fixes."""
    c = cache(30)
    for _ in range(100):
        ref(c, "hot1")
    for _ in range(100):
        ref(c, "hot2")
    # New working set of 3 documents cycles; only one slot left, and
    # every new document has frequency 1, so they evict each other.
    hits_before = c.hits
    for _ in range(10):
        for url in ("n1", "n2", "n3"):
            ref(c, url)
    assert "hot1" in c and "hot2" in c   # dead documents still resident
    assert c.hits == hits_before          # new set never hits


def test_frequency_resets_on_readmission():
    c = cache(30)
    for _ in range(5):
        ref(c, "a")
    ref(c, "b"), ref(c, "c")
    ref(c, "d")                  # evicts b (freq 1, older than c)
    ref(c, "b")                  # readmitted with frequency 1
    assert c.get("b").frequency == 1
