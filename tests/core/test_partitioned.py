"""Tests for the type-partitioned cache."""

import pytest

from repro.core.partitioned import (
    PartitionedCache,
    make_policy_factory,
    request_share_partitioning,
)
from repro.core.policy import AccessOutcome
from repro.core.registry import make_policy
from repro.errors import CapacityError, ConfigurationError
from repro.types import DOCUMENT_TYPES, DocumentType

IMAGE = DocumentType.IMAGE
MM = DocumentType.MULTIMEDIA


class TestConstruction:
    def test_validates_capacity(self):
        with pytest.raises(CapacityError):
            PartitionedCache(0)

    def test_validates_shares(self):
        with pytest.raises(ConfigurationError):
            PartitionedCache(1000, shares={IMAGE: 1.0})
        bad = {t: 0.25 for t in DOCUMENT_TYPES}
        with pytest.raises(ConfigurationError):
            PartitionedCache(1000, shares=bad)   # sums to 1.25
        zeroed = {t: 0.2 for t in DOCUMENT_TYPES}
        zeroed[IMAGE] = 0.0
        zeroed[DocumentType.HTML] = 0.4
        with pytest.raises(ConfigurationError):
            PartitionedCache(1000, shares=zeroed)

    def test_default_equal_shares(self):
        cache = PartitionedCache(1000)
        for doc_type in DOCUMENT_TYPES:
            assert cache.partition_of(doc_type).capacity_bytes == 200

    def test_custom_policies(self):
        policies = {IMAGE: make_policy("gds(1)")}
        cache = PartitionedCache(
            1000, policy_factory=make_policy_factory("lru"),
            policies=policies)
        assert cache.partition_of(IMAGE).policy.name == "gds(1)"
        assert cache.partition_of(MM).policy.name == "lru"


class TestBehaviour:
    def test_isolation_between_types(self):
        """A multimedia flood cannot evict images — the design goal."""
        shares = {t: 0.4 if t in (IMAGE, MM) else 0.2 / 3
                  for t in DOCUMENT_TYPES}
        cache = PartitionedCache(1000, shares=shares)
        cache.reference("i1", 100, IMAGE)
        cache.reference("i2", 100, IMAGE)
        for index in range(50):
            cache.reference(f"m{index}", 300, MM)
        assert "i1" in cache and "i2" in cache
        assert cache.reference("i1", 100, IMAGE) is AccessOutcome.HIT

    def test_counters_aggregate(self):
        cache = PartitionedCache(1000)
        cache.reference("a", 50, IMAGE)
        cache.reference("a", 50, IMAGE)
        cache.reference("b", 50, MM)
        assert cache.hits == 1
        assert cache.misses == 2
        assert cache.used_bytes == 100
        assert len(cache) == 2
        assert cache.clock == 3

    def test_per_partition_bypass(self):
        """A document bigger than its partition is bypassed even though
        the total cache could hold it."""
        cache = PartitionedCache(1000)   # 200 per type
        outcome = cache.reference("big", 500, MM)
        assert outcome is AccessOutcome.MISS_TOO_BIG
        assert cache.bypasses == 1

    def test_invalidate_searches_partitions(self):
        cache = PartitionedCache(1000)
        cache.reference("x", 50, IMAGE)
        assert cache.invalidate("x")
        assert not cache.invalidate("x")

    def test_entries_and_flush(self):
        cache = PartitionedCache(1000)
        cache.reference("a", 50, IMAGE)
        cache.reference("b", 50, MM)
        assert sorted(e.url for e in cache.entries()) == ["a", "b"]
        cache.flush()
        assert len(cache) == 0
        cache.check_invariants()


class TestSimulatorIntegration:
    def test_drop_in_for_simulator(self, tiny_dfn_trace):
        from repro.simulation.simulator import (
            CacheSimulator, SimulationConfig)

        capacity = int(
            tiny_dfn_trace.metadata().total_size_bytes * 0.02)
        from repro.analysis.characterize import type_breakdown
        shares = request_share_partitioning(
            type_breakdown(tiny_dfn_trace).total_requests)
        cache = PartitionedCache(
            capacity, shares=shares,
            policy_factory=make_policy_factory("lru"))
        config = SimulationConfig(capacity_bytes=capacity, policy="lru")
        result = CacheSimulator(config, cache=cache).run(tiny_dfn_trace)
        assert 0.0 < result.hit_rate() < 1.0
        assert result.policy == "partitionedcache"


class TestRequestSharePartitioning:
    def test_normalizes_and_floors(self):
        breakdown = {DocumentType.IMAGE: 70.0, DocumentType.HTML: 21.2,
                     DocumentType.MULTIMEDIA: 0.14,
                     DocumentType.APPLICATION: 2.6,
                     DocumentType.OTHER: 6.06}
        shares = request_share_partitioning(breakdown)
        assert sum(shares.values()) == pytest.approx(1.0)
        # Multimedia floored at 0.5 % pre-normalization.
        assert shares[DocumentType.MULTIMEDIA] > 0.003

    def test_missing_types_floored(self):
        shares = request_share_partitioning({DocumentType.IMAGE: 100.0})
        assert sum(shares.values()) == pytest.approx(1.0)
        assert all(share > 0 for share in shares.values())
