"""Behavioural tests for LFU with Dynamic Aging (paper Section 3)."""

from repro.core.cache import Cache
from repro.core.lfu_da import LFUDAPolicy

from tests.core.helpers import ref, resident_urls


def cache(capacity=30):
    return Cache(capacity, LFUDAPolicy())


def test_behaves_like_lfu_before_first_eviction():
    c = cache()
    ref(c, "a"), ref(c, "a")
    ref(c, "b")
    ref(c, "c")
    ref(c, "d")   # b or c (freq 1) evicted, not a
    assert "a" in c


def test_cache_age_advances_on_eviction():
    policy = LFUDAPolicy()
    c = Cache(30, policy)
    ref(c, "a"), ref(c, "b"), ref(c, "c")
    assert policy.cache_age == 0.0
    ref(c, "d")   # evicts a with key 1 + 0
    assert policy.cache_age == 1.0


def test_aging_prevents_pollution():
    """The dead formerly-hot document is eventually evicted — the exact
    scenario plain LFU fails (see test_lfu.test_cache_pollution)."""
    c = cache(30)
    for _ in range(100):
        ref(c, "hot")          # key 100
    # Stream of fresh documents; each admission uses key 1 + cache_age,
    # and cache_age climbs with each eviction until it passes hot's key.
    for i in range(300):
        ref(c, f"n{i}")
    assert "hot" not in c


def test_recently_referenced_beats_equally_frequent_older():
    policy = LFUDAPolicy()
    c = Cache(30, policy)
    for _ in range(5):
        ref(c, "old")          # key 5
    for i in range(10):        # force evictions to raise the age
        ref(c, f"f{i}")
    age = policy.cache_age
    assert age > 0
    ref(c, "new")              # key 1 + age
    # If the age exceeds old's standalone key, new outranks old.
    if 1 + age > 5:
        ref(c, "filler-a"), ref(c, "filler-b")
        assert "new" in c


def test_invalidation_does_not_advance_age():
    policy = LFUDAPolicy()
    c = Cache(30, policy)
    for _ in range(9):
        ref(c, "a")
    c.invalidate("a")
    assert policy.cache_age == 0.0


def test_age_monotone_nondecreasing():
    policy = LFUDAPolicy()
    c = Cache(50, policy)
    import random
    rng = random.Random(2)
    last_age = 0.0
    for i in range(500):
        ref(c, f"u{rng.randint(0, 30)}")
        assert policy.cache_age >= last_age
        last_age = policy.cache_age


def test_clear_resets_age():
    policy = LFUDAPolicy()
    c = Cache(30, policy)
    for url in "abcd":
        ref(c, url)
    assert policy.cache_age > 0
    c.flush()
    assert policy.cache_age == 0.0
