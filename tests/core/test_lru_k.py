"""Behavioural tests for LRU-K."""

import pytest

from repro.core.cache import Cache
from repro.core.lru_k import LRUKPolicy
from repro.errors import ConfigurationError

from tests.core.helpers import ref, resident_urls


def test_validates_k():
    with pytest.raises(ConfigurationError):
        LRUKPolicy(k=0)


def test_name_reflects_k():
    assert LRUKPolicy(k=2).name == "lru-2"
    assert LRUKPolicy(k=3).name == "lru-3"


def test_single_reference_entries_evicted_first():
    """Entries without K references sort before fully-observed ones."""
    c = Cache(30, LRUKPolicy(k=2))
    ref(c, "a"), ref(c, "a")   # a has 2 references
    ref(c, "b")                # b has 1
    ref(c, "c")                # c has 1
    ref(c, "d")                # b evicted (no K-history, oldest last ref)
    assert "a" in c
    assert "b" not in c


def test_scan_resistance():
    """A one-pass scan cannot displace the established working set —
    the signature LRU-2 property plain LRU lacks."""
    c = Cache(30, LRUKPolicy(k=2))
    for _ in range(3):
        for url in ("w1", "w2"):   # working set, multiply referenced
            ref(c, url)
    for i in range(10):            # long scan of once-referenced docs
        ref(c, f"scan{i}")
    assert "w1" in c and "w2" in c


def test_k1_degenerates_to_lru():
    from repro.core.lru import LRUPolicy
    lru_k = Cache(30, LRUKPolicy(k=1))
    lru = Cache(30, LRUPolicy())
    workload = ["a", "b", "c", "a", "d", "b", "e", "a", "f"]
    for url in workload:
        ref(lru_k, url)
        ref(lru, url)
    assert resident_urls(lru_k) == resident_urls(lru)


def test_kth_reference_recency_decides_among_observed():
    c = Cache(30, LRUKPolicy(k=2))
    ref(c, "a"), ref(c, "a")     # a: 2nd-last ref at t=1
    ref(c, "b"), ref(c, "b")     # b: 2nd-last ref at t=3
    ref(c, "c"), ref(c, "c")     # c: 2nd-last ref at t=5
    ref(c, "d")                  # d unobserved -> evicted first? No:
    # d is the entry being admitted; victim must come from a, b, c.
    # a has the oldest K-th reference.
    assert "a" not in c
    assert resident_urls(c) == ["b", "c", "d"]


def test_clear_resets_clock():
    policy = LRUKPolicy(k=2)
    c = Cache(30, policy)
    ref(c, "a")
    c.flush()
    assert policy._clock == 0
    ref(c, "b")
    assert "b" in c
