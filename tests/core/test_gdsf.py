"""Behavioural tests for GDSF (GDS with frequency)."""

import pytest

from repro.core.cache import Cache
from repro.core.cost import ConstantCost
from repro.core.gds import GDSPolicy
from repro.core.gdsf import GDSFPolicy

from tests.core.helpers import ref, resident_urls


def test_name():
    assert GDSFPolicy(ConstantCost()).name == "gdsf(1)"


def test_frequency_protects_popular_documents():
    """The defining difference from GDS: a popular document of the same
    size outranks an unpopular one."""
    c = Cache(100, GDSFPolicy(ConstantCost()))
    ref(c, "popular", size=40)
    for _ in range(5):
        ref(c, "popular")     # f=6: H = 6/40
    ref(c, "once", size=40)   # f=1: H = 1/40
    ref(c, "new", size=40)    # once evicted, popular kept
    assert "popular" in c
    assert "once" not in c


def test_differs_from_gds_on_popularity():
    gds = Cache(100, GDSPolicy(ConstantCost()))
    gdsf = Cache(100, GDSFPolicy(ConstantCost()))
    workload = ([("popular", 50)] * 10
                + [("filler", 40), ("new", 50)])
    for url, size in workload:
        ref(gds, url, size=size)
        ref(gdsf, url, size=size)
    # GDS ignores popularity: popular (1/50) loses to filler (1/40).
    assert "popular" not in gds
    # GDSF: popular has H = 11/50 > 1/40.
    assert "popular" in gdsf


def test_small_frequent_beats_large_frequent():
    c = Cache(120, GDSFPolicy(ConstantCost()))
    for _ in range(3):
        ref(c, "small", size=10)
        ref(c, "large", size=100)
    ref(c, "new", size=60)    # H(small)=3/10 > H(large)=3/100
    assert "small" in c
    assert "large" not in c


def test_equals_gdstar_with_beta_one():
    """GDSF is GD* with β pinned at 1 — they must agree exactly."""
    import random
    from repro.core.beta_estimator import FixedBetaEstimator
    from repro.core.gdstar import GDStarPolicy

    rng = random.Random(8)
    gdsf = Cache(500, GDSFPolicy(ConstantCost()))
    gdstar = Cache(500, GDStarPolicy(
        ConstantCost(), beta_estimator=FixedBetaEstimator(1.0)))
    for _ in range(2000):
        url = f"u{rng.randint(0, 60)}"
        size = 10 + (hash(url) % 90)
        ref(gdsf, url, size=size)
        ref(gdstar, url, size=size)
    assert resident_urls(gdsf) == resident_urls(gdstar)
    assert gdsf.hits == gdstar.hits


def test_inflation_advances():
    policy = GDSFPolicy(ConstantCost())
    c = Cache(50, policy)
    ref(c, "a", size=30), ref(c, "b", size=30)
    assert policy.inflation == pytest.approx(1 / 30)
