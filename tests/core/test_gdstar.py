"""Behavioural tests for Greedy-Dual* (Jin & Bestavros)."""

import pytest

from repro.core.beta_estimator import FixedBetaEstimator, OnlineBetaEstimator
from repro.core.cache import Cache
from repro.core.cost import ConstantCost, PacketCost
from repro.core.gdstar import GDStarPolicy

from tests.core.helpers import ref, resident_urls


def fixed_gdstar(beta, cost=None):
    return GDStarPolicy(cost or ConstantCost(),
                        beta_estimator=FixedBetaEstimator(beta))


def test_name():
    assert GDStarPolicy(ConstantCost()).name == "gd*(1)"
    assert GDStarPolicy(PacketCost()).name == "gd*(p)"


def test_h_value_power_formula():
    """H = L + (f·c/s)^(1/β)."""
    policy = fixed_gdstar(0.5)
    c = Cache(1000, policy)
    ref(c, "a", size=10)        # utility = 1/10; exponent 2 -> 0.01
    assert policy.h_value(c.get("a")) == pytest.approx(0.01)
    ref(c, "a")                 # f=2: (2/10)^2 = 0.04
    assert policy.h_value(c.get("a")) == pytest.approx(0.04)


def test_small_beta_amplifies_utility_spread():
    """As β shrinks, tiny utilities get tinier: a rarely-used large
    document is discarded even more aggressively — the paper's
    multimedia observation."""
    for beta, expected_h in ((1.0, 1e-3), (0.5, 1e-6)):
        policy = fixed_gdstar(beta)
        c = Cache(10_000, policy)
        ref(c, "mm", size=1000)
        assert policy.h_value(c.get("mm")) == pytest.approx(expected_h)


def test_frequency_and_recency_both_matter():
    policy = fixed_gdstar(0.5)
    c = Cache(100, policy)
    for _ in range(3):
        ref(c, "popular", size=40)
    ref(c, "fresh", size=40)
    ref(c, "new", size=40)      # fresh (f=1) evicted, popular kept
    assert "popular" in c
    assert "fresh" not in c


def test_online_estimator_updates_beta():
    estimator = OnlineBetaEstimator(refresh_interval=200, min_samples=100)
    policy = GDStarPolicy(ConstantCost(), beta_estimator=estimator)
    c = Cache(10_000, policy)
    import random
    rng = random.Random(1)
    initial = policy.beta
    # Strongly correlated stream: immediate re-references dominate.
    for _ in range(3000):
        url = f"u{rng.randint(0, 20)}"
        ref(c, url, size=10)
        ref(c, url, size=10)
    assert estimator.observations > 0
    assert estimator.refreshes > 0
    assert policy.beta != initial or policy.beta == 1.0


def test_reuse_distance_observed_on_hits():
    estimator = OnlineBetaEstimator()
    policy = GDStarPolicy(ConstantCost(), beta_estimator=estimator)
    c = Cache(1000, policy)
    ref(c, "a", size=10)
    ref(c, "b", size=10)
    ref(c, "a", size=10)        # reuse distance 2 (two cache events)
    assert estimator.observations == 1


def test_huge_utility_does_not_overflow():
    policy = fixed_gdstar(0.05)     # exponent 20
    c = Cache(10**9, policy)
    ref(c, "tiny", size=1)
    for _ in range(50):
        ref(c, "tiny")              # f=51, utility 51, ^20 is huge
    value = policy.h_value(c.get("tiny"))
    assert value > 0
    assert value != float("inf") or True  # no exception is the real test


def test_beta_one_equals_gdsf_packet_cost():
    from repro.core.gdsf import GDSFPolicy
    import random
    rng = random.Random(3)
    gdsf = Cache(2000, GDSFPolicy(PacketCost()))
    gdstar = Cache(2000, fixed_gdstar(1.0, PacketCost()))
    for _ in range(1500):
        url = f"u{rng.randint(0, 40)}"
        ref(gdsf, url, size=10 + hash(url) % 500)
        ref(gdstar, url, size=10 + hash(url) % 500)
    assert resident_urls(gdsf) == resident_urls(gdstar)


def test_inflation_monotone():
    policy = fixed_gdstar(0.5)
    c = Cache(100, policy)
    import random
    rng = random.Random(6)
    last = 0.0
    for i in range(300):
        ref(c, f"u{rng.randint(0, 40)}", size=rng.choice((20, 30, 45)))
        assert policy.inflation >= last
        last = policy.inflation


def test_clear_resets_state():
    policy = fixed_gdstar(0.5)
    c = Cache(50, policy)
    ref(c, "a", size=30), ref(c, "b", size=30)
    c.flush()
    assert policy.inflation == 0.0
    assert len(policy) == 0
    ref(c, "x", size=10)
    assert "x" in c
