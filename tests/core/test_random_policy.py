"""Behavioural tests for the RAND baseline."""

import pytest

from repro.core.cache import Cache
from repro.core.random_policy import RandomPolicy

from tests.core.helpers import ref, resident_urls


def test_evicts_some_resident_entry():
    c = Cache(30, RandomPolicy(seed=1))
    ref(c, "a"), ref(c, "b"), ref(c, "c")
    ref(c, "d")
    assert len(c) == 3
    assert "d" in c
    c.check_invariants()


def test_deterministic_with_seed():
    def run(seed):
        c = Cache(30, RandomPolicy(seed=seed))
        for i in range(50):
            ref(c, f"u{i}")
        return resident_urls(c)

    assert run(7) == run(7)


def test_different_seeds_usually_differ():
    def run(seed):
        c = Cache(30, RandomPolicy(seed=seed))
        for i in range(50):
            ref(c, f"u{i}")
        return resident_urls(c)

    outcomes = {tuple(run(seed)) for seed in range(8)}
    assert len(outcomes) > 1


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        RandomPolicy(seed=0).pop_victim()


def test_remove_keeps_swap_indices_consistent():
    c = Cache(50, RandomPolicy(seed=3))
    for url in "abcde":
        ref(c, url)
    c.invalidate("b")
    c.invalidate("e")
    ref(c, "f"), ref(c, "g")
    c.check_invariants()
    # Force evictions through the swap-remove array.
    for i in range(20):
        ref(c, f"x{i}")
        c.check_invariants()


def test_eviction_roughly_uniform():
    """Every resident entry should be evictable; over many trials each
    of the three old entries gets evicted sometimes."""
    evicted = set()
    for seed in range(30):
        c = Cache(30, RandomPolicy(seed=seed))
        ref(c, "a"), ref(c, "b"), ref(c, "c")
        ref(c, "d")
        evicted.add(next(u for u in "abc" if u not in c))
    assert evicted == {"a", "b", "c"}
