"""Greedy-Dual valuation of zero-size documents.

A 0-byte response (HTTP 204s, empty bodies, tracker pixels after
header stripping) used to be valued inconsistently: the denominator
clamped the size to 1 while the cost model still saw the raw 0.  Under
a size-dependent cost model that made H(p) = c(0)/1 — e.g. exactly 0
under byte cost, so a zero-size document was always the next victim
even though the policy's own objective says c/s is the same for every
document.  The whole family now feeds the *same* clamped size to both
the cost model and the denominator.
"""

import pytest

from repro.core.cache import Cache
from repro.core.cost import ByteCost, ConstantCost, CostModel, PacketCost
from repro.core.gds import GDSPolicy
from repro.core.gdsf import GDSFPolicy
from repro.core.gdstar import GDStarPolicy
from repro.core.gdstar_typed import GDStarTypedPolicy
from repro.core.hyperbolic import HyperbolicPolicy
from repro.core.landlord import LandlordPolicy
from repro.simulation.simulator import simulate
from repro.types import DocumentType, Request, Trace

from tests.core.helpers import ref

GD_FAMILY = [GDSPolicy, GDSFPolicy, GDStarPolicy, GDStarTypedPolicy,
             LandlordPolicy, HyperbolicPolicy]


class RecordingCost(CostModel):
    """Constant cost that records every size it is asked to price."""

    name = "recording"
    tag = "r"

    def __init__(self):
        self.sizes = []

    def cost(self, size: int) -> float:
        self.sizes.append(size)
        return 1.0


@pytest.mark.parametrize("policy_class", GD_FAMILY)
def test_cost_model_sees_the_clamped_size(policy_class):
    """The valuation must never price the raw 0: the size the cost
    model sees is the size in the denominator."""
    cost = RecordingCost()
    cache = Cache(150, policy_class(cost))
    ref(cache, "empty", size=0)
    ref(cache, "a", size=100)
    ref(cache, "empty")
    ref(cache, "b", size=100)   # forces an eviction: sampling policies
    # (hyperbolic) price entries here rather than at admission
    assert cost.sizes, "valuation never consulted the cost model"
    assert 0 not in cost.sizes
    assert 1 in cost.sizes          # the clamped zero-size document


def test_gds_byte_cost_values_zero_size_like_any_other():
    """Under c(p) = s(p), H = c/s = 1 for *every* document; a 0-byte
    document must not degenerate to H = 0 (instant victim)."""
    policy = GDSPolicy(ByteCost())
    cache = Cache(1_000, policy)
    ref(cache, "empty", size=0)
    ref(cache, "normal", size=400)
    assert policy.h_value(cache.get("empty")) == \
        pytest.approx(policy.h_value(cache.get("normal")))


def test_gds_packet_cost_zero_size_consistent():
    """H(0-byte) = (2 + 1/mss)/1, i.e. the clamped size appears in
    both the packet count and the denominator."""
    policy = GDSPolicy(PacketCost())
    cache = Cache(1_000, policy)
    ref(cache, "empty", size=0)
    assert policy.h_value(cache.get("empty")) == \
        pytest.approx(2.0 + 1.0 / 536.0)


@pytest.mark.parametrize("policy_name", [
    "gds(1)", "gds(p)", "gdsf(1)", "gd*(1)", "gd*(p)", "gd*t(1)",
    "landlord(1)", "hyperbolic(1)"])
def test_simulation_with_zero_byte_request(policy_name):
    """End-to-end regression: a trace containing a 0-byte request runs
    through every Greedy-Dual variant with sane accounting."""
    requests = []
    for i in range(120):
        url = f"u{i % 7}"
        size = 0 if i % 7 == 3 else 600
        requests.append(Request(float(i), url, size, size,
                                DocumentType.HTML))
    trace = Trace(requests, name="zero-byte")
    result = simulate(trace, policy_name, 2_500, warmup_fraction=0.0)
    overall = result.metrics.overall
    assert overall.requests == len(trace)
    assert 0 <= overall.hits <= overall.requests
    # The zero-size documents are cacheable: with only 7 hot urls some
    # of their re-references must hit.
    assert overall.hits > 0


def test_zero_size_admission_does_not_consume_capacity():
    cache = Cache(100, GDSPolicy(ConstantCost()))
    ref(cache, "empty", size=0)
    assert cache.used_bytes == 0
    ref(cache, "full", size=100)
    assert "empty" in cache and "full" in cache
