"""Shared helpers for policy tests."""

from repro.core.cache import Cache
from repro.types import DocumentType


def make_cache(policy, capacity=100):
    return Cache(capacity, policy)


def ref(cache, url, size=None, doc_type=DocumentType.HTML):
    """Shorthand reference call.

    When ``size`` is omitted and the document is resident, its cached
    size is reused (a plain hit); otherwise 10 bytes.
    """
    if size is None:
        entry = cache.get(url)
        size = entry.size if entry is not None else 10
    return cache.reference(url, size, doc_type)


def resident_urls(cache):
    return sorted(entry.url for entry in cache.entries())
