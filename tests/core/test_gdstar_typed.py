"""Tests for GD* with per-type β estimation."""

import pytest

from repro.core.beta_estimator import OnlineBetaEstimator
from repro.core.cache import Cache
from repro.core.cost import ConstantCost, PacketCost
from repro.core.gdstar import GDStarPolicy
from repro.core.gdstar_typed import GDStarTypedPolicy
from repro.types import DOCUMENT_TYPES, DocumentType

from tests.core.helpers import ref, resident_urls


def test_name():
    assert GDStarTypedPolicy(ConstantCost()).name == "gd*t(1)"
    assert GDStarTypedPolicy(PacketCost()).name == "gd*t(p)"


def test_one_estimator_per_type():
    policy = GDStarTypedPolicy()
    assert set(policy.estimators) == set(DOCUMENT_TYPES)
    ids = {id(est) for est in policy.estimators.values()}
    assert len(ids) == len(DOCUMENT_TYPES)


def test_observations_routed_by_type():
    policy = GDStarTypedPolicy()
    cache = Cache(10_000, policy)
    ref(cache, "img", size=10, doc_type=DocumentType.IMAGE)
    ref(cache, "img", size=10, doc_type=DocumentType.IMAGE)
    ref(cache, "mm", size=10, doc_type=DocumentType.MULTIMEDIA)
    ref(cache, "mm", size=10, doc_type=DocumentType.MULTIMEDIA)
    ref(cache, "mm", size=10, doc_type=DocumentType.MULTIMEDIA)
    assert policy.estimators[DocumentType.IMAGE].observations == 1
    assert policy.estimators[DocumentType.MULTIMEDIA].observations == 2
    assert policy.estimators[DocumentType.HTML].observations == 0


def test_per_type_betas_can_diverge():
    """Feed strongly correlated multimedia and uncorrelated images; the
    two type estimators must separate."""
    import random
    rng = random.Random(3)
    factory = lambda: OnlineBetaEstimator(refresh_interval=500,
                                          min_samples=200, decay=1.0)
    policy = GDStarTypedPolicy(ConstantCost(),
                               estimator_factory=factory)
    cache = Cache(10 ** 9, policy)
    for step in range(8000):
        # Multimedia: immediate re-reference (distance ~1).
        url = f"mm{step % 10}"
        ref(cache, url, size=100, doc_type=DocumentType.MULTIMEDIA)
        ref(cache, url, size=100, doc_type=DocumentType.MULTIMEDIA)
        # Images: uniform over a large population (long distances).
        ref(cache, f"img{rng.randrange(2000)}", size=10,
            doc_type=DocumentType.IMAGE)
    mm_beta = policy.estimators[DocumentType.MULTIMEDIA].force_refresh()
    img_beta = policy.estimators[DocumentType.IMAGE].force_refresh()
    assert mm_beta >= img_beta


def test_matches_aggregate_gdstar_on_single_type_workload():
    """With only one document type in play, per-type and aggregate GD*
    see identical reuse streams and must evict identically."""
    import random
    rng = random.Random(5)
    typed = Cache(2000, GDStarTypedPolicy(ConstantCost()))
    aggregate = Cache(2000, GDStarPolicy(ConstantCost()))
    for _ in range(3000):
        url = f"u{rng.randint(0, 50)}"
        size = 10 + hash(url) % 90
        ref(typed, url, size=size, doc_type=DocumentType.HTML)
        ref(aggregate, url, size=size, doc_type=DocumentType.HTML)
    assert resident_urls(typed) == resident_urls(aggregate)
    assert typed.hits == aggregate.hits


def test_clear_resets():
    policy = GDStarTypedPolicy()
    cache = Cache(100, policy)
    ref(cache, "a", size=30, doc_type=DocumentType.IMAGE)
    ref(cache, "b", size=30, doc_type=DocumentType.HTML)
    cache.flush()
    assert len(policy) == 0
    assert policy.inflation == 0.0
    ref(cache, "c", size=30)
    assert "c" in cache


def test_registry_constructs_typed_variants():
    from repro.core.registry import make_policy
    assert isinstance(make_policy("gd*t(1)"), GDStarTypedPolicy)
    assert make_policy("gdstar-typed").name == "gd*t(1)"
    assert make_policy("gd*typed(p)").name == "gd*t(p)"


def test_fixed_beta_rejected_for_typed():
    from repro.core.registry import make_policy
    from repro.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        make_policy("gd*t(1)", fixed_beta=0.5)
