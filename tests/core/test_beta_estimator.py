"""Tests for the online β estimator."""

import random

import pytest

from repro.core.beta_estimator import FixedBetaEstimator, OnlineBetaEstimator
from repro.errors import ConfigurationError
from repro.workload.temporal import PowerLawGapSampler


class TestValidation:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            OnlineBetaEstimator(min_beta=0.0)
        with pytest.raises(ConfigurationError):
            OnlineBetaEstimator(min_beta=0.9, max_beta=0.5)
        with pytest.raises(ConfigurationError):
            OnlineBetaEstimator(initial_beta=2.0, max_beta=1.0)
        with pytest.raises(ConfigurationError):
            OnlineBetaEstimator(refresh_interval=0)
        with pytest.raises(ConfigurationError):
            OnlineBetaEstimator(decay=1.5)

    def test_fixed_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            FixedBetaEstimator(0)


class TestOnline:
    def test_initial_beta_before_data(self):
        estimator = OnlineBetaEstimator(initial_beta=0.8)
        assert estimator.beta == 0.8
        estimator.observe(5)
        assert estimator.beta == 0.8   # not enough samples yet

    def test_recovers_generated_beta(self):
        """Feeding power-law(β) gaps recovers β within tolerance."""
        for true_beta in (0.3, 0.6, 0.9):
            estimator = OnlineBetaEstimator(
                refresh_interval=5000, min_samples=1000, decay=1.0)
            sampler = PowerLawGapSampler(true_beta, max_gap=10 ** 6,
                                         seed=17)
            for _ in range(30000):
                estimator.observe(sampler.sample())
            estimated = estimator.force_refresh()
            assert estimated == pytest.approx(true_beta, abs=0.15), \
                f"true={true_beta} estimated={estimated}"

    def test_ordering_preserved(self):
        """More correlated streams estimate higher β."""
        estimates = []
        for true_beta in (0.2, 0.5, 0.8):
            estimator = OnlineBetaEstimator(refresh_interval=4000,
                                            min_samples=500)
            sampler = PowerLawGapSampler(true_beta, max_gap=10 ** 5,
                                         seed=23)
            for _ in range(20000):
                estimator.observe(sampler.sample())
            estimates.append(estimator.force_refresh())
        assert estimates == sorted(estimates)

    def test_clamped_to_max(self):
        estimator = OnlineBetaEstimator(refresh_interval=500,
                                        min_samples=100)
        # Every distance is 1: the slope fit would say "infinitely
        # correlated"; the estimate must clamp at max_beta.
        for _ in range(2000):
            estimator.observe(1)
        # All mass in one bin -> too few points to fit; stays initial.
        assert estimator.beta <= estimator.max_beta

    def test_clamped_to_min(self):
        estimator = OnlineBetaEstimator(refresh_interval=2000,
                                        min_samples=500, min_beta=0.1)
        rng = random.Random(2)
        # Rising density (more mass at large distances): raw slope > 0,
        # β estimate would be negative; must clamp at min.
        for _ in range(10000):
            estimator.observe(rng.uniform(1, 10 ** 4) ** 1.5)
        estimator.force_refresh()
        assert estimator.beta >= 0.1

    def test_distances_below_one_clamped(self):
        estimator = OnlineBetaEstimator()
        estimator.observe(0)      # must not raise
        estimator.observe(-3)
        assert estimator.observations == 2

    def test_refresh_cadence(self):
        estimator = OnlineBetaEstimator(refresh_interval=100,
                                        min_samples=50, decay=1.0)
        sampler = PowerLawGapSampler(0.5, max_gap=10 ** 4, seed=5)
        for _ in range(1000):
            estimator.observe(sampler.sample())
        assert estimator.refreshes >= 5

    def test_decay_keeps_estimator_adaptive(self):
        """After a regime change the estimate must move toward the new β."""
        estimator = OnlineBetaEstimator(refresh_interval=2000,
                                        min_samples=500, decay=0.3)
        low = PowerLawGapSampler(0.2, max_gap=10 ** 5, seed=31)
        high = PowerLawGapSampler(0.9, max_gap=10 ** 5, seed=37)
        for _ in range(20000):
            estimator.observe(low.sample())
        before = estimator.force_refresh()
        for _ in range(40000):
            estimator.observe(high.sample())
        after = estimator.force_refresh()
        assert after > before


class TestFixed:
    def test_constant(self):
        estimator = FixedBetaEstimator(0.4)
        for d in (1, 10, 100):
            estimator.observe(d)
        assert estimator.beta == 0.4
        assert estimator.force_refresh() == 0.4
        assert estimator.observations == 3
