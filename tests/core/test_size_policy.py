"""Behavioural tests for the SIZE policy."""

from repro.core.cache import Cache
from repro.core.size_policy import SizePolicy

from tests.core.helpers import ref, resident_urls


def test_evicts_largest_first():
    c = Cache(100, SizePolicy())
    ref(c, "small", size=10)
    ref(c, "medium", size=30)
    ref(c, "large", size=50)
    ref(c, "new", size=20)   # needs space: large goes
    assert resident_urls(c) == ["medium", "new", "small"]


def test_size_ties_break_fifo():
    c = Cache(30, SizePolicy())
    ref(c, "a", size=10), ref(c, "b", size=10), ref(c, "c", size=10)
    ref(c, "d", size=10)
    assert resident_urls(c) == ["b", "c", "d"]


def test_hits_do_not_change_order():
    c = Cache(100, SizePolicy())
    ref(c, "large", size=60)
    for _ in range(10):
        ref(c, "large")       # popularity is irrelevant to SIZE
    ref(c, "small", size=30)
    ref(c, "new", size=40)    # large still evicted first
    assert "large" not in c
    assert "small" in c


def test_maximizes_document_count():
    """SIZE keeps many small documents where LRU would keep fewer."""
    from repro.core.lru import LRUPolicy
    size_cache = Cache(100, SizePolicy())
    lru_cache = Cache(100, LRUPolicy())
    workload = [("big1", 80), ("s1", 10), ("s2", 10), ("s3", 10),
                ("s4", 10), ("s5", 10)]
    for url, size in workload:
        ref(size_cache, url, size=size)
        ref(lru_cache, url, size=size)
    assert len(size_cache) >= len(lru_cache)
    assert "big1" not in size_cache
