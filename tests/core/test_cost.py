"""Tests for the cost models (paper Section 3)."""

import pytest

from repro.core.cost import (
    ByteCost,
    ConstantCost,
    PacketCost,
    make_cost_model,
)
from repro.errors import ConfigurationError


class TestConstantCost:
    def test_default_is_one(self):
        model = ConstantCost()
        assert model.cost(0) == 1.0
        assert model.cost(10 ** 9) == 1.0

    def test_custom_value(self):
        assert ConstantCost(2.5).cost(123) == 2.5

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            ConstantCost(0)

    def test_tag(self):
        assert ConstantCost().tag == "1"


class TestPacketCost:
    def test_paper_formula(self):
        """c(p) = 2 + s(p)/536."""
        model = PacketCost()
        assert model.cost(0) == 2.0
        assert model.cost(536) == 3.0
        assert model.cost(5360) == pytest.approx(12.0)

    def test_fractional_by_default(self):
        assert PacketCost().cost(268) == pytest.approx(2.5)

    def test_ceil_mode(self):
        model = PacketCost(ceil_packets=True)
        assert model.cost(1) == 3.0
        assert model.cost(536) == 3.0
        assert model.cost(537) == 4.0

    def test_custom_mss(self):
        assert PacketCost(mss=1000).cost(2000) == 4.0

    def test_rejects_bad_mss(self):
        with pytest.raises(ConfigurationError):
            PacketCost(mss=0)

    def test_monotone_in_size(self):
        model = PacketCost()
        costs = [model.cost(s) for s in (0, 100, 1000, 10_000, 1_000_000)]
        assert costs == sorted(costs)

    def test_tag(self):
        assert PacketCost().tag == "P"


class TestByteCost:
    def test_identity(self):
        assert ByteCost().cost(1234) == 1234.0


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("constant", ConstantCost), ("const", ConstantCost),
        ("1", ConstantCost),
        ("packet", PacketCost), ("p", PacketCost), ("P", PacketCost),
        ("byte", ByteCost), ("b", ByteCost),
    ])
    def test_names(self, name, cls):
        assert isinstance(make_cost_model(name), cls)

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            make_cost_model("carbon-footprint")


class TestLatencyCost:
    def test_formula(self):
        from repro.core.cost import LatencyCost
        model = LatencyCost(rtt_seconds=0.1,
                            bandwidth_bytes_per_second=1000.0)
        assert model.cost(0) == pytest.approx(0.1)
        assert model.cost(500) == pytest.approx(0.6)

    def test_validation(self):
        from repro.core.cost import LatencyCost
        with pytest.raises(ConfigurationError):
            LatencyCost(rtt_seconds=0)
        with pytest.raises(ConfigurationError):
            LatencyCost(bandwidth_bytes_per_second=0)

    def test_factory(self):
        from repro.core.cost import LatencyCost
        assert isinstance(make_cost_model("latency"), LatencyCost)
        assert isinstance(make_cost_model("L"), LatencyCost)

    def test_usable_in_gds(self):
        """GDS(latency) keeps small-RTT-dominated documents longer."""
        from repro.core.cache import Cache
        from repro.core.cost import LatencyCost
        from repro.core.gds import GDSPolicy
        cache = Cache(10_000, GDSPolicy(LatencyCost()))
        assert cache.reference("a", 500).value == "miss"
        assert cache.reference("a", 500).value == "hit"
