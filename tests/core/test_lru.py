"""Behavioural tests for LRU."""

import pytest

from repro.core.cache import Cache
from repro.core.lru import LRUPolicy

from tests.core.helpers import ref, resident_urls


def cache(capacity=100):
    return Cache(capacity, LRUPolicy())


def test_evicts_least_recently_used():
    c = cache(30)
    ref(c, "a"), ref(c, "b"), ref(c, "c")
    ref(c, "d")  # a is LRU
    assert resident_urls(c) == ["b", "c", "d"]


def test_hit_refreshes_recency():
    c = cache(30)
    ref(c, "a"), ref(c, "b"), ref(c, "c")
    ref(c, "a")          # touch a
    ref(c, "d")          # now b is LRU
    assert resident_urls(c) == ["a", "c", "d"]


def test_eviction_order_is_exactly_recency_order():
    c = cache(50)
    for url in "abcde":
        ref(c, url)
    ref(c, "b")
    ref(c, "a")
    # Access order oldest->newest is now c, d, e, b, a.
    victims = []
    while len(c):
        victims.append(c.policy.pop_victim().url)
        c._entries.pop(victims[-1])
        c.used_bytes -= 10
    assert victims == ["c", "d", "e", "b", "a"]


def test_ignores_size_in_decision():
    """LRU evicts by recency even when a smaller victim would suffice."""
    c = cache(100)
    ref(c, "big-old", size=60)
    ref(c, "small-new", size=20)
    ref(c, "incoming", size=50)  # needs 30 free: evicts big-old (oldest)
    assert resident_urls(c) == ["incoming", "small-new"]


def test_ignores_frequency():
    c = cache(30)
    ref(c, "a")
    for _ in range(10):
        ref(c, "a")       # very popular
    ref(c, "b"), ref(c, "c")
    ref(c, "a")           # a most recent again
    ref(c, "d")           # b evicted despite a's popularity not mattering
    assert resident_urls(c) == ["a", "c", "d"]


def test_remove_then_continue():
    c = cache(30)
    ref(c, "a"), ref(c, "b"), ref(c, "c")
    c.invalidate("b")
    ref(c, "d")
    assert resident_urls(c) == ["a", "c", "d"]
    c.check_invariants()


def test_sequential_scan_worst_case():
    """A scan longer than the cache yields zero hits on repeat — for LRU."""
    c = cache(30)
    for _ in range(2):
        for url in "abcd":   # 4 docs, cache fits 3
            ref(c, url)
    assert c.hits == 0


def test_policy_len_tracks_cache():
    c = cache(30)
    ref(c, "a"), ref(c, "b")
    assert len(c.policy) == 2
    c.invalidate("a")
    assert len(c.policy) == 1


def test_lru_stack_property():
    """LRU is a stack algorithm: a bigger cache's contents are a superset.

    This is the structural reason LRU hit rate is monotone in cache
    size (no Belady anomaly).
    """
    small = cache(40)
    big = cache(80)
    workload = ["a", "b", "c", "a", "d", "e", "b", "f", "a", "c",
                "g", "d", "a", "b"]
    for url in workload:
        ref(small, url)
        ref(big, url)
        assert set(resident_urls(small)) <= set(resident_urls(big))


def test_hit_rate_monotone_in_capacity():
    import random
    rng = random.Random(5)
    workload = [f"u{rng.randint(0, 50)}" for _ in range(2000)]
    rates = []
    for capacity in (50, 100, 200, 400):
        c = cache(capacity)
        for url in workload:
            ref(c, url)
        rates.append(c.hits)
    assert rates == sorted(rates)
