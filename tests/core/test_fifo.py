"""Behavioural tests for FIFO."""

from repro.core.cache import Cache
from repro.core.fifo import FIFOPolicy

from tests.core.helpers import ref, resident_urls


def cache(capacity=30):
    return Cache(capacity, FIFOPolicy())


def test_evicts_in_admission_order():
    c = cache()
    ref(c, "a"), ref(c, "b"), ref(c, "c")
    ref(c, "d")
    assert resident_urls(c) == ["b", "c", "d"]


def test_hits_do_not_reorder():
    """The defining difference from LRU."""
    c = cache()
    ref(c, "a"), ref(c, "b"), ref(c, "c")
    ref(c, "a")   # hit; FIFO ignores it
    ref(c, "d")   # still evicts a
    assert resident_urls(c) == ["b", "c", "d"]


def test_differs_from_lru_on_touch_pattern():
    from repro.core.lru import LRUPolicy
    fifo, lru = cache(), Cache(30, LRUPolicy())
    workload = ["a", "b", "c", "a", "d"]
    for url in workload:
        ref(fifo, url)
        ref(lru, url)
    assert resident_urls(fifo) != resident_urls(lru)


def test_remove_mid_queue():
    c = cache()
    ref(c, "a"), ref(c, "b"), ref(c, "c")
    c.invalidate("b")
    ref(c, "d")            # fits in freed space: a, c, d resident
    ref(c, "e")            # evicts a (oldest admission)
    assert resident_urls(c) == ["c", "d", "e"]
    c.check_invariants()


def test_readmission_goes_to_back():
    c = cache()
    ref(c, "a"), ref(c, "b"), ref(c, "c")
    ref(c, "d")                 # evicts a
    ref(c, "a")                 # evicts b; a readmitted at back
    assert resident_urls(c) == ["a", "c", "d"]
