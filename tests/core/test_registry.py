"""Tests for policy construction by name."""

import pytest

from repro.core.beta_estimator import FixedBetaEstimator
from repro.core.gdstar import GDStarPolicy
from repro.core.registry import (
    PAPER_CONSTANT_COST,
    PAPER_PACKET_COST,
    POLICY_NAMES,
    canonical_name,
    make_policy,
)
from repro.errors import ConfigurationError


def test_all_canonical_names_constructible():
    for name in POLICY_NAMES:
        policy = make_policy(name)
        assert policy.name == name


@pytest.mark.parametrize("alias,canonical", [
    ("LRU", "lru"),
    ("lfuda", "lfu-da"),
    ("LFU_DA", "lfu-da"),
    ("random", "rand"),
    ("gds1", "gds(1)"),
    ("GDS(P)", "gds(p)"),
    ("gdstar-p", "gd*(p)"),
    ("gdstar(1)", "gd*(1)"),
    ("lru2", "lru-2"),
])
def test_aliases(alias, canonical):
    assert canonical_name(alias) == canonical


def test_unknown_name_raises():
    with pytest.raises(ConfigurationError):
        make_policy("clairvoyant-magic")


def test_paper_policy_sets():
    assert PAPER_CONSTANT_COST == ("lru", "lfu-da", "gds(1)", "gd*(1)")
    assert PAPER_PACKET_COST == ("lru", "lfu-da", "gds(p)", "gd*(p)")
    for name in PAPER_CONSTANT_COST + PAPER_PACKET_COST:
        assert make_policy(name) is not None


def test_fixed_beta_for_gdstar():
    policy = make_policy("gd*(1)", fixed_beta=0.4)
    assert isinstance(policy, GDStarPolicy)
    assert isinstance(policy.estimator, FixedBetaEstimator)
    assert policy.beta == 0.4


def test_fixed_beta_rejected_elsewhere():
    with pytest.raises(ConfigurationError):
        make_policy("lru", fixed_beta=0.5)
    with pytest.raises(ConfigurationError):
        make_policy("gds(1)", fixed_beta=0.5)


def test_seed_for_rand_only():
    policy = make_policy("rand", seed=9)
    assert policy.name == "rand"
    with pytest.raises(ConfigurationError):
        make_policy("lru", seed=9)


def test_cost_models_wired_correctly():
    from repro.core.cost import ConstantCost, PacketCost
    assert isinstance(make_policy("gds(1)").cost_model, ConstantCost)
    assert isinstance(make_policy("gds(p)").cost_model, PacketCost)
    assert isinstance(make_policy("gd*(p)").cost_model, PacketCost)
    assert isinstance(make_policy("gdsf(1)").cost_model, ConstantCost)


def test_instances_are_fresh():
    a = make_policy("lru")
    b = make_policy("lru")
    assert a is not b
