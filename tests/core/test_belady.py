"""Tests for the offline Belady-style bound."""

import math

import pytest

from repro.core.belady import NEVER, BeladyPolicy, compute_next_uses
from repro.core.cache import Cache
from repro.core.lru import LRUPolicy
from repro.errors import ConfigurationError
from repro.types import DocumentType, Request


def requests_from_urls(urls, size=10):
    return [Request(float(i), url, size, size, DocumentType.HTML)
            for i, url in enumerate(urls)]


class TestNextUses:
    def test_simple_sequence(self):
        reqs = requests_from_urls(["a", "b", "a", "c", "b"])
        next_uses = compute_next_uses(reqs)
        assert next_uses[0] == 2      # a used again at index 2
        assert next_uses[1] == 4      # b at index 4
        assert next_uses[2] is NEVER or math.isinf(next_uses[2])
        assert math.isinf(next_uses[3])
        assert math.isinf(next_uses[4])

    def test_empty(self):
        assert compute_next_uses([]) == []


class TestBeladyPolicy:
    def drive(self, urls, capacity, size=10):
        reqs = requests_from_urls(urls, size=size)
        policy = BeladyPolicy(compute_next_uses(reqs))
        cache = Cache(capacity, policy)
        hits = 0
        for request in reqs:
            outcome = cache.reference(request.url, request.size,
                                      request.doc_type)
            hits += outcome.value == "hit"
        return hits, cache

    def test_validates_empty(self):
        with pytest.raises(ConfigurationError):
            BeladyPolicy([])

    def test_requires_attachment(self):
        policy = BeladyPolicy([NEVER])
        from repro.core.policy import CacheEntry
        policy.cache = None
        with pytest.raises(ConfigurationError):
            policy.on_admit(CacheEntry("u", 1, DocumentType.OTHER))

    def test_textbook_example(self):
        """Classic MIN example: evict the page used farthest in future."""
        # Capacity 2 (of unit-size docs); sequence a b c a b.
        # On admitting c, MIN evicts whichever of a/b is used later: b.
        hits, cache = self.drive(["a", "b", "c", "a", "b"], capacity=20)
        assert hits == 1              # the 'a' at index 3 hits

    def test_never_used_again_evicted_first(self):
        hits, cache = self.drive(
            ["dead", "a", "b", "new", "a", "b"], capacity=30)
        assert "dead" not in cache
        assert hits == 2

    def test_beats_or_matches_lru(self):
        """Clairvoyance can't lose to LRU on hit count (unit sizes)."""
        import random
        rng = random.Random(12)
        urls = [f"u{rng.randint(0, 30)}" for _ in range(2000)]
        belady_hits, _ = self.drive(urls, capacity=100)
        lru = Cache(100, LRUPolicy())
        lru_hits = 0
        for url in urls:
            lru_hits += lru.reference(url, 10,
                                      DocumentType.HTML).value == "hit"
        assert belady_hits >= lru_hits

    def test_clock_beyond_trace_raises(self):
        reqs = requests_from_urls(["a"])
        policy = BeladyPolicy(compute_next_uses(reqs))
        cache = Cache(100, policy)
        cache.reference("a", 10, DocumentType.HTML)
        with pytest.raises(ConfigurationError):
            cache.reference("b", 10, DocumentType.HTML)  # off the end

    def test_size_tiebreak_among_never_used(self):
        reqs = [
            Request(0.0, "big-dead", 50, 50, DocumentType.HTML),
            Request(1.0, "small-dead", 10, 10, DocumentType.HTML),
            Request(2.0, "new", 50, 50, DocumentType.HTML),
        ]
        policy = BeladyPolicy(compute_next_uses(reqs))
        cache = Cache(100, policy)
        for request in reqs:
            cache.reference(request.url, request.size, request.doc_type)
        # Evicting big-dead alone frees enough; small-dead survives.
        assert "small-dead" in cache
        assert "big-dead" not in cache
