"""Property-based tests: invariants every policy must uphold.

A random request stream is driven through a cache under every policy;
after every reference the cache's byte accounting, capacity bound, and
policy/residency agreement are asserted.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.belady import BeladyPolicy, compute_next_uses
from repro.core.cache import Cache
from repro.core.registry import POLICY_NAMES, make_policy
from repro.types import DocumentType, Request

DOC_TYPES = list(DocumentType)

request_streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=15),    # url id
        st.integers(min_value=1, max_value=120),   # size
        st.integers(min_value=0, max_value=4),     # doc type index
    ),
    min_size=1, max_size=150,
)

capacities = st.integers(min_value=50, max_value=400)


def drive(policy, stream, capacity):
    cache = Cache(capacity, policy)
    sizes = {}
    for url_id, size, type_index in stream:
        url = f"u{url_id}"
        # Keep a url's size stable so this exercises the normal path;
        # staleness has its own tests.
        size = sizes.setdefault(url, size)
        cache.reference(url, size, DOC_TYPES[type_index])
        cache.check_invariants()
        assert cache.used_bytes <= capacity
    return cache


@pytest.mark.parametrize("policy_name", POLICY_NAMES)
@settings(max_examples=25, deadline=None)
@given(stream=request_streams, capacity=capacities)
def test_invariants_hold_for_every_policy(policy_name, stream, capacity):
    cache = drive(make_policy(policy_name), stream, capacity)
    # Hits + misses account for every reference.
    assert cache.hits + cache.misses == len(stream)


@settings(max_examples=25, deadline=None)
@given(stream=request_streams, capacity=capacities)
def test_invariants_hold_for_belady(stream, capacity):
    sizes = {}
    requests = []
    for url_id, size, type_index in stream:
        url = f"u{url_id}"
        size = sizes.setdefault(url, size)
        requests.append(Request(0.0, url, size, size,
                                DOC_TYPES[type_index]))
    policy = BeladyPolicy(compute_next_uses(requests))
    cache = Cache(capacity, policy)
    for request in requests:
        cache.reference(request.url, request.size, request.doc_type)
        cache.check_invariants()


@settings(max_examples=20, deadline=None)
@given(stream=request_streams, capacity=capacities)
def test_staleness_invariants(stream, capacity):
    """Sizes drift per reference: invalidation paths keep accounting."""
    for policy_name in ("lru", "lfu-da", "gds(1)", "gd*(1)"):
        cache = Cache(capacity, make_policy(policy_name))
        for url_id, size, type_index in stream:
            cache.reference(f"u{url_id}", size, DOC_TYPES[type_index])
            cache.check_invariants()


@settings(max_examples=20, deadline=None)
@given(stream=request_streams, capacity=capacities,
       invalidate_every=st.integers(min_value=1, max_value=7))
def test_invalidation_interleaved(stream, capacity, invalidate_every):
    for policy_name in ("lru", "fifo", "lfu", "size", "gdsf(1)", "rand"):
        cache = Cache(capacity, make_policy(policy_name))
        sizes = {}
        for index, (url_id, size, type_index) in enumerate(stream):
            url = f"u{url_id}"
            size = sizes.setdefault(url, size)
            cache.reference(url, size, DOC_TYPES[type_index])
            if index % invalidate_every == 0:
                cache.invalidate(url)
            cache.check_invariants()


@pytest.mark.parametrize("policy_name", POLICY_NAMES)
def test_deterministic_replay(policy_name):
    """Two identical runs end in identical cache states."""
    import random
    rng = random.Random(99)
    stream = [(rng.randint(0, 30), rng.randint(5, 80), rng.randint(0, 4))
              for _ in range(500)]

    def run():
        cache = Cache(300, make_policy(policy_name))
        sizes = {}
        for url_id, size, type_index in stream:
            url = f"u{url_id}"
            size = sizes.setdefault(url, size)
            cache.reference(url, size, DOC_TYPES[type_index])
        return sorted(e.url for e in cache.entries()), cache.hits

    assert run() == run()
