"""Behavioural tests for the extension policies: LRU-Threshold,
Landlord, Hyperbolic, and SLRU."""

import random

import pytest

from repro.core.cache import Cache
from repro.core.cost import ConstantCost, PacketCost
from repro.core.gds import GDSPolicy
from repro.core.hyperbolic import HyperbolicPolicy
from repro.core.landlord import LandlordPolicy
from repro.core.lru import LRUPolicy
from repro.core.lru_threshold import LRUThresholdPolicy
from repro.core.policy import AccessOutcome
from repro.core.slru import SLRUPolicy
from repro.errors import ConfigurationError

from tests.core.helpers import ref, resident_urls


class TestLRUThreshold:
    def test_validates(self):
        with pytest.raises(ConfigurationError):
            LRUThresholdPolicy(0)

    def test_oversized_documents_bypassed(self):
        cache = Cache(1000, LRUThresholdPolicy(threshold_bytes=100))
        outcome = cache.reference("big", 200)
        assert outcome is AccessOutcome.MISS_TOO_BIG
        assert "big" not in cache
        assert cache.bypasses == 1

    def test_small_documents_behave_like_lru(self):
        threshold = Cache(30, LRUThresholdPolicy(threshold_bytes=10_000))
        lru = Cache(30, LRUPolicy())
        workload = ["a", "b", "c", "a", "d"]
        for url in workload:
            ref(threshold, url)
            ref(lru, url)
        assert resident_urls(threshold) == resident_urls(lru)

    def test_threshold_protects_small_docs_from_large(self):
        cache = Cache(100, LRUThresholdPolicy(threshold_bytes=50))
        ref(cache, "s1", size=20)
        ref(cache, "s2", size=20)
        ref(cache, "big", size=90)   # would evict both under plain LRU
        assert resident_urls(cache) == ["s1", "s2"]

    def test_modified_document_rechecked(self):
        cache = Cache(1000, LRUThresholdPolicy(threshold_bytes=100))
        cache.reference("a", 50)
        outcome = cache.reference("a", 200)   # modified and now too big
        assert outcome is AccessOutcome.MISS_TOO_BIG
        assert "a" not in cache


class TestLandlord:
    def test_validates_refresh(self):
        with pytest.raises(ConfigurationError):
            LandlordPolicy(refresh=1.5)

    def test_name(self):
        assert LandlordPolicy(ConstantCost()).name == "landlord(1)"
        assert LandlordPolicy(PacketCost()).name == "landlord(p)"

    def test_full_refresh_matches_gds_exactly(self):
        """Landlord with refresh=1 and GDS are the same algorithm."""
        rng = random.Random(4)
        landlord = Cache(500, LandlordPolicy(ConstantCost(), refresh=1.0))
        gds = Cache(500, GDSPolicy(ConstantCost()))
        for _ in range(3000):
            url = f"u{rng.randint(0, 60)}"
            size = 10 + hash(url) % 90
            ref(landlord, url, size=size)
            ref(gds, url, size=size)
        assert resident_urls(landlord) == resident_urls(gds)
        assert landlord.hits == gds.hits

    def test_rent_level_monotone(self):
        policy = LandlordPolicy(ConstantCost())
        cache = Cache(100, policy)
        rng = random.Random(5)
        last = 0.0
        for _ in range(300):
            ref(cache, f"u{rng.randint(0, 30)}", size=rng.choice((20, 45)))
            assert policy.rent_level >= last
            last = policy.rent_level

    def test_credit_diagnostics(self):
        policy = LandlordPolicy(ConstantCost())
        cache = Cache(1000, policy)
        ref(cache, "a", size=10)
        credit = policy.credit_of(cache.get("a"))
        assert credit == pytest.approx(1.0)   # c(p) = 1 at admission

    def test_partial_refresh_weakens_hits(self):
        """refresh=0 makes hits worthless: behaves like cost-aware FIFO
        with respect to reuse, so a touched document still expires."""
        policy = LandlordPolicy(ConstantCost(), refresh=0.0)
        cache = Cache(100, policy)
        ref(cache, "touched", size=50)
        for _ in range(5):
            ref(cache, "touched")
        ref(cache, "other", size=50)
        ref(cache, "new", size=50)   # someone must go
        # With no refresh, 'touched' has the oldest expiry: evicted
        # despite its six references.
        assert "touched" not in cache

    def test_clear(self):
        policy = LandlordPolicy(ConstantCost())
        cache = Cache(50, policy)
        ref(cache, "a", size=30), ref(cache, "b", size=30)
        cache.flush()
        assert policy.rent_level == 0.0
        assert len(policy) == 0


class TestHyperbolic:
    def test_validates(self):
        with pytest.raises(ConfigurationError):
            HyperbolicPolicy(sample_size=0)

    def test_name(self):
        assert HyperbolicPolicy(ConstantCost()).name == "hyperbolic(1)"

    def test_high_rate_documents_survive(self):
        """Priority is a request *rate* (f/age): a document referenced
        on every tick outlives equally-old one-touch documents."""
        cache = Cache(100, HyperbolicPolicy(ConstantCost(), seed=1))
        ref(cache, "cold1", size=30)
        ref(cache, "cold2", size=30)
        ref(cache, "hot", size=40)
        for _ in range(30):
            ref(cache, "hot")       # rate ~1; colds' rates decay ~1/age
        ref(cache, "new", size=30)
        assert "hot" in cache
        assert "cold1" not in cache or "cold2" not in cache

    def test_small_sample_still_evicts(self):
        cache = Cache(30, HyperbolicPolicy(sample_size=1, seed=2))
        for url in "abcd":
            ref(cache, url)
        assert len(cache) == 3
        cache.check_invariants()

    def test_deterministic_with_seed(self):
        def run(seed):
            cache = Cache(50, HyperbolicPolicy(seed=seed))
            rng = random.Random(11)
            for _ in range(500):
                ref(cache, f"u{rng.randint(0, 30)}")
            return resident_urls(cache), cache.hits

        assert run(3) == run(3)

    def test_age_decays_priority(self):
        """An old one-hit document loses to a young one-hit document."""
        policy = HyperbolicPolicy(ConstantCost(), sample_size=64, seed=0)
        cache = Cache(30, policy)
        ref(cache, "old")
        for _ in range(20):            # age 'old' via clock ticks
            ref(cache, "old2")
        ref(cache, "young")
        entry_old = cache.get("old")
        entry_young = cache.get("young")
        assert policy._priority(entry_old) < policy._priority(entry_young)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            HyperbolicPolicy().pop_victim()


class TestSLRU:
    def test_validates(self):
        with pytest.raises(ConfigurationError):
            SLRUPolicy(protected_fraction=0.0)
        with pytest.raises(ConfigurationError):
            SLRUPolicy(protected_fraction=1.0)

    def test_scan_resistance(self):
        """A long scan of one-touch documents cannot displace the
        twice-referenced working set."""
        cache = Cache(40, SLRUPolicy())
        for _ in range(2):
            ref(cache, "w1"), ref(cache, "w2")
        for i in range(20):
            ref(cache, f"scan{i}")
        assert "w1" in cache and "w2" in cache

    def test_lru_fallback_when_probation_empty(self):
        cache = Cache(30, SLRUPolicy(protected_fraction=0.9))
        # Promote everything.
        for url in "abc":
            ref(cache, url)
            ref(cache, url)
        # All three in protected; probation empty. New admission must
        # still find a victim.
        ref(cache, "d")
        assert len(cache) == 3
        cache.check_invariants()

    def test_demotion_bounds_protected_segment(self):
        policy = SLRUPolicy(protected_fraction=0.5)
        cache = Cache(100, policy)
        for url in "abcdefghij":
            ref(cache, url)
            ref(cache, url)     # promote each in turn
        assert policy._protected_bytes <= \
            policy._protected_limit_bytes()
        cache.check_invariants()

    def test_unattached_promotion_raises(self):
        from repro.core.policy import CacheEntry
        from repro.types import DocumentType
        policy = SLRUPolicy()
        entry = CacheEntry("u", 10, DocumentType.OTHER)
        policy.on_admit(entry)
        with pytest.raises(ConfigurationError):
            policy.on_hit(entry)

    def test_remove_from_both_segments(self):
        cache = Cache(50, SLRUPolicy())
        ref(cache, "prob")
        ref(cache, "prot"), ref(cache, "prot")
        assert cache.invalidate("prob")
        assert cache.invalidate("prot")
        cache.check_invariants()
        assert len(cache) == 0

    def test_beats_lru_on_scan_workload(self):
        slru = Cache(50, SLRUPolicy())
        lru = Cache(50, LRUPolicy())
        rng = random.Random(8)
        hot = [f"hot{i}" for i in range(3)]
        workload = []
        for i in range(2000):
            workload.append(rng.choice(hot) if rng.random() < 0.5
                            else f"scan{i}")
        for url in workload:
            ref(slru, url)
            ref(lru, url)
        assert slru.hits >= lru.hits
