"""Tests for second-hit admission control."""

import pytest

from repro.core.admission import SecondHitAdmission, SeenOnceTable
from repro.core.cache import Cache
from repro.core.lru import LRUPolicy
from repro.core.policy import AccessOutcome
from repro.errors import ConfigurationError

from tests.core.helpers import ref, resident_urls


class TestSeenOnceTable:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SeenOnceTable(0)

    def test_membership(self):
        table = SeenOnceTable(10)
        assert "u" not in table
        table.touch("u")
        assert "u" in table

    def test_capacity_evicts_lru(self):
        table = SeenOnceTable(2)
        table.touch("a")
        table.touch("b")
        table.touch("c")           # evicts a
        assert "a" not in table
        assert "b" in table and "c" in table

    def test_touch_refreshes(self):
        table = SeenOnceTable(2)
        table.touch("a")
        table.touch("b")
        table.touch("a")           # a now MRU
        table.touch("c")           # evicts b
        assert "a" in table
        assert "b" not in table

    def test_discard(self):
        table = SeenOnceTable(4)
        table.touch("a")
        table.discard("a")
        assert "a" not in table
        table.discard("ghost")     # no-op


class TestSecondHitAdmission:
    def cache(self, capacity=100, window=100):
        return Cache(capacity,
                     SecondHitAdmission(LRUPolicy(),
                                        window_urls=window))

    def test_first_request_bypassed(self):
        cache = self.cache()
        outcome = ref(cache, "a")
        assert outcome is AccessOutcome.MISS_TOO_BIG  # bypass path
        assert "a" not in cache
        assert cache.bypasses == 1

    def test_second_request_admitted(self):
        cache = self.cache()
        ref(cache, "a")
        outcome = ref(cache, "a")
        assert outcome is AccessOutcome.MISS  # now admitted
        assert "a" in cache

    def test_third_request_hits(self):
        cache = self.cache()
        ref(cache, "a"), ref(cache, "a")
        assert ref(cache, "a") is AccessOutcome.HIT

    def test_one_hit_wonders_never_pollute(self):
        cache = self.cache(capacity=30)
        ref(cache, "hot"), ref(cache, "hot")          # resident
        for index in range(50):
            ref(cache, f"wonder{index}")              # all bypassed
        assert resident_urls(cache) == ["hot"]
        assert cache.get("hot") is not None
        cache.check_invariants()

    def test_window_bounds_memory(self):
        cache = self.cache(window=3)
        ref(cache, "a")                 # seen: [a]
        ref(cache, "b"), ref(cache, "c"), ref(cache, "d")  # a evicted
        outcome = ref(cache, "a")       # forgotten: bypassed again
        assert outcome is AccessOutcome.MISS_TOO_BIG
        assert "a" not in cache

    def test_evicted_document_readmits_immediately(self):
        cache = self.cache(capacity=30)
        for url in ("a", "b", "c", "d"):
            ref(cache, url), ref(cache, url)   # all admitted
        # d's admission evicted a (LRU); a has proven reuse, so its
        # very next miss is admitted without a second probe.
        assert "a" not in cache
        assert ref(cache, "a") is AccessOutcome.MISS
        assert "a" in cache

    def test_name_and_forwarding(self):
        policy = SecondHitAdmission(LRUPolicy())
        assert policy.name == "2hit+lru"
        cache = Cache(100, policy)
        ref(cache, "x"), ref(cache, "x")
        cache.invalidate("x")
        cache.flush()
        cache.check_invariants()

    def test_improves_hit_rate_on_wonder_heavy_mix(self):
        """With many one-hit wonders and a small cache, admission
        control beats plain LRU."""
        import random
        rng = random.Random(4)
        plain = Cache(200, LRUPolicy())
        filtered = Cache(200, SecondHitAdmission(LRUPolicy()))
        hot = [f"hot{i}" for i in range(5)]
        for step in range(4000):
            url = (rng.choice(hot) if rng.random() < 0.4
                   else f"wonder{step}")
            size = 40
            plain.reference(url, size)
            filtered.reference(url, size)
        assert filtered.hits > plain.hits

    def test_composes_with_size_threshold(self):
        from repro.core.lru_threshold import LRUThresholdPolicy
        policy = SecondHitAdmission(
            LRUThresholdPolicy(threshold_bytes=50))
        cache = Cache(1000, policy)
        ref(cache, "big", size=100)
        outcome = ref(cache, "big", size=100)  # second hit, but too big
        assert outcome is AccessOutcome.MISS_TOO_BIG
        assert "big" not in cache
