"""Behavioural tests for Greedy-Dual-Size (Cao & Irani)."""

import pytest

from repro.core.cache import Cache
from repro.core.cost import ConstantCost, PacketCost
from repro.core.gds import GDSPolicy

from tests.core.helpers import ref, resident_urls


def test_name_includes_cost_tag():
    assert GDSPolicy(ConstantCost()).name == "gds(1)"
    assert GDSPolicy(PacketCost()).name == "gds(p)"


def test_constant_cost_prefers_small_documents():
    """Under c=1, H = 1/s: the largest document has the lowest value."""
    c = Cache(100, GDSPolicy(ConstantCost()))
    ref(c, "small", size=10)
    ref(c, "large", size=80)
    ref(c, "new", size=50)    # must evict: large has smallest 1/s
    assert "large" not in c
    assert "small" in c and "new" in c


def test_h_value_formula():
    policy = GDSPolicy(ConstantCost())
    c = Cache(1000, policy)
    ref(c, "a", size=10)
    assert policy.h_value(c.get("a")) == pytest.approx(0.1)


def test_inflation_rises_to_evicted_h():
    policy = GDSPolicy(ConstantCost())
    c = Cache(100, policy)
    ref(c, "a", size=50)      # H = 1/50 = 0.02
    ref(c, "b", size=40)      # H = 0.025
    ref(c, "c", size=40)      # evicts a: L := 0.02
    assert policy.inflation == pytest.approx(0.02)
    # New admissions start above the inflation floor.
    assert policy.h_value(c.get("c")) == pytest.approx(0.02 + 1 / 40)


def test_aging_lets_new_small_docs_beat_stale_small_docs():
    """Inflation implements the 'subtract H_min' aging: documents that
    were valuable once decay relative to fresh admissions."""
    policy = GDSPolicy(ConstantCost())
    c = Cache(100, policy)
    ref(c, "stale", size=10)            # H = 0.1, never touched again
    # Cycle larger documents to drive many evictions and pump L up.
    for i in range(30):
        ref(c, f"filler{i}", size=45)
    assert policy.inflation > 0.1
    assert "stale" not in c


def test_hit_restores_value():
    policy = GDSPolicy(ConstantCost())
    c = Cache(100, policy)
    ref(c, "a", size=50)
    ref(c, "b", size=25)
    ref(c, "a")               # refresh a at current (zero) inflation
    ref(c, "c", size=50)      # a (1/50) vs b (1/25): a evicted anyway
    assert "a" not in c
    # But refresh after inflation protects:
    policy2 = GDSPolicy(ConstantCost())
    c2 = Cache(100, policy2)
    ref(c2, "keep", size=50)
    for i in range(10):
        ref(c2, f"f{i}", size=45)
        ref(c2, "keep")       # keep refreshing at the rising inflation
    assert "keep" in c2


def test_packet_cost_softens_size_bias():
    """Under packet cost, H = (2 + s/536)/s → 1/536 for large s, so a
    large document's value floor is far higher than under constant
    cost, where H → 0."""
    constant = GDSPolicy(ConstantCost())
    packet = GDSPolicy(PacketCost())
    c1 = Cache(2_000_000, constant)
    c2 = Cache(2_000_000, packet)
    big, small = 1_000_000, 1_000
    ref(c1, "big", size=big)
    ref(c2, "big", size=big)
    h_const = constant.h_value(c1.get("big"))
    h_packet = packet.h_value(c2.get("big"))
    assert h_packet > h_const * 100


def test_frequency_is_ignored():
    c = Cache(100, GDSPolicy(ConstantCost()))
    ref(c, "popular", size=50)
    for _ in range(20):
        ref(c, "popular")
    ref(c, "fresh", size=25)
    ref(c, "new", size=50)    # popular evicted despite 21 references
    assert "popular" not in c


def test_online_optimality_smoke():
    """GDS's cost savings should not be beaten by LRU under its own
    (constant) cost function on a small adversarial mix."""
    from repro.core.lru import LRUPolicy
    import random
    rng = random.Random(4)
    docs = [(f"s{i}", 10) for i in range(20)] + [(f"b{i}", 200) for i in range(5)]
    workload = [docs[rng.randrange(len(docs))] for _ in range(3000)]
    gds_cache = Cache(400, GDSPolicy(ConstantCost()))
    lru_cache = Cache(400, LRUPolicy())
    for url, size in workload:
        ref(gds_cache, url, size=size)
        ref(lru_cache, url, size=size)
    assert gds_cache.hits >= lru_cache.hits


def test_clear_resets_inflation():
    policy = GDSPolicy(ConstantCost())
    c = Cache(50, policy)
    ref(c, "a", size=30), ref(c, "b", size=30)
    assert policy.inflation > 0
    c.flush()
    assert policy.inflation == 0.0
