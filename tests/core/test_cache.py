"""Tests for the policy-agnostic cache (capacity, residency, staleness)."""

import pytest

from repro.core.cache import Cache
from repro.core.lru import LRUPolicy
from repro.core.policy import AccessOutcome
from repro.errors import CapacityError, SimulationError
from repro.types import DocumentType

from tests.core.helpers import ref, resident_urls


def lru_cache(capacity=100):
    return Cache(capacity, LRUPolicy())


def test_rejects_nonpositive_capacity():
    with pytest.raises(CapacityError):
        Cache(0, LRUPolicy())
    with pytest.raises(CapacityError):
        Cache(-5, LRUPolicy())


def test_miss_then_hit():
    cache = lru_cache()
    assert ref(cache, "a") is AccessOutcome.MISS
    assert ref(cache, "a") is AccessOutcome.HIT
    assert cache.hits == 1
    assert cache.misses == 1


def test_byte_accounting():
    cache = lru_cache(100)
    ref(cache, "a", size=30)
    ref(cache, "b", size=50)
    assert cache.used_bytes == 80
    assert cache.free_bytes == 20
    cache.check_invariants()


def test_admission_evicts_until_fit():
    cache = lru_cache(100)
    ref(cache, "a", size=40)
    ref(cache, "b", size=40)
    ref(cache, "c", size=40)  # must evict a (LRU)
    assert resident_urls(cache) == ["b", "c"]
    assert cache.evictions == 1
    cache.check_invariants()


def test_admission_may_evict_several():
    cache = lru_cache(100)
    for url in "abcde":
        ref(cache, url, size=20)
    ref(cache, "big", size=90)  # evicts at least 4
    assert "big" in cache
    assert cache.used_bytes <= 100
    cache.check_invariants()


def test_document_larger_than_cache_bypassed():
    cache = lru_cache(100)
    ref(cache, "small", size=50)
    outcome = ref(cache, "huge", size=500)
    assert outcome is AccessOutcome.MISS_TOO_BIG
    assert "huge" not in cache
    assert "small" in cache          # nothing was evicted for it
    assert cache.bypasses == 1


def test_exactly_capacity_sized_document_admitted():
    cache = lru_cache(100)
    assert ref(cache, "exact", size=100) is AccessOutcome.MISS
    assert "exact" in cache
    assert cache.free_bytes == 0


def test_modified_document_is_miss_and_replaced():
    cache = lru_cache(100)
    ref(cache, "a", size=40)
    outcome = ref(cache, "a", size=42)  # size changed: stale
    assert outcome is AccessOutcome.MISS_MODIFIED
    assert cache.get("a").size == 42
    assert cache.invalidations == 1
    cache.check_invariants()


def test_modified_document_resets_frequency():
    cache = lru_cache(100)
    ref(cache, "a", size=40)
    ref(cache, "a", size=40)
    assert cache.get("a").frequency == 2
    ref(cache, "a", size=50)
    assert cache.get("a").frequency == 1  # fresh residency


def test_frequency_counts_hits():
    cache = lru_cache()
    ref(cache, "a")
    for _ in range(4):
        ref(cache, "a")
    assert cache.get("a").frequency == 5


def test_clock_ticks_once_per_reference():
    cache = lru_cache()
    ref(cache, "a")
    ref(cache, "a")
    ref(cache, "huge", size=10_000)  # bypass still ticks
    assert cache.clock == 3


def test_invalidate():
    cache = lru_cache()
    ref(cache, "a", size=30)
    assert cache.invalidate("a")
    assert "a" not in cache
    assert cache.used_bytes == 0
    assert not cache.invalidate("a")  # second time: absent
    cache.check_invariants()


def test_flush_keeps_counters():
    cache = lru_cache()
    ref(cache, "a")
    ref(cache, "a")
    cache.flush()
    assert len(cache) == 0
    assert cache.used_bytes == 0
    assert cache.hits == 1
    # Cache is reusable after flush.
    assert ref(cache, "a") is AccessOutcome.MISS
    cache.check_invariants()


def test_get_has_no_side_effects():
    cache = lru_cache()
    ref(cache, "a")
    freq = cache.get("a").frequency
    cache.get("a")
    assert cache.get("a").frequency == freq
    assert cache.hits == 0


def test_doc_type_recorded_on_entry():
    cache = lru_cache()
    ref(cache, "a", doc_type=DocumentType.MULTIMEDIA)
    assert cache.get("a").doc_type is DocumentType.MULTIMEDIA


def test_negative_size_rejected():
    cache = lru_cache()
    with pytest.raises(ValueError):
        cache.reference("a", -1, DocumentType.OTHER)


def test_policy_cache_disagreement_raises():
    """A policy evicting an entry the cache doesn't know is a bug."""

    class LyingPolicy(LRUPolicy):
        def pop_victim(self):
            from repro.core.policy import CacheEntry
            return CacheEntry("ghost", 10, DocumentType.OTHER)

    cache = Cache(30, LyingPolicy())
    ref(cache, "a", size=20)
    with pytest.raises(SimulationError):
        ref(cache, "b", size=20)


def test_zero_size_document_admitted():
    cache = lru_cache()
    assert ref(cache, "empty", size=0) is AccessOutcome.MISS
    assert "empty" in cache
    assert cache.used_bytes == 0
