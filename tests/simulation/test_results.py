"""Tests for result containers and serialization."""

import pytest

from repro.simulation.results import SimulationResult, SweepResult
from repro.simulation.simulator import simulate
from repro.simulation.sweep import run_sweep
from repro.types import DocumentType, Request, Trace


def tiny_trace():
    requests = [Request(float(i), f"u{i % 5}", 100, 100,
                        DocumentType.IMAGE) for i in range(30)]
    return Trace(requests, name="tiny")


class TestSimulationResult:
    def test_round_trip_dict(self):
        result = simulate(tiny_trace(), "gd*(1)", 10_000,
                          occupancy_interval=10)
        again = SimulationResult.from_dict(result.as_dict())
        assert again.policy == result.policy
        assert again.capacity_bytes == result.capacity_bytes
        assert again.hit_rate() == result.hit_rate()
        assert again.byte_hit_rate() == result.byte_hit_rate()
        assert again.final_beta == result.final_beta
        assert len(again.occupancy.samples) == \
            len(result.occupancy.samples)

    def test_round_trip_without_occupancy(self):
        result = simulate(tiny_trace(), "lru", 10_000)
        again = SimulationResult.from_dict(result.as_dict())
        assert again.occupancy is None

    def test_save_load_file(self, tmp_path):
        result = simulate(tiny_trace(), "lru", 10_000)
        path = tmp_path / "result.json"
        result.save(path)
        again = SimulationResult.load(path)
        assert again.hit_rate() == result.hit_rate()
        assert again.trace_name == "tiny"

    def test_per_type_rates_preserved(self):
        result = simulate(tiny_trace(), "lru", 10_000)
        again = SimulationResult.from_dict(result.as_dict())
        assert again.hit_rate(DocumentType.IMAGE) == \
            result.hit_rate(DocumentType.IMAGE)


class TestSweepResult:
    def test_round_trip(self, tmp_path):
        sweep = run_sweep(tiny_trace(), ["lru", "gds(1)"], [1000, 10_000])
        path = tmp_path / "sweep.json"
        sweep.save(path)
        again = SweepResult.load(path)
        assert again.trace_name == sweep.trace_name
        assert sorted(again.policies) == sorted(sweep.policies)
        assert again.capacities == sweep.capacities
        assert again.series("lru") == sweep.series("lru")

    def test_series_with_doc_type_and_byte_rate(self):
        sweep = run_sweep(tiny_trace(), ["lru"], [1000])
        hr = sweep.series("lru", DocumentType.IMAGE, byte_rate=False)
        bhr = sweep.series("lru", DocumentType.IMAGE, byte_rate=True)
        assert len(hr) == len(bhr) == 1

    def test_add_groups_by_policy(self):
        sweep = SweepResult(trace_name="t")
        sweep.add(SimulationResult(policy="lru", capacity_bytes=100))
        sweep.add(SimulationResult(policy="lru", capacity_bytes=200))
        sweep.add(SimulationResult(policy="fifo", capacity_bytes=100))
        assert sorted(sweep.policies) == ["fifo", "lru"]
        assert sweep.capacities == [100, 200]
