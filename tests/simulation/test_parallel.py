"""Tests for the parallel sweep runner."""

import pytest

from repro.errors import ConfigurationError
from repro.simulation.parallel import run_sweep_parallel
from repro.simulation.sweep import cache_sizes_from_fractions, run_sweep
from repro.types import DocumentType, Request, Trace


def small_trace():
    requests = []
    for i in range(300):
        for url, size, doc_type in (
                (f"u{i % 17}", 500, DocumentType.IMAGE),
                (f"h{i % 5}", 1500, DocumentType.HTML)):
            requests.append(Request(float(i), url, size, size, doc_type))
    return Trace(requests, name="par-test")


def test_empty_grid_rejected():
    with pytest.raises(ConfigurationError):
        run_sweep_parallel(small_trace(), [], [])


def test_single_worker_matches_serial():
    trace = small_trace()
    capacities = [5000, 20_000]
    serial = run_sweep(trace, ["lru", "gds(1)"], capacities)
    single = run_sweep_parallel(trace, ["lru", "gds(1)"], capacities,
                                n_workers=1)
    for policy in serial.policies:
        assert single.series(policy) == serial.series(policy)
        assert single.series(policy, byte_rate=True) == \
            serial.series(policy, byte_rate=True)


def test_two_workers_match_serial():
    trace = small_trace()
    capacities = [5000, 20_000]
    serial = run_sweep(trace, ["lru", "lfu-da", "gd*(1)"], capacities)
    parallel = run_sweep_parallel(trace, ["lru", "lfu-da", "gd*(1)"],
                                  capacities, n_workers=2)
    assert sorted(parallel.policies) == sorted(serial.policies)
    assert parallel.capacities == serial.capacities
    for policy in serial.policies:
        assert parallel.series(policy) == serial.series(policy)
        for doc_type in (DocumentType.IMAGE, DocumentType.HTML):
            assert parallel.series(policy, doc_type) == \
                serial.series(policy, doc_type)


def test_workers_capped_by_cells():
    trace = small_trace()
    sweep = run_sweep_parallel(trace, ["lru"], [5000], n_workers=16)
    assert sweep.series("lru")


def test_parallel_on_generated_trace(tiny_dfn_trace):
    capacities = cache_sizes_from_fractions(tiny_dfn_trace, [0.01, 0.04])
    parallel = run_sweep_parallel(
        tiny_dfn_trace, ["lru", "gd*(1)"], capacities, n_workers=2)
    serial = run_sweep(tiny_dfn_trace, ["lru", "gd*(1)"], capacities)
    for policy in ("lru", "gd*(1)"):
        assert parallel.series(policy) == serial.series(policy)
