"""Tests for latency accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.simulation.latency import LatencyMetrics, LatencyModel
from repro.simulation.simulator import simulate
from repro.types import DocumentType, Request, Trace


def req(url, size=1000, ts=0.0, doc_type=DocumentType.HTML):
    return Request(ts, url, size, size, doc_type)


class TestModel:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LatencyModel(hit_rtt=0)
        with pytest.raises(ConfigurationError):
            LatencyModel(origin_bandwidth=-1)

    def test_hit_faster_than_miss(self):
        model = LatencyModel()
        for size in (0, 1000, 10 ** 6):
            assert model.hit_latency(size) < model.miss_latency(size)

    def test_formulas(self):
        model = LatencyModel(hit_rtt=0.01, origin_rtt=0.1,
                             proxy_bandwidth=1000.0,
                             origin_bandwidth=100.0)
        assert model.hit_latency(500) == pytest.approx(0.01 + 0.5)
        assert model.miss_latency(500) == pytest.approx(0.01 + 0.1 + 5.0)


class TestMetrics:
    def test_recording(self):
        metrics = LatencyMetrics(model=LatencyModel())
        metrics.record(DocumentType.HTML, True, 1000)
        metrics.record(DocumentType.HTML, False, 1000)
        assert metrics.overall.count == 2
        assert metrics.mean_latency() > \
            metrics.model.hit_latency(1000) / 2
        assert metrics.mean_latency(DocumentType.IMAGE) != \
            metrics.mean_latency(DocumentType.IMAGE) or \
            metrics.by_type[DocumentType.IMAGE].count == 0

    def test_speedup_no_data(self):
        metrics = LatencyMetrics(model=LatencyModel())
        assert metrics.speedup == 1.0


class TestSimulatorIntegration:
    def test_latency_none_by_default(self):
        trace = Trace([req("a"), req("a")])
        result = simulate(trace, "lru", 10_000, warmup_fraction=0.0)
        assert result.latency is None

    def test_latency_collected(self):
        trace = Trace([req("a"), req("a"), req("b")])
        model = LatencyModel()
        result = simulate(trace, "lru", 10_000, warmup_fraction=0.0,
                          latency_model=model)
        latency = result.latency
        assert latency.overall.count == 3
        # 1 hit, 2 misses of 1000 bytes each.
        expected = (model.hit_latency(1000)
                    + 2 * model.miss_latency(1000)) / 3
        assert latency.mean_latency() == pytest.approx(expected)

    def test_speedup_above_one_with_hits(self):
        trace = Trace([req("a")] + [req("a") for _ in range(9)])
        result = simulate(trace, "lru", 10_000, warmup_fraction=0.0,
                          latency_model=LatencyModel())
        assert result.latency.speedup > 1.5

    def test_no_hits_no_speedup(self):
        trace = Trace([req(f"u{i}") for i in range(10)])
        result = simulate(trace, "lru", 10_000, warmup_fraction=0.0,
                          latency_model=LatencyModel())
        assert result.latency.speedup == pytest.approx(1.0)

    def test_better_policy_lower_latency(self, tiny_dfn_trace):
        """GD*(1)'s higher hit rate must show up as lower mean latency
        than LRU's under the same model."""
        capacity = int(tiny_dfn_trace.metadata().total_size_bytes * 0.02)
        model = LatencyModel()
        lru = simulate(tiny_dfn_trace, "lru", capacity,
                       latency_model=model)
        gdstar = simulate(tiny_dfn_trace, "gd*(1)", capacity,
                          latency_model=model)
        assert gdstar.hit_rate() > lru.hit_rate()
        assert gdstar.latency.mean_latency() < \
            lru.latency.mean_latency() * 1.02

    def test_large_documents_dominate_latency(self, tiny_dfn_trace):
        """Multimedia misses cost seconds; image misses milliseconds —
        the latency lens on the paper's byte-hit-rate story."""
        capacity = int(tiny_dfn_trace.metadata().total_size_bytes * 0.02)
        result = simulate(tiny_dfn_trace, "gds(1)", capacity,
                          latency_model=LatencyModel())
        mm = result.latency.mean_latency(DocumentType.MULTIMEDIA)
        img = result.latency.mean_latency(DocumentType.IMAGE)
        assert mm > 10 * img


class TestLink:
    def test_validation(self):
        from repro.simulation.latency import Link

        with pytest.raises(ConfigurationError):
            Link(rtt=0, bandwidth=1000.0)
        with pytest.raises(ConfigurationError):
            Link(rtt=0.01, bandwidth=0)

    def test_time_is_rtt_plus_transmission(self):
        from repro.simulation.latency import Link

        link = Link(rtt=0.02, bandwidth=1000.0)
        assert link.time(500) == pytest.approx(0.02 + 0.5)


class TestPathLatency:
    """path_latency generalizes LatencyModel: a one-link path is the
    hit formula, client+origin is the miss formula — float-exact, so
    the network engine and the single-cache simulator agree to the
    last bit."""

    def test_one_link_matches_hit_latency(self):
        from repro.simulation.latency import path_latency

        model = LatencyModel()
        for size in (0, 777, 10 ** 6):
            assert path_latency([model.client_link], size) == \
                model.hit_latency(size)

    def test_two_links_match_miss_latency(self):
        from repro.simulation.latency import path_latency

        model = LatencyModel()
        for size in (0, 777, 10 ** 6):
            assert path_latency([model.client_link,
                                 model.origin_link], size) == \
                model.miss_latency(size)

    def test_transfer_charged_at_bottleneck_once(self):
        from repro.simulation.latency import Link, path_latency

        links = [Link(rtt=0.01, bandwidth=4000.0),
                 Link(rtt=0.02, bandwidth=1000.0),
                 Link(rtt=0.03, bandwidth=2000.0)]
        assert path_latency(links, 2000) == \
            pytest.approx(0.06 + 2000 / 1000.0)

    def test_from_links_round_trip(self):
        from repro.simulation.latency import Link

        client = Link(rtt=0.004, bandwidth=2_000_000.0)
        origin = Link(rtt=0.080, bandwidth=100_000.0)
        model = LatencyModel.from_links(client, origin)
        assert model.client_link == client
        assert model.origin_link == origin
