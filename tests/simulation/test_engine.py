"""Shared-pass engine equivalence: batched cells == classic simulator.

The contract of :func:`repro.simulation.engine.run_cells` is that a
whole grid of (policy, capacity) cells run over one trace pass produces
*bit-identical* :class:`SimulationResult`s to running
:class:`CacheSimulator` once per cell.  These tests pin that contract
across every registered policy, every size interpretation, warmup
fractions, modification-heavy traces, the LRU fast-path ladder (and
its eligibility edges), and both sweep entry points.
"""

import random

import pytest

from repro.core.cache import Cache
from repro.core.registry import POLICY_NAMES, make_policy
from repro.errors import ConfigurationError, SimulationError
from repro.observability.events import read_events, set_event_sink
from repro.simulation.engine import run_cells
from repro.simulation.parallel import cell_key, run_sweep_parallel
from repro.simulation.simulator import (
    CacheSimulator,
    SimulationConfig,
    SizeInterpretation,
)
from repro.simulation.sweep import run_sweep
from repro.types import DocumentType, Request, Trace

DOC_TYPES = list(DocumentType)


@pytest.fixture(autouse=True)
def _null_sink_after():
    yield
    set_event_sink(None)


def mixed_trace(n=600, seed=7, modify_every=0):
    """Deterministic trace over ~40 urls with skewed sizes.

    With ``modify_every`` > 0, every that-many-th request to a url
    changes the document's size (a modification under every
    interpretation mode, and a delta large enough to trip the 5 %
    tolerance rule).
    """
    rng = random.Random(seed)
    requests = []
    for i in range(n):
        url_id = rng.randrange(40)
        base = 200 + 137 * url_id
        size = base
        if modify_every and i % modify_every == 0:
            size = base * 2 + 31
        transfer = max(int(size * rng.choice((0.4, 1.0, 1.0))), 1)
        requests.append(Request(float(i), f"u{url_id}", size, transfer,
                                DOC_TYPES[url_id % len(DOC_TYPES)]))
    return Trace(requests, name="engine-test")


def classic(trace, config):
    return CacheSimulator(config).run(trace, trace_name=trace.name)


def assert_identical(batched, reference):
    assert batched.as_dict() == reference.as_dict()
    assert batched.evictions == reference.evictions
    assert batched.invalidations == reference.invalidations


class TestFullRegistryEquivalence:
    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_every_registered_policy(self, policy):
        trace = mixed_trace()
        configs = [SimulationConfig(capacity_bytes=c, policy=policy)
                   for c in (3_000, 12_000, 60_000)]
        results = run_cells(trace, configs, trace_name=trace.name)
        for config, result in zip(configs, results):
            assert_identical(result, classic(trace, config))


class TestInterpretationAndWarmupEquivalence:
    @pytest.mark.parametrize("interp", list(SizeInterpretation))
    @pytest.mark.parametrize("warmup", [0.0, 0.1, 0.5])
    def test_modification_heavy(self, interp, warmup):
        trace = mixed_trace(modify_every=7)
        configs = [
            SimulationConfig(capacity_bytes=c, policy=p,
                             warmup_fraction=warmup,
                             size_interpretation=interp)
            for p in ("lru", "gd*(p)") for c in (4_000, 25_000)]
        results = run_cells(trace, configs, trace_name=trace.name)
        for config, result in zip(configs, results):
            assert_identical(result, classic(trace, config))

    def test_mixed_interpretations_in_one_pass(self):
        """Cells with different resolvers share a pass correctly."""
        trace = mixed_trace(modify_every=11)
        configs = [SimulationConfig(capacity_bytes=9_000, policy="lru",
                                    size_interpretation=interp)
                   for interp in SizeInterpretation]
        results = run_cells(trace, configs, trace_name=trace.name)
        for config, result in zip(configs, results):
            assert_identical(result, classic(trace, config))

    def test_accounting_cells_share_pass_with_deferred(self):
        """Occupancy-sampling cells (general mode) coexist with
        deferred cells in the same pass."""
        trace = mixed_trace()
        configs = [
            SimulationConfig(capacity_bytes=9_000, policy="lru"),
            SimulationConfig(capacity_bytes=9_000, policy="lru",
                             occupancy_interval=50),
            SimulationConfig(capacity_bytes=9_000, policy="lfu-da"),
        ]
        results = run_cells(trace, configs, trace_name=trace.name)
        for config, result in zip(configs, results):
            assert_identical(result, classic(trace, config))
        assert results[1].occupancy is not None


class TestLRUFastPath:
    def lru_configs(self, capacities):
        return [SimulationConfig(capacity_bytes=c, policy="lru")
                for c in capacities]

    def test_ladder_matches_classic(self):
        trace = mixed_trace()
        configs = self.lru_configs((2_000, 9_000, 40_000, 200_000))
        fast = run_cells(trace, configs, trace_name=trace.name)
        slow = run_cells(trace, self.lru_configs(
            (2_000, 9_000, 40_000, 200_000)),
            trace_name=trace.name, lru_fast_path=False)
        for config, f, s in zip(configs, fast, slow):
            assert_identical(f, s)
            assert_identical(f, classic(trace, config))

    def test_zero_size_documents(self):
        """0-byte documents occupy no space but still hit/miss."""
        requests = []
        for i in range(200):
            url = f"u{i % 9}"
            size = 0 if i % 9 < 3 else 800
            requests.append(Request(float(i), url, size, size,
                                    DocumentType.HTML))
        trace = Trace(requests, name="zero-size")
        configs = self.lru_configs((800, 2_400, 10_000))
        results = run_cells(trace, configs, trace_name=trace.name)
        for config, result in zip(configs, results):
            assert_identical(result, classic(trace, config))

    def test_capacity_below_max_doc_size_still_exact(self):
        """Bypassed documents disqualify the ladder; the engine must
        fall back to per-cell simulation and stay exact."""
        trace = mixed_trace()   # max size > 5_000 for high url ids
        configs = self.lru_configs((1_000, 2_000))
        results = run_cells(trace, configs, trace_name=trace.name)
        for config, result in zip(configs, results):
            assert_identical(result, classic(trace, config))

    def test_modified_sizes_disqualify_ladder(self):
        trace = mixed_trace(modify_every=13)
        configs = self.lru_configs((4_000, 50_000))
        results = run_cells(trace, configs, trace_name=trace.name)
        for config, result in zip(configs, results):
            assert_identical(result, classic(trace, config))

    def test_warmup_with_ladder(self):
        trace = mixed_trace()
        configs = [SimulationConfig(capacity_bytes=c, policy="lru",
                                    warmup_fraction=w)
                   for c in (9_000, 60_000) for w in (0.1, 0.4)]
        results = run_cells(trace, configs, trace_name=trace.name)
        for config, result in zip(configs, results):
            assert_identical(result, classic(trace, config))


class TestSweepEntryPoints:
    POLICIES = ["lru", "lfu-da", "gds(1)", "gd*(p)"]
    CAPACITIES = [4_000, 20_000]

    def test_run_sweep_batched_equals_percell(self):
        trace = mixed_trace(modify_every=17)
        percell = run_sweep(trace, self.POLICIES, self.CAPACITIES)
        batched = run_sweep(trace, self.POLICIES, self.CAPACITIES,
                            engine="batched")
        assert batched.as_dict() == percell.as_dict()

    def test_run_sweep_rejects_unknown_engine(self):
        with pytest.raises(ConfigurationError):
            run_sweep(mixed_trace(60), ["lru"], [4_000], engine="warp")
        with pytest.raises(ConfigurationError):
            run_sweep_parallel(mixed_trace(60), ["lru"], [4_000],
                               engine="warp")

    def test_parallel_batched_equals_serial(self):
        trace = mixed_trace(modify_every=17)
        serial = run_sweep(trace, self.POLICIES, self.CAPACITIES)
        for n_workers in (1, 2):
            parallel = run_sweep_parallel(
                trace, self.POLICIES, self.CAPACITIES,
                n_workers=n_workers, engine="batched")
            for policy in self.POLICIES:
                assert parallel.series(policy) == serial.series(policy)
                assert parallel.series(policy, byte_rate=True) == \
                    serial.series(policy, byte_rate=True)

    def test_parallel_batched_cells_per_pass(self):
        trace = mixed_trace()
        serial = run_sweep(trace, self.POLICIES, self.CAPACITIES)
        parallel = run_sweep_parallel(
            trace, self.POLICIES, self.CAPACITIES, n_workers=2,
            engine="batched", cells_per_pass=3)
        for policy in self.POLICIES:
            assert parallel.series(policy) == serial.series(policy)


class TestStreamingPass:
    """Bounded-memory passes: lazy request streams and trace files."""

    def test_iterator_with_total_matches_materialized(self):
        trace = mixed_trace(modify_every=19)
        def configs():
            return [SimulationConfig(capacity_bytes=c, policy=p)
                    for p in ("lru", "gds(1)") for c in (4_000, 20_000)]
        materialized = run_cells(trace, configs(), trace_name="t")
        streamed = run_cells(iter(trace.requests), configs(),
                             trace_name="t",
                             total_requests=len(trace))
        for m, s in zip(materialized, streamed):
            assert_identical(s, m)

    def test_wrong_declared_total_raises(self):
        trace = mixed_trace(100)
        with pytest.raises(SimulationError):
            run_cells(iter(trace.requests),
                      [SimulationConfig(capacity_bytes=5_000)],
                      total_requests=len(trace) + 7)

    def test_file_backed_sweep_both_engines(self, tmp_path):
        from repro.trace.pipeline import count_requests
        from repro.trace.writer import write_trace
        trace = mixed_trace(modify_every=13)
        path = tmp_path / "trace.csv"
        write_trace(path, trace.requests)
        assert count_requests(path) == len(trace)
        policies = ["lru", "gd*(1)"]
        capacities = [4_000, 20_000]
        memory = run_sweep(trace, policies, capacities)
        percell = run_sweep(path, policies, capacities)
        batched = run_sweep(path, policies, capacities,
                            engine="batched")
        assert percell.as_dict() == batched.as_dict()
        for policy in policies:
            assert percell.series(policy) == memory.series(policy)
            assert batched.series(policy, byte_rate=True) == \
                memory.series(policy, byte_rate=True)


class TestTelemetry:
    def test_pass_events_emitted(self, tmp_path):
        from repro.observability.events import EventLog
        trace = mixed_trace()
        configs = [SimulationConfig(capacity_bytes=c, policy=p)
                   for p in ("lru", "gds(1)") for c in (9_000, 20_000)]
        with EventLog(tmp_path / "events.jsonl") as log:
            previous = set_event_sink(log)
            try:
                run_cells(trace, configs, trace_name=trace.name)
            finally:
                set_event_sink(previous)
        (started,) = read_events(tmp_path / "events.jsonl",
                                 "pass_started")
        (finished,) = read_events(tmp_path / "events.jsonl",
                                  "pass_finished")
        assert started["cells"] == len(configs)
        assert started["requests"] == len(trace)
        assert finished["cells"] == len(configs)
        assert finished["duration_seconds"] >= 0
        # Two of the four cells are plain-LRU ladder cells.
        assert finished["lru_fast_path_cells"] == 2

    def test_batched_parallel_preserves_cell_lifecycle(self, tmp_path):
        """Per-cell scheduled/finished events survive batching, so
        checkpoint/resume tooling reconstructs the same history."""
        trace = mixed_trace()
        policies = ["lru", "gds(1)"]
        capacities = [4_000, 20_000]
        run_sweep_parallel(trace, policies, capacities, n_workers=2,
                           engine="batched",
                           telemetry_dir=tmp_path / "tel")
        records = read_events(tmp_path / "tel" / "events.jsonl")
        for policy in policies:
            for capacity in capacities:
                key = cell_key(policy, capacity)
                lifecycle = [(r["event"], r["attempt"]) for r in records
                             if r.get("key") == key and "attempt" in r]
                assert lifecycle == [("cell_scheduled", 1),
                                     ("cell_finished", 1)]

    def test_workers_never_write_into_an_installed_sink(self, tmp_path):
        """Fork-started workers inherit the parent's process-wide
        event sink (the CLI installs one for --telemetry-dir); if the
        shared pass emitted through it from inside a worker, stale
        forked seq counters would corrupt the parent's events.jsonl."""
        from repro.observability.events import EventLog
        trace = mixed_trace()
        with EventLog(tmp_path / "events.jsonl") as log:
            previous = set_event_sink(log)
            try:
                run_sweep_parallel(trace, ["lru", "gds(1)"],
                                   [4_000, 20_000], n_workers=2,
                                   engine="batched")
            finally:
                set_event_sink(previous)
        records = read_events(tmp_path / "events.jsonl")
        seqs = [r["seq"] for r in records]
        assert seqs == sorted(set(seqs)), "worker events leaked in"
        # Pass lifecycle runs inside the workers, so it must be absent.
        assert not [r for r in records
                    if r["event"].startswith("pass_")]
        assert len(read_events(tmp_path / "events.jsonl",
                               "cell_finished")) == 4


class TestAttachContract:
    def test_policy_instance_cannot_serve_two_caches(self):
        policy = make_policy("lru")
        Cache(capacity_bytes=1_000, policy=policy)
        with pytest.raises(SimulationError):
            Cache(capacity_bytes=2_000, policy=policy)

    def test_reattach_same_cache_is_idempotent(self):
        policy = make_policy("lru")
        cache = Cache(capacity_bytes=1_000, policy=policy)
        policy.attach(cache)   # no-op, not an error
