"""Tests for hit-rate / byte-hit-rate accounting."""

import pytest

from repro.simulation.metrics import RateAccumulator, TypeMetrics
from repro.types import DOCUMENT_TYPES, DocumentType


class TestRateAccumulator:
    def test_empty_rates_zero(self):
        acc = RateAccumulator()
        assert acc.hit_rate == 0.0
        assert acc.byte_hit_rate == 0.0

    def test_counting(self):
        acc = RateAccumulator()
        acc.record(True, 100)
        acc.record(False, 300)
        assert acc.requests == 2
        assert acc.hits == 1
        assert acc.requested_bytes == 400
        assert acc.hit_bytes == 100
        assert acc.hit_rate == 0.5
        assert acc.byte_hit_rate == 0.25

    def test_hit_and_byte_rates_diverge(self):
        """Small docs hit, large docs miss: HR high, BHR low — the
        paper's GDS(1) signature."""
        acc = RateAccumulator()
        for _ in range(9):
            acc.record(True, 10)      # small hits
        acc.record(False, 910)        # one large miss
        assert acc.hit_rate == 0.9
        assert acc.byte_hit_rate == pytest.approx(0.09)

    def test_merge(self):
        a, b = RateAccumulator(), RateAccumulator()
        a.record(True, 10)
        b.record(False, 30)
        a.merge(b)
        assert a.requests == 2
        assert a.requested_bytes == 40

    def test_round_trip_dict(self):
        acc = RateAccumulator()
        acc.record(True, 100)
        acc.record(False, 50)
        again = RateAccumulator.from_dict(acc.as_dict())
        assert again == acc


class TestTypeMetrics:
    def test_per_type_isolation(self):
        metrics = TypeMetrics()
        metrics.record(DocumentType.IMAGE, True, 100)
        metrics.record(DocumentType.MULTIMEDIA, False, 1000)
        assert metrics.hit_rate(DocumentType.IMAGE) == 1.0
        assert metrics.hit_rate(DocumentType.MULTIMEDIA) == 0.0
        assert metrics.hit_rate() == 0.5
        assert metrics.byte_hit_rate() == pytest.approx(100 / 1100)

    def test_all_types_present(self):
        metrics = TypeMetrics()
        for doc_type in DOCUMENT_TYPES:
            assert metrics.hit_rate(doc_type) == 0.0

    def test_overall_is_sum_of_types(self):
        import random
        rng = random.Random(1)
        metrics = TypeMetrics()
        for _ in range(500):
            metrics.record(rng.choice(DOCUMENT_TYPES), rng.random() < 0.3,
                           rng.randint(1, 1000))
        assert metrics.overall.requests == sum(
            acc.requests for acc in metrics.by_type.values())
        assert metrics.overall.hit_bytes == sum(
            acc.hit_bytes for acc in metrics.by_type.values())

    def test_round_trip_dict(self):
        metrics = TypeMetrics()
        metrics.record(DocumentType.HTML, True, 77)
        again = TypeMetrics.from_dict(metrics.as_dict())
        assert again.hit_rate(DocumentType.HTML) == 1.0
        assert again.overall.requested_bytes == 77


class TestTypeMetricsMerge:
    """merge() is what lets the network engine keep per-node
    accumulators and still reproduce the legacy loops' single shared
    ones (integer sums commute)."""

    def test_merge_equals_single_accumulator(self):
        import random
        rng = random.Random(7)
        shared = TypeMetrics()
        parts = [TypeMetrics() for _ in range(3)]
        for index in range(300):
            doc_type = rng.choice(DOCUMENT_TYPES)
            hit = rng.random() < 0.4
            size = rng.randint(1, 5000)
            shared.record(doc_type, hit, size)
            parts[index % 3].record(doc_type, hit, size)
        merged = TypeMetrics()
        for part in parts:
            merged.merge(part)
        assert merged.as_dict() == shared.as_dict()

    def test_merge_into_empty_copies(self):
        source = TypeMetrics()
        source.record(DocumentType.IMAGE, True, 123)
        target = TypeMetrics()
        target.merge(source)
        assert target.as_dict() == source.as_dict()
        # And merging is additive, not overwriting.
        target.merge(source)
        assert target.overall.requests == 2
        assert target.overall.hit_bytes == 246
