"""Columnar shared-pass engine equivalence: mmap'd columns == objects.

The contract of the vectorized engine
(:mod:`repro.simulation.vectorized`, reached through
:func:`repro.simulation.engine.run_cells` whenever the trace is a
:class:`~repro.trace.columnar.ColumnarTrace`) is *bit identity* with
the object path: every counter, rate, occupancy sample, and latency
statistic must match what the classic per-Request loop produces on the
same workload.  These tests extend the equivalence matrix of
``test_engine.py`` across the format boundary — every registered
policy, every size interpretation, warmup fractions, the vectorized
LRU ladder, the FIFO shadow-queue fast path, hinted Greedy-Dual cost
models, accounting extras, and the sweep/parallel/service entry points.
"""

import random

import pytest

from repro.core.registry import POLICY_NAMES
from repro.observability.events import read_events, set_event_sink
from repro.simulation.engine import run_cells
from repro.simulation.parallel import run_sweep_parallel
from repro.simulation.simulator import (
    CacheSimulator,
    SimulationConfig,
    SizeInterpretation,
)
from repro.simulation.sweep import run_sweep
from repro.trace.columnar import write_columnar
from repro.types import DocumentType, Request, Trace

DOC_TYPES = list(DocumentType)


@pytest.fixture(autouse=True)
def _null_sink_after():
    yield
    set_event_sink(None)


def mixed_trace(n=600, seed=7, modify_every=0):
    """Same construction as ``test_engine.mixed_trace`` (shape matters:
    skewed sizes, all five types, optional size modifications)."""
    rng = random.Random(seed)
    requests = []
    for i in range(n):
        url_id = rng.randrange(40)
        base = 200 + 137 * url_id
        size = base
        if modify_every and i % modify_every == 0:
            size = base * 2 + 31
        transfer = max(int(size * rng.choice((0.4, 1.0, 1.0))), 1)
        requests.append(Request(float(i), f"u{url_id}", size, transfer,
                                DOC_TYPES[url_id % len(DOC_TYPES)]))
    return Trace(requests, name="engine-test")


@pytest.fixture
def columnar_of(tmp_path):
    """Factory: object trace -> open ColumnarTrace with the same name."""
    from repro.trace.columnar import open_columnar

    opened = []

    def factory(trace):
        path = tmp_path / f"{len(opened)}.rcol"
        write_columnar(path, trace.requests, name=trace.name)
        columnar = open_columnar(path)
        opened.append(columnar)
        return columnar

    yield factory
    for columnar in opened:
        columnar.close()


def classic(trace, config):
    return CacheSimulator(config).run(trace, trace_name=trace.name)


def assert_identical(columnar_result, reference):
    assert columnar_result.as_dict() == reference.as_dict()
    assert columnar_result.evictions == reference.evictions
    assert columnar_result.invalidations == reference.invalidations
    assert columnar_result.bypasses == reference.bypasses


class TestFullRegistryEquivalence:
    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_every_registered_policy(self, policy, columnar_of):
        trace = mixed_trace()
        columnar = columnar_of(trace)
        configs = [SimulationConfig(capacity_bytes=c, policy=policy)
                   for c in (3_000, 12_000, 60_000)]
        results = run_cells(columnar, configs, trace_name=trace.name)
        for config, result in zip(configs, results):
            assert_identical(result, classic(trace, config))


class TestInterpretationAndWarmupEquivalence:
    @pytest.mark.parametrize("interp", list(SizeInterpretation))
    @pytest.mark.parametrize("warmup", [0.0, 0.1, 0.5])
    def test_modification_heavy(self, interp, warmup, columnar_of):
        trace = mixed_trace(modify_every=7)
        columnar = columnar_of(trace)
        configs = [
            SimulationConfig(capacity_bytes=c, policy=p,
                             warmup_fraction=warmup,
                             size_interpretation=interp)
            for p in ("lru", "fifo", "gd*(p)") for c in (4_000, 25_000)]
        results = run_cells(columnar, configs, trace_name=trace.name)
        for config, result in zip(configs, results):
            assert_identical(result, classic(trace, config))

    def test_mixed_interpretations_in_one_pass(self, columnar_of):
        trace = mixed_trace(modify_every=11)
        columnar = columnar_of(trace)
        configs = [SimulationConfig(capacity_bytes=9_000, policy="lru",
                                    size_interpretation=interp)
                   for interp in SizeInterpretation]
        results = run_cells(columnar, configs, trace_name=trace.name)
        for config, result in zip(configs, results):
            assert_identical(result, classic(trace, config))


class TestVectorizedLRULadder:
    def lru_configs(self, capacities, warmup=0.10):
        return [SimulationConfig(capacity_bytes=c, policy="lru",
                                 warmup_fraction=warmup)
                for c in capacities]

    def test_ladder_matches_classic_and_disabled(self, columnar_of):
        trace = mixed_trace()     # stable sizes: ladder-eligible
        columnar = columnar_of(trace)
        capacities = (9_000, 40_000, 200_000)
        fast = run_cells(columnar, self.lru_configs(capacities),
                         trace_name=trace.name)
        slow = run_cells(columnar, self.lru_configs(capacities),
                         trace_name=trace.name, lru_fast_path=False)
        for config, f, s in zip(self.lru_configs(capacities), fast,
                                slow):
            assert_identical(f, s)
            assert_identical(f, classic(trace, config))

    def test_modified_sizes_disqualify_ladder(self, columnar_of):
        trace = mixed_trace(modify_every=13)
        columnar = columnar_of(trace)
        configs = self.lru_configs((4_000, 50_000))
        results = run_cells(columnar, configs, trace_name=trace.name)
        for config, result in zip(configs, results):
            assert_identical(result, classic(trace, config))

    def test_bypass_capacities_disqualify_ladder(self, columnar_of):
        trace = mixed_trace()     # max doc > 5_000
        columnar = columnar_of(trace)
        configs = self.lru_configs((1_000, 2_000))
        results = run_cells(columnar, configs, trace_name=trace.name)
        for config, result in zip(configs, results):
            assert_identical(result, classic(trace, config))

    def test_warmup_ladder(self, columnar_of):
        trace = mixed_trace()
        columnar = columnar_of(trace)
        configs = self.lru_configs((9_000, 60_000), warmup=0.4)
        results = run_cells(columnar, configs, trace_name=trace.name)
        for config, result in zip(configs, results):
            assert_identical(result, classic(trace, config))

    def test_zero_size_documents(self, columnar_of):
        requests = []
        for i in range(200):
            url = f"u{i % 9}"
            size = 0 if i % 9 < 3 else 800
            requests.append(Request(float(i), url, size, size,
                                    DocumentType.HTML))
        trace = Trace(requests, name="zero-size")
        columnar = columnar_of(trace)
        configs = self.lru_configs((800, 2_400, 10_000))
        results = run_cells(columnar, configs, trace_name=trace.name)
        for config, result in zip(configs, results):
            assert_identical(result, classic(trace, config))


class TestFIFOFastPath:
    def test_fifo_shadow_queue_exact(self, columnar_of):
        trace = mixed_trace(modify_every=9)   # invalidations + bypasses
        columnar = columnar_of(trace)
        configs = [SimulationConfig(capacity_bytes=c, policy="fifo",
                                    warmup_fraction=w)
                   for c in (1_500, 9_000, 60_000) for w in (0.0, 0.25)]
        results = run_cells(columnar, configs, trace_name=trace.name)
        for config, result in zip(configs, results):
            assert_identical(result, classic(trace, config))


class TestHintedGreedyDual:
    @pytest.mark.parametrize("policy",
                             ["gds(1)", "gds(p)", "gdsf(1)", "gdsf(p)",
                              "gd*(1)", "gd*(p)"])
    def test_cost_hint_is_bit_identical(self, policy, columnar_of):
        trace = mixed_trace(modify_every=7)
        columnar = columnar_of(trace)
        configs = [
            SimulationConfig(capacity_bytes=c, policy=policy,
                             size_interpretation=interp)
            for c in (4_000, 25_000)
            for interp in (SizeInterpretation.TRUSTED,
                           SizeInterpretation.PAPER_RULE)]
        results = run_cells(columnar, configs, trace_name=trace.name)
        for config, result in zip(configs, results):
            assert_identical(result, classic(trace, config))


class TestAccountingExtras:
    def test_occupancy_latency_ttl_and_cost_report(self, columnar_of):
        from repro.core.cost import PacketCost
        from repro.simulation.freshness import TTLModel
        from repro.simulation.latency import LatencyModel

        trace = mixed_trace()
        columnar = columnar_of(trace)
        configs = [
            SimulationConfig(capacity_bytes=9_000, policy="lru",
                             occupancy_interval=50),
            SimulationConfig(capacity_bytes=9_000, policy="gds(1)",
                             report_cost_model=PacketCost()),
            SimulationConfig(capacity_bytes=9_000, policy="lru",
                             latency_model=LatencyModel()),
            SimulationConfig(capacity_bytes=9_000, policy="lru",
                             ttl_model=TTLModel(default_ttl=120.0)),
        ]
        results = run_cells(columnar, configs, trace_name=trace.name)
        for config, result in zip(configs, results):
            reference = classic(trace, config)
            assert_identical(result, reference)
        assert results[0].occupancy is not None
        occupancy = classic(trace, configs[0]).occupancy
        assert results[0].occupancy.samples == occupancy.samples
        latency = classic(trace, configs[2]).latency
        assert results[2].latency.mean_latency() == \
            latency.mean_latency()
        assert results[2].latency.total_latency() == \
            latency.total_latency()
        for doc_type in DOC_TYPES:
            assert results[2].latency.mean_latency(doc_type) == \
                latency.mean_latency(doc_type)
        assert results[3].ttl_expiries == \
            classic(trace, configs[3]).ttl_expiries


class TestEdgeCases:
    def test_empty_columnar_trace(self, tmp_path):
        from repro.trace.columnar import open_columnar

        path = tmp_path / "empty.rcol"
        write_columnar(path, [], name="empty")
        with open_columnar(path) as columnar:
            results = run_cells(
                columnar,
                [SimulationConfig(capacity_bytes=5_000, policy=p)
                 for p in ("lru", "fifo", "gd*(1)")],
                trace_name="empty")
        for result in results:
            assert result.total_requests == 0
            assert result.metrics.overall.hits == 0

    def test_single_request(self, columnar_of):
        trace = Trace([Request(0.0, "u0", 500, 500,
                               DocumentType.HTML)], name="one")
        columnar = columnar_of(trace)
        configs = [SimulationConfig(capacity_bytes=1_000, policy="lru")]
        (result,) = run_cells(columnar, configs, trace_name="one")
        assert_identical(result, classic(trace, configs[0]))


class TestEntryPoints:
    POLICIES = ["lru", "fifo", "gds(1)", "gd*(p)"]
    CAPACITIES = [4_000, 20_000]

    def write(self, tmp_path, trace):
        path = tmp_path / "t.rcol"
        write_columnar(path, trace.requests, name=trace.name)
        return path

    def grid_sans_name(self, sweep):
        flat = {}
        for policy, per_cap in sweep.grid.items():
            for capacity, cell in per_cap.items():
                d = cell.as_dict()
                d.pop("trace_name", None)  # file sweeps use path stem
                flat[(policy, capacity)] = d
        return flat

    def test_file_sweep_both_engines(self, tmp_path):
        trace = mixed_trace(modify_every=17)
        path = self.write(tmp_path, trace)
        memory = self.grid_sans_name(
            run_sweep(trace, self.POLICIES, self.CAPACITIES))
        percell = self.grid_sans_name(
            run_sweep(path, self.POLICIES, self.CAPACITIES))
        batched = self.grid_sans_name(
            run_sweep(path, self.POLICIES, self.CAPACITIES,
                      engine="batched"))
        assert percell == memory
        assert batched == memory

    def test_columnar_trace_object_sweep(self, tmp_path, columnar_of):
        trace = mixed_trace(modify_every=17)
        columnar = columnar_of(trace)
        memory = run_sweep(trace, self.POLICIES, self.CAPACITIES)
        for engine in ("percell", "batched"):
            direct = run_sweep(columnar, self.POLICIES, self.CAPACITIES,
                               engine=engine)
            assert direct.as_dict() == memory.as_dict()

    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_parallel_columnar_path(self, tmp_path, n_workers):
        trace = mixed_trace(modify_every=17)
        path = self.write(tmp_path, trace)
        serial = self.grid_sans_name(
            run_sweep(trace, self.POLICIES, self.CAPACITIES))
        for engine in ("batched", "percell"):
            parallel = self.grid_sans_name(run_sweep_parallel(
                str(path), self.POLICIES, self.CAPACITIES,
                n_workers=n_workers, engine=engine))
            assert parallel == serial


class TestServiceTrialParity:
    def test_objects_and_columnar_trials_match(self, tmp_path,
                                               monkeypatch):
        from repro.experiments.service import (
            TrialSpec,
            _WorkerTraceCache,
            execute_trial,
        )
        import repro.experiments.service as service

        spec = TrialSpec(trace="dfn", scale=0.01, policy="gd*(1)",
                         size_fraction=0.01, seed=42)
        monkeypatch.delenv("REPRO_TRACE_FORMAT", raising=False)
        monkeypatch.setattr(service, "_TRACES", _WorkerTraceCache())
        objects = execute_trial(spec)
        monkeypatch.setenv("REPRO_TRACE_FORMAT", "columnar")
        monkeypatch.setenv("REPRO_SERVICE_TRACE_DIR",
                           str(tmp_path / "traces"))
        monkeypatch.setattr(service, "_TRACES", _WorkerTraceCache())
        columnar = execute_trial(spec)
        assert columnar == objects
        assert (tmp_path / "traces" / "dfn-0.01-42.rcol").exists()
        # Second execution reuses the spilled file (and still matches).
        assert execute_trial(spec) == objects


class TestTelemetry:
    def test_columnar_pass_events(self, tmp_path, columnar_of):
        from repro.observability.events import EventLog

        trace = mixed_trace()
        columnar = columnar_of(trace)
        configs = [SimulationConfig(capacity_bytes=c, policy=p)
                   for p in ("lru", "fifo", "gds(1)")
                   for c in (9_000, 20_000)]
        with EventLog(tmp_path / "events.jsonl") as log:
            previous = set_event_sink(log)
            try:
                run_cells(columnar, configs, trace_name=trace.name)
            finally:
                set_event_sink(previous)
        (started,) = read_events(tmp_path / "events.jsonl",
                                 "pass_started")
        (finished,) = read_events(tmp_path / "events.jsonl",
                                  "pass_finished")
        assert started["cells"] == len(configs)
        assert started["requests"] == len(trace)
        assert finished["cells"] == len(configs)
        # Both vectorized fast paths fired: 2 plain-LRU ladder cells
        # and 2 FIFO shadow-queue cells.
        assert finished["lru_fast_path_cells"] == 2
        assert finished["fifo_fast_path_cells"] == 2
