"""Tests for cache-size sweeps."""

import pytest

from repro.errors import ConfigurationError
from repro.simulation.sweep import cache_sizes_from_fractions, run_sweep
from repro.types import DocumentType, Request, Trace


def small_trace():
    requests = []
    for i in range(50):
        for url, size, doc_type in (
                ("a", 1000, DocumentType.HTML),
                (f"u{i}", 500, DocumentType.IMAGE),
                ("b", 2000, DocumentType.APPLICATION)):
            requests.append(Request(float(i), url, size, size, doc_type))
    return Trace(requests, name="sweep-test")


class TestCacheSizes:
    def test_fractions_of_trace_bytes(self):
        trace = small_trace()
        total = trace.metadata().total_size_bytes
        sizes = cache_sizes_from_fractions(trace, [0.1, 0.5])
        assert sizes == [int(total * 0.1), int(total * 0.5)]

    def test_sorted_and_deduplicated(self):
        trace = small_trace()
        sizes = cache_sizes_from_fractions(trace, [0.5, 0.1, 0.5])
        assert sizes == sorted(set(sizes))
        assert len(sizes) == 2

    def test_validation(self):
        trace = small_trace()
        with pytest.raises(ConfigurationError):
            cache_sizes_from_fractions(trace, [])
        with pytest.raises(ConfigurationError):
            cache_sizes_from_fractions(trace, [0.0])

    def test_minimum_one_byte(self):
        trace = small_trace()
        assert cache_sizes_from_fractions(trace, [1e-12]) == [1]


class TestRunSweep:
    def test_grid_complete(self):
        trace = small_trace()
        sweep = run_sweep(trace, ["lru", "gds(1)"], [5000, 20_000])
        assert sorted(sweep.policies) == ["gds(1)", "lru"]
        assert sweep.capacities == [5000, 20_000]
        for policy in sweep.policies:
            assert set(sweep.grid[policy]) == {5000, 20_000}

    def test_results_are_independent_runs(self):
        trace = small_trace()
        sweep = run_sweep(trace, ["lru"], [5000, 20_000])
        small = sweep.grid["lru"][5000]
        large = sweep.grid["lru"][20_000]
        assert small.capacity_bytes == 5000
        assert large.hit_rate() >= small.hit_rate()

    def test_series_ordering(self):
        trace = small_trace()
        sweep = run_sweep(trace, ["lru"], [20_000, 5000])
        series = sweep.series("lru")
        assert [cap for cap, _ in series] == [5000, 20_000]

    def test_progress_callback(self):
        calls = []
        run_sweep(small_trace(), ["lru"], [5000],
                  progress=lambda p, c: calls.append((p, c)))
        assert calls == [("lru", 5000)]

    def test_policy_kwargs_forwarded(self):
        trace = small_trace()
        sweep = run_sweep(trace, ["gd*(1)"], [5000],
                          policy_kwargs={"fixed_beta": 0.5})
        result = sweep.grid["gd*(1)"][5000]
        assert result.final_beta == 0.5

    def test_trace_name_propagates(self):
        sweep = run_sweep(small_trace(), ["lru"], [5000])
        assert sweep.trace_name == "sweep-test"
