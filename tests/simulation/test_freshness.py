"""Tests for TTL/freshness modeling."""

import pytest

from repro.errors import ConfigurationError
from repro.simulation.freshness import (
    NEVER_EXPIRES,
    FreshnessTracker,
    TTLModel,
)
from repro.simulation.simulator import simulate
from repro.types import DocumentType, Request, Trace


def req(url, ts, size=100, doc_type=DocumentType.HTML):
    return Request(ts, url, size, size, doc_type)


class TestTTLModel:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TTLModel(default_ttl=0)
        with pytest.raises(ConfigurationError):
            TTLModel(per_type={DocumentType.HTML: -1})

    def test_per_type_lookup(self):
        model = TTLModel(default_ttl=100.0,
                         per_type={DocumentType.HTML: 10.0})
        assert model.ttl_for(DocumentType.HTML) == 10.0
        assert model.ttl_for(DocumentType.IMAGE) == 100.0

    def test_freshness_boundary(self):
        model = TTLModel(default_ttl=10.0)
        assert model.is_fresh(DocumentType.OTHER, 0.0, 10.0)
        assert not model.is_fresh(DocumentType.OTHER, 0.0, 10.1)

    def test_never_expires_default(self):
        model = TTLModel()
        assert model.is_fresh(DocumentType.OTHER, 0.0, 1e15)
        assert model.default_ttl == NEVER_EXPIRES

    def test_typical_proxy_shape(self):
        model = TTLModel.typical_proxy()
        assert model.ttl_for(DocumentType.HTML) < \
            model.ttl_for(DocumentType.IMAGE)


class TestTracker:
    def test_counts_expiries(self):
        tracker = FreshnessTracker(TTLModel(default_ttl=10.0))
        tracker.on_fetch("u", 0.0)
        assert not tracker.expired("u", DocumentType.HTML, 5.0)
        assert tracker.expired("u", DocumentType.HTML, 20.0)
        assert tracker.expiries == 1

    def test_unknown_url_never_expired(self):
        tracker = FreshnessTracker(TTLModel(default_ttl=10.0))
        assert not tracker.expired("ghost", DocumentType.HTML, 1e9)

    def test_refetch_resets_clock(self):
        tracker = FreshnessTracker(TTLModel(default_ttl=10.0))
        tracker.on_fetch("u", 0.0)
        tracker.on_fetch("u", 100.0)
        assert not tracker.expired("u", DocumentType.HTML, 105.0)


class TestSimulatorIntegration:
    def trace(self):
        return Trace([
            req("a", 0.0),
            req("a", 5.0),      # fresh: hit
            req("a", 100.0),    # stale: freshness miss + refetch
            req("a", 105.0),    # fresh again: hit
        ])

    def test_ttl_expiry_turns_hit_into_miss(self):
        model = TTLModel(default_ttl=10.0)
        result = simulate(self.trace(), "lru", 10_000,
                          warmup_fraction=0.0, ttl_model=model)
        assert result.hit_rate() == pytest.approx(0.5)
        assert result.ttl_expiries == 1

    def test_no_ttl_model_is_paper_baseline(self):
        result = simulate(self.trace(), "lru", 10_000,
                          warmup_fraction=0.0)
        assert result.hit_rate() == pytest.approx(0.75)
        assert result.ttl_expiries is None

    def test_infinite_ttl_equals_baseline(self):
        with_model = simulate(self.trace(), "lru", 10_000,
                              warmup_fraction=0.0, ttl_model=TTLModel())
        assert with_model.hit_rate() == pytest.approx(0.75)
        assert with_model.ttl_expiries == 0

    def test_ttl_only_costs_hit_rate(self, tiny_dfn_trace):
        """Freshness enforcement can only add misses relative to the
        paper baseline."""
        capacity = int(tiny_dfn_trace.metadata().total_size_bytes * 0.02)
        baseline = simulate(tiny_dfn_trace, "lru", capacity)
        hour = 3600.0
        strict = simulate(tiny_dfn_trace, "lru", capacity,
                          ttl_model=TTLModel(default_ttl=hour))
        assert strict.hit_rate() <= baseline.hit_rate() + 1e-9
        assert strict.ttl_expiries > 0

    def test_round_trip_serialization(self):
        result = simulate(self.trace(), "lru", 10_000,
                          warmup_fraction=0.0,
                          ttl_model=TTLModel(default_ttl=10.0))
        from repro.simulation.results import SimulationResult
        again = SimulationResult.from_dict(result.as_dict())
        assert again.ttl_expiries == 1
