"""Tests for the trace-driven simulator (paper Section 4.1 semantics)."""

import pytest

from repro.core.registry import make_policy
from repro.errors import ConfigurationError
from repro.simulation.simulator import (
    CacheSimulator,
    SimulationConfig,
    SizeInterpretation,
    simulate,
)
from repro.types import DocumentType, Request, Trace


def req(url, size=100, transfer=None, doc_type=DocumentType.HTML, ts=0.0):
    return Request(ts, url, size, transfer if transfer is not None
                   else size, doc_type)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(capacity_bytes=0).validate()
        with pytest.raises(ConfigurationError):
            SimulationConfig(capacity_bytes=10,
                             warmup_fraction=1.0).validate()
        with pytest.raises(ConfigurationError):
            SimulationConfig(capacity_bytes=10,
                             occupancy_interval=-1).validate()

    def test_policy_by_name_or_instance(self):
        config = SimulationConfig(capacity_bytes=1000, policy="lru")
        assert CacheSimulator(config).policy.name == "lru"
        config2 = SimulationConfig(capacity_bytes=1000,
                                   policy=make_policy("gds(p)"))
        assert CacheSimulator(config2).policy.name == "gds(p)"


class TestBasicAccounting:
    def test_simple_hit_rate(self):
        trace = Trace([req("a"), req("a"), req("a"), req("b")])
        result = simulate(trace, "lru", 10_000, warmup_fraction=0.0)
        assert result.counted_requests == 4
        assert result.hit_rate() == pytest.approx(0.5)  # 2 hits on a

    def test_byte_hit_rate_uses_transfer_sizes(self):
        trace = Trace([req("a", size=1000),
                       req("a", size=1000, transfer=200)])  # interrupted
        result = simulate(trace, "lru", 10_000, warmup_fraction=0.0)
        # Second request hits, serving 200 of 1200 requested bytes.
        assert result.hit_rate() == 0.5
        assert result.byte_hit_rate() == pytest.approx(200 / 1200)

    def test_per_type_breakdown(self):
        trace = Trace([
            req("i", doc_type=DocumentType.IMAGE),
            req("i", doc_type=DocumentType.IMAGE),
            req("m", doc_type=DocumentType.MULTIMEDIA),
        ])
        result = simulate(trace, "lru", 10_000, warmup_fraction=0.0)
        assert result.hit_rate(DocumentType.IMAGE) == 0.5
        assert result.hit_rate(DocumentType.MULTIMEDIA) == 0.0

    def test_modification_counts_as_miss(self):
        """Paper: 'we assume that the document has been modified and
        count the request as a miss.'"""
        trace = Trace([req("a", size=1000), req("a", size=1020)])
        result = simulate(trace, "lru", 10_000, warmup_fraction=0.0)
        assert result.hit_rate() == 0.0
        assert result.invalidations == 1


class TestWarmup:
    def test_warmup_excluded_from_metrics(self):
        """First 10 % fill the cache uncounted."""
        requests = [req(f"u{i}") for i in range(10)] + \
                   [req("u0") for _ in range(10)]
        trace = Trace(requests)
        result = simulate(trace, "lru", 100_000, warmup_fraction=0.5)
        assert result.warmup_requests == 10
        assert result.counted_requests == 10
        assert result.hit_rate() == 1.0  # all counted requests hit

    def test_zero_warmup(self):
        trace = Trace([req("a"), req("a")])
        result = simulate(trace, "lru", 10_000, warmup_fraction=0.0)
        assert result.counted_requests == 2

    def test_warmup_still_fills_cache(self):
        requests = [req("a")] + [req("a")]
        result = simulate(Trace(requests), "lru", 10_000,
                          warmup_fraction=0.5)
        # The single counted request hits thanks to the warm-up fill.
        assert result.hit_rate() == 1.0


class TestSizeInterpretations:
    def make_trace(self):
        """Full fetch, then interrupted fetch, then full fetch."""
        return Trace([
            req("a", size=1000, transfer=1000),
            req("a", size=1000, transfer=300),   # interruption
            req("a", size=1000, transfer=1000),
        ])

    def test_trusted_keeps_cached_copy(self):
        result = simulate(self.make_trace(), "lru", 10_000,
                          warmup_fraction=0.0)
        assert result.hit_rate() == pytest.approx(2 / 3)
        assert result.invalidations == 0

    def test_paper_rule_agrees_with_trusted_here(self):
        result = simulate(self.make_trace(), "lru", 10_000,
                          warmup_fraction=0.0,
                          size_interpretation=SizeInterpretation.PAPER_RULE)
        assert result.hit_rate() == pytest.approx(2 / 3)

    def test_any_change_invalidates_on_interruption(self):
        """Jin & Bestavros' rule: the 300-byte transfer looks like a
        modification, so the third request misses too (size changed
        back)."""
        result = simulate(self.make_trace(), "lru", 10_000,
                          warmup_fraction=0.0,
                          size_interpretation=SizeInterpretation.ANY_CHANGE)
        assert result.hit_rate() == 0.0
        assert result.invalidations == 2

    def test_paper_rule_detects_true_modification(self):
        trace = Trace([
            req("a", size=1000, transfer=1000),
            req("a", size=1020, transfer=1020),   # +2 %: modification
        ])
        result = simulate(trace, "lru", 10_000, warmup_fraction=0.0,
                          size_interpretation=SizeInterpretation.PAPER_RULE)
        assert result.hit_rate() == 0.0


class TestResultFields:
    def test_final_beta_only_for_gdstar(self):
        trace = Trace([req("a"), req("a")])
        lru_result = simulate(trace, "lru", 10_000)
        gdstar_result = simulate(trace, "gd*(1)", 10_000)
        assert lru_result.final_beta is None
        assert gdstar_result.final_beta is not None

    def test_trace_name_recorded(self):
        trace = Trace([req("a")], name="mytrace")
        assert simulate(trace, "lru", 1000).trace_name == "mytrace"

    def test_bypasses_counted(self):
        trace = Trace([req("huge", size=50_000)])
        result = simulate(trace, "lru", 1000, warmup_fraction=0.0)
        assert result.bypasses == 1
        assert result.hit_rate() == 0.0


class TestRunStream:
    def test_stream_with_absolute_warmup(self):
        simulator = CacheSimulator(
            SimulationConfig(capacity_bytes=10_000, policy="lru"))
        requests = iter([req("a"), req("a"), req("a")])
        result = simulator.run_stream(requests, warmup_requests=1)
        assert result.total_requests == 3
        assert result.counted_requests == 2
        assert result.hit_rate() == 1.0

    def test_empty_stream(self):
        simulator = CacheSimulator(
            SimulationConfig(capacity_bytes=10_000, policy="lru"))
        result = simulator.run_stream(iter([]))
        assert result.total_requests == 0
        assert result.hit_rate() == 0.0


class TestOccupancyIntegration:
    def test_occupancy_collected_when_enabled(self):
        trace = Trace([req(f"u{i}") for i in range(30)])
        result = simulate(trace, "lru", 10_000, occupancy_interval=10)
        assert result.occupancy is not None
        assert len(result.occupancy.samples) == 3

    def test_occupancy_disabled_by_default(self):
        trace = Trace([req("a")])
        assert simulate(trace, "lru", 1000).occupancy is None
