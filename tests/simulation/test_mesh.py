"""Tests for the sibling cache mesh."""

import pytest

from repro.errors import ConfigurationError
from repro.simulation.mesh import MeshConfig, MeshSimulator, simulate_mesh
from repro.types import DocumentType, Request, Trace


def req(url, size=100, ts=0.0):
    return Request(ts, url, size, size, DocumentType.HTML)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MeshConfig(0).validate()
        with pytest.raises(ConfigurationError):
            MeshConfig(100, n_proxies=1).validate()
        with pytest.raises(ConfigurationError):
            MeshConfig(100, warmup_fraction=1.0).validate()

    def test_per_proxy_policies(self):
        from repro.core.registry import make_policy
        with pytest.raises(ConfigurationError):
            MeshSimulator(MeshConfig(1000, n_proxies=2),
                          policies=[make_policy("lru")])


class TestSiblingServing:
    def test_sibling_hit_detected(self):
        """Proxy 0 caches on request 0; request 1 (proxy 1) misses
        locally but finds the document at its sibling."""
        trace = Trace([req("shared"), req("shared")])
        result = simulate_mesh(trace, 10_000, n_proxies=2,
                               warmup_fraction=0.0)
        assert result.local_hit_rate == 0.0
        assert result.mesh_hit_rate == 0.5
        assert result.sibling_hits == 1
        assert result.sibling_hit_share == 1.0

    def test_replication_builds_local_hits(self):
        """With replication, the second round of requests hits
        locally at every proxy."""
        trace = Trace([req("shared") for _ in range(6)])
        result = simulate_mesh(trace, 10_000, n_proxies=2,
                               warmup_fraction=0.0,
                               replicate_on_sibling_hit=True)
        # Requests 0,1 miss locally (1 sibling hit); 2..5 hit locally.
        assert result.local.overall.hits == 4
        assert result.mesh_hit_rate == pytest.approx(5 / 6)

    def test_no_replication_keeps_single_owner(self):
        trace = Trace([req("shared") for _ in range(6)])
        result = simulate_mesh(trace, 10_000, n_proxies=2,
                               warmup_fraction=0.0,
                               replicate_on_sibling_hit=False)
        # Proxy 0 owns the document; proxy 1 keeps sibling-hitting.
        assert result.sibling_hits == 3       # requests 1, 3, 5
        assert result.local.overall.hits == 2  # requests 2, 4
        assert result.mesh_hit_rate == pytest.approx(5 / 6)

    def test_stale_sibling_copy_not_served(self):
        """A sibling copy at a different size is stale, not a hit."""
        trace = Trace([
            req("doc", size=1000),    # proxy 0 caches v1
            req("doc", size=1040),    # proxy 1: sibling copy stale
        ])
        result = simulate_mesh(trace, 10_000, n_proxies=2,
                               warmup_fraction=0.0)
        assert result.sibling_hits == 0


class TestMeshTradeoffs:
    def test_mesh_beats_isolated_proxies(self, tiny_dfn_trace):
        """Cooperation must help: the mesh hit rate dominates the
        local-only hit rate."""
        capacity = int(
            tiny_dfn_trace.metadata().total_size_bytes * 0.005)
        result = simulate_mesh(tiny_dfn_trace, capacity, n_proxies=4)
        assert result.mesh_hit_rate > result.local_hit_rate
        assert 0.0 < result.sibling_hit_share < 1.0

    def test_replication_tradeoff(self, tiny_dfn_trace):
        """Replication lifts local hits; without it the pool holds
        more distinct documents (sibling share rises)."""
        capacity = int(
            tiny_dfn_trace.metadata().total_size_bytes * 0.005)
        replicated = simulate_mesh(tiny_dfn_trace, capacity,
                                   n_proxies=4,
                                   replicate_on_sibling_hit=True)
        single_owner = simulate_mesh(tiny_dfn_trace, capacity,
                                     n_proxies=4,
                                     replicate_on_sibling_hit=False)
        assert replicated.local_hit_rate > single_owner.local_hit_rate
        assert single_owner.sibling_hit_share > \
            replicated.sibling_hit_share

    def test_warmup_excluded(self):
        trace = Trace([req("a") for _ in range(10)])
        result = simulate_mesh(trace, 10_000, n_proxies=2,
                               warmup_fraction=0.5)
        assert result.warmup_requests == 5
        assert result.mesh.overall.requests == 5
