"""Fault-injected tests for the resilient parallel sweep runner.

These are the end-to-end proofs of the resilience subsystem: worker
crashes, hangs, and corrupt payloads are injected deterministically
(:mod:`repro.resilience.faults`) and the sweep must still produce
results bit-identical to the serial :func:`run_sweep`.
"""

import pytest

from repro.errors import (
    CellTimeoutError,
    ConfigurationError,
    SimulationError,
    WorkerCrashError,
)
from repro.resilience import CheckpointStore, FaultInjector, FaultSpec
from repro.simulation.parallel import (
    _run_cell,
    _reset_worker,
    cell_key,
    run_sweep_parallel,
)
from repro.simulation.sweep import run_sweep
from repro.types import DocumentType, Request, Trace

POLICIES = ["lru", "lfu-da", "gds(1)", "gd*(1)"]
CAPACITIES = [4000, 12000, 40000]


def small_trace():
    requests = []
    for i in range(300):
        for url, size, doc_type in (
                (f"u{i % 17}", 500, DocumentType.IMAGE),
                (f"h{i % 5}", 1500, DocumentType.HTML),
                (f"m{i % 29}", 4000, DocumentType.MULTIMEDIA)):
            requests.append(Request(float(i), url, size, size, doc_type))
    return Trace(requests, name="resilience-test")


@pytest.fixture(scope="module")
def trace():
    return small_trace()


@pytest.fixture(scope="module")
def serial(trace):
    return run_sweep(trace, POLICIES, CAPACITIES)


def assert_bit_identical(sweep, serial):
    assert sorted(sweep.policies) == sorted(serial.policies)
    assert sweep.capacities == serial.capacities
    for policy in serial.policies:
        for capacity in CAPACITIES:
            assert sweep.grid[policy][capacity].as_dict() == \
                serial.grid[policy][capacity].as_dict(), \
                (policy, capacity)


class TestEndToEndResilience:
    def test_crash_and_hang_recovered_bit_identical(self, trace, serial):
        """The acceptance scenario: a 4x3 grid survives one injected
        worker crash and one injected hang, via retry and timeout."""
        injector = FaultInjector.of(
            FaultSpec(key=cell_key("lfu-da", 12000), kind="crash"),
            FaultSpec(key=cell_key("gd*(1)", 4000), kind="hang",
                      hang_seconds=120.0),
        )
        sweep = run_sweep_parallel(
            trace, POLICIES, CAPACITIES, n_workers=3,
            fault_injector=injector, cell_timeout=2.0, max_retries=2)
        assert sweep.complete
        assert_bit_identical(sweep, serial)

    def test_corrupt_payload_retried_bit_identical(self, trace, serial):
        injector = FaultInjector.corrupt_once(cell_key("lru", 4000))
        sweep = run_sweep_parallel(
            trace, POLICIES, CAPACITIES, n_workers=2,
            fault_injector=injector)
        assert sweep.complete
        assert_bit_identical(sweep, serial)


class TestCrash:
    def test_crash_without_retries_raises_worker_crash(self, trace):
        injector = FaultInjector.crash_once(cell_key("lru", 4000))
        with pytest.raises(WorkerCrashError):
            run_sweep_parallel(trace, ["lru"], [4000], n_workers=2,
                               fault_injector=injector, max_retries=0)

    def test_crash_with_partial_policy_records_failure(self, trace):
        injector = FaultInjector.of(
            FaultSpec(key=cell_key("lru", 4000), kind="crash",
                      attempts=(1, 2, 3, 4)))
        sweep = run_sweep_parallel(
            trace, ["lru", "gds(1)"], [4000], n_workers=2,
            fault_injector=injector, max_retries=1,
            failure_policy="partial")
        assert not sweep.complete
        (failure,) = sweep.failures
        assert (failure.policy, failure.capacity_bytes) == ("lru", 4000)
        assert failure.attempts == 2
        # The healthy cell still completed with its full budget intact.
        assert sweep.grid["gds(1)"][4000].counted_requests > 0


class TestHang:
    def test_hang_without_retries_raises_cell_timeout(self, trace):
        injector = FaultInjector.hang_once(cell_key("lru", 4000),
                                           hang_seconds=60.0)
        with pytest.raises(CellTimeoutError) as info:
            run_sweep_parallel(trace, ["lru"], [4000], n_workers=2,
                               fault_injector=injector,
                               cell_timeout=1.0, max_retries=0)
        assert info.value.timeout_seconds == 1.0

    def test_hang_with_partial_policy_records_timeout(self, trace):
        injector = FaultInjector.of(
            FaultSpec(key=cell_key("lru", 4000), kind="hang",
                      attempts=(1, 2), hang_seconds=60.0))
        sweep = run_sweep_parallel(
            trace, ["lru"], [4000], n_workers=2,
            fault_injector=injector, cell_timeout=1.0, max_retries=1,
            failure_policy="partial")
        (failure,) = sweep.failures
        assert failure.error_type == "CellTimeoutError"
        assert failure.attempts == 2


class TestPermanentErrors:
    def test_deterministic_error_not_retried(self, trace):
        """A bad policy name fails in the worker identically every
        time; it must fail fast, not burn the retry budget."""
        sweep = run_sweep_parallel(
            trace, ["lru", "no-such-policy"], [4000], n_workers=2,
            max_retries=3, failure_policy="partial")
        (failure,) = sweep.failures
        assert failure.policy == "no-such-policy"
        assert failure.attempts == 1
        assert sweep.grid["lru"][4000].counted_requests > 0


class TestValidation:
    def test_bad_failure_policy_rejected(self, trace):
        with pytest.raises(ConfigurationError):
            run_sweep_parallel(trace, ["lru"], [4000],
                               failure_policy="ignore")

    def test_bad_cell_timeout_rejected(self, trace):
        with pytest.raises(ConfigurationError):
            run_sweep_parallel(trace, ["lru"], [4000], cell_timeout=0)

    def test_run_cell_without_initializer_raises_clear_error(self):
        _reset_worker()
        with pytest.raises(SimulationError, match="initializer"):
            _run_cell(("lru", 4000, 0.1, "trusted", 1))


class TestCellCheckpoints:
    def test_completed_cells_checkpointed_and_resumed(self, trace,
                                                      serial, tmp_path):
        store = CheckpointStore(tmp_path)
        first = run_sweep_parallel(trace, POLICIES, CAPACITIES,
                                   n_workers=2, checkpoint_store=store)
        assert_bit_identical(first, serial)
        keys = store.completed_keys()
        assert len(keys) == len(POLICIES) * len(CAPACITIES)
        assert cell_key("lru", 4000) in keys
        # A rerun adopts every checkpointed cell (even with a fault
        # injector primed to crash everything: nothing executes).
        injector = FaultInjector.of(*[
            FaultSpec(key=cell_key(p, c), kind="crash",
                      attempts=(1, 2, 3))
            for p in POLICIES for c in CAPACITIES])
        resumed = run_sweep_parallel(
            trace, POLICIES, CAPACITIES, n_workers=2,
            checkpoint_store=store, fault_injector=injector,
            max_retries=0)
        assert_bit_identical(resumed, serial)

    def test_partial_checkpoints_rerun_only_missing_cells(
            self, trace, serial, tmp_path):
        store = CheckpointStore(tmp_path)
        # Seed the store with an interrupted run: only lru cells done.
        run_sweep_parallel(trace, ["lru"], CAPACITIES, n_workers=1,
                           checkpoint_store=store)
        assert len(store.completed_keys()) == len(CAPACITIES)
        # Crash injectors on the already-done cells prove they are
        # loaded, not rerun; the missing cells run normally.
        injector = FaultInjector.of(*[
            FaultSpec(key=cell_key("lru", c), kind="crash",
                      attempts=(1, 2, 3))
            for c in CAPACITIES])
        sweep = run_sweep_parallel(
            trace, POLICIES, CAPACITIES, n_workers=2,
            checkpoint_store=store, fault_injector=injector,
            max_retries=0)
        assert_bit_identical(sweep, serial)
        assert len(store.completed_keys()) == \
            len(POLICIES) * len(CAPACITIES)
