"""Tests for per-type occupancy tracking (Figure 1 machinery)."""

import pytest

from repro.core.cache import Cache
from repro.core.lru import LRUPolicy
from repro.simulation.occupancy import OccupancyTracker
from repro.types import DOCUMENT_TYPES, DocumentType


def loaded_cache():
    cache = Cache(10_000, LRUPolicy())
    cache.reference("i1", 100, DocumentType.IMAGE)
    cache.reference("i2", 100, DocumentType.IMAGE)
    cache.reference("m1", 800, DocumentType.MULTIMEDIA)
    return cache


def test_validates_interval():
    with pytest.raises(ValueError):
        OccupancyTracker(0)


def test_snapshot_fractions():
    sample = OccupancyTracker.snapshot(loaded_cache(), 3)
    assert sample.resident_documents == 3
    assert sample.resident_bytes == 1000
    assert sample.document_fraction[DocumentType.IMAGE] == \
        pytest.approx(2 / 3)
    assert sample.byte_fraction[DocumentType.IMAGE] == pytest.approx(0.2)
    assert sample.byte_fraction[DocumentType.MULTIMEDIA] == \
        pytest.approx(0.8)


def test_fractions_sum_to_one():
    sample = OccupancyTracker.snapshot(loaded_cache(), 1)
    assert sum(sample.document_fraction.values()) == pytest.approx(1.0)
    assert sum(sample.byte_fraction.values()) == pytest.approx(1.0)


def test_empty_cache_all_zero():
    cache = Cache(1000, LRUPolicy())
    sample = OccupancyTracker.snapshot(cache, 0)
    assert all(v == 0.0 for v in sample.document_fraction.values())
    assert sample.resident_bytes == 0


def test_maybe_sample_cadence():
    tracker = OccupancyTracker(sample_interval=5)
    cache = loaded_cache()
    for index in range(1, 21):
        tracker.maybe_sample(cache, index)
    assert [s.request_index for s in tracker.samples] == [5, 10, 15, 20]


def test_series_and_mean():
    tracker = OccupancyTracker(sample_interval=1)
    cache = loaded_cache()
    tracker.maybe_sample(cache, 1)
    cache.reference("m2", 800, DocumentType.MULTIMEDIA)
    tracker.maybe_sample(cache, 2)
    series = tracker.series(DocumentType.MULTIMEDIA,
                            bytes_not_documents=True)
    assert len(series) == 2
    assert series[0][1] < series[1][1]
    mean = tracker.mean_fraction(DocumentType.MULTIMEDIA, True)
    assert series[0][1] < mean < series[1][1]


def test_variability_spread():
    tracker = OccupancyTracker(sample_interval=1)
    cache = Cache(10_000, LRUPolicy())
    cache.reference("i1", 100, DocumentType.IMAGE)
    tracker.maybe_sample(cache, 1)           # image share 1.0
    cache.reference("m1", 900, DocumentType.MULTIMEDIA)
    tracker.maybe_sample(cache, 2)           # image byte share 0.1
    assert tracker.variability(DocumentType.IMAGE, True) == \
        pytest.approx(0.9)


def test_empty_tracker_stats():
    tracker = OccupancyTracker()
    assert tracker.mean_fraction(DocumentType.IMAGE) == 0.0
    assert tracker.variability(DocumentType.IMAGE) == 0.0


def test_round_trip_dict():
    tracker = OccupancyTracker(sample_interval=2)
    cache = loaded_cache()
    tracker.maybe_sample(cache, 2)
    again = OccupancyTracker.from_dict(tracker.as_dict())
    assert again.sample_interval == 2
    assert len(again.samples) == 1
    for doc_type in DOCUMENT_TYPES:
        assert again.samples[0].byte_fraction[doc_type] == \
            tracker.samples[0].byte_fraction[doc_type]
