"""Tests for cost-savings accounting."""

import pytest

from repro.core.cost import ConstantCost, PacketCost
from repro.simulation.simulator import SimulationConfig, CacheSimulator, simulate
from repro.types import DocumentType, Request, Trace


def req(url, size=100, ts=0.0):
    return Request(ts, url, size, size, DocumentType.HTML)


def test_disabled_by_default():
    trace = Trace([req("a"), req("a")])
    result = simulate(trace, "lru", 10_000, warmup_fraction=0.0)
    assert result.cost_savings_ratio() == 0.0
    assert result.metrics.overall.requested_cost == 0.0


def test_constant_cost_savings_equals_hit_rate():
    """Under c(p)=1, cost savings IS the hit rate — the paper's point
    about the constant cost model."""
    trace = Trace([req("a"), req("b", size=5000), req("a"),
                   req("c"), req("a")])
    result = simulate(trace, "lru", 100_000, warmup_fraction=0.0,
                      report_cost_model=ConstantCost())
    assert result.cost_savings_ratio() == pytest.approx(
        result.hit_rate())


def test_packet_cost_savings_tracks_bytes():
    """Under packet cost, savings weight large documents heavily —
    closer to the byte hit rate than to the hit rate."""
    trace = Trace([
        req("small", size=100), req("big", size=1_000_000),
        req("small", size=100), req("small", size=100),
        req("big", size=1_000_000),
    ])
    result = simulate(trace, "lru", 10_000_000, warmup_fraction=0.0,
                      report_cost_model=PacketCost())
    savings = result.cost_savings_ratio()
    assert abs(savings - result.byte_hit_rate()) < \
        abs(savings - result.hit_rate())


def test_per_type_savings():
    trace = Trace([
        Request(0, "i", 100, 100, DocumentType.IMAGE),
        Request(1, "i", 100, 100, DocumentType.IMAGE),
        Request(2, "m", 100, 100, DocumentType.MULTIMEDIA),
    ])
    result = simulate(trace, "lru", 10_000, warmup_fraction=0.0,
                      report_cost_model=ConstantCost())
    assert result.cost_savings_ratio(DocumentType.IMAGE) == 0.5
    assert result.cost_savings_ratio(DocumentType.MULTIMEDIA) == 0.0


def test_round_trip_serialization():
    trace = Trace([req("a"), req("a")])
    result = simulate(trace, "lru", 10_000, warmup_fraction=0.0,
                      report_cost_model=PacketCost())
    from repro.simulation.results import SimulationResult
    again = SimulationResult.from_dict(result.as_dict())
    assert again.cost_savings_ratio() == pytest.approx(
        result.cost_savings_ratio())


def test_gds_optimizes_its_own_cost_model(tiny_dfn_trace):
    """GDS(P) should save at least as much packet cost as GDS(1) does,
    measured under the packet model — each variant is tuned to its own
    objective."""
    capacity = int(tiny_dfn_trace.metadata().total_size_bytes * 0.02)
    savings = {}
    for policy in ("gds(1)", "gds(p)"):
        result = simulate(tiny_dfn_trace, policy, capacity,
                          report_cost_model=PacketCost())
        savings[policy] = result.cost_savings_ratio()
    assert savings["gds(p)"] >= savings["gds(1)"] - 0.02
