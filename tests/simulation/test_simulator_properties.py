"""Property-based tests on the simulator's accounting invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.simulator import simulate
from repro.types import DOCUMENT_TYPES, DocumentType, Request, Trace

DOC_TYPES = list(DocumentType)

trace_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=12),    # url id
        st.integers(min_value=1, max_value=5000),  # size
        st.integers(min_value=0, max_value=4),     # type index
        st.floats(min_value=0.05, max_value=1.0),  # transfer fraction
    ),
    min_size=1, max_size=120,
).map(lambda rows: Trace([
    Request(float(i), f"u{url_id}", size,
            max(int(size * fraction), 1), DOC_TYPES[type_index])
    for i, (url_id, size, type_index, fraction) in enumerate(rows)
]))


@settings(max_examples=40, deadline=None)
@given(trace=trace_strategy,
       capacity=st.integers(min_value=100, max_value=20_000),
       policy=st.sampled_from(["lru", "lfu-da", "gds(1)", "gd*(p)",
                               "slru", "size"]))
def test_accounting_invariants(trace, capacity, policy):
    result = simulate(trace, policy, capacity, warmup_fraction=0.0)
    overall = result.metrics.overall
    # Every request counted exactly once.
    assert overall.requests == len(trace)
    # Hits bounded by requests; bytes consistent.
    assert 0 <= overall.hits <= overall.requests
    assert 0 <= overall.hit_bytes <= overall.requested_bytes
    assert 0.0 <= result.hit_rate() <= 1.0
    assert 0.0 <= result.byte_hit_rate() <= 1.0
    # Per-type accumulators partition the overall exactly.
    assert sum(result.metrics.by_type[t].requests
               for t in DOCUMENT_TYPES) == overall.requests
    assert sum(result.metrics.by_type[t].hits
               for t in DOCUMENT_TYPES) == overall.hits
    assert sum(result.metrics.by_type[t].requested_bytes
               for t in DOCUMENT_TYPES) == overall.requested_bytes


@settings(max_examples=30, deadline=None)
@given(trace=trace_strategy,
       capacity=st.integers(min_value=100, max_value=20_000))
def test_warmup_only_shrinks_counted_population(trace, capacity):
    full = simulate(trace, "lru", capacity, warmup_fraction=0.0)
    warmed = simulate(trace, "lru", capacity, warmup_fraction=0.3)
    assert warmed.counted_requests <= full.counted_requests
    assert warmed.counted_requests == \
        len(trace) - int(len(trace) * 0.3)


@settings(max_examples=30, deadline=None)
@given(trace=trace_strategy,
       capacity=st.integers(min_value=100, max_value=20_000))
def test_first_reference_never_hits(trace, capacity):
    """Hit count is bounded by repeat references (no cache invents
    hits for documents never seen)."""
    result = simulate(trace, "lru", capacity, warmup_fraction=0.0)
    distinct = len({r.url for r in trace})
    repeats = len(trace) - distinct
    assert result.metrics.overall.hits <= repeats


@settings(max_examples=20, deadline=None)
@given(trace=trace_strategy)
def test_infinite_cache_hits_all_repeats_of_stable_documents(trace):
    """With capacity above total bytes, the only misses are first
    references and modifications."""
    capacity = sum(r.size for r in trace) + 1
    result = simulate(trace, "lru", capacity, warmup_fraction=0.0)
    distinct = len({r.url for r in trace})
    misses = result.metrics.overall.requests - \
        result.metrics.overall.hits
    assert misses >= distinct          # at least the cold misses
    assert misses <= distinct + result.invalidations
