"""Tests for the two-level hierarchy simulator."""

import pytest

from repro.errors import ConfigurationError
from repro.simulation.hierarchy import (
    HierarchyConfig,
    HierarchySimulator,
    simulate_hierarchy,
)
from repro.types import DocumentType, Request, Trace


def req(url, size=100, doc_type=DocumentType.HTML, ts=0.0):
    return Request(ts, url, size, size, doc_type)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HierarchyConfig(0, 100).validate()
        with pytest.raises(ConfigurationError):
            HierarchyConfig(100, 100, n_children=0).validate()
        with pytest.raises(ConfigurationError):
            HierarchyConfig(100, 100, warmup_fraction=1.0).validate()


class TestAccounting:
    def test_child_hit_never_reaches_parent(self):
        """Single child, repeated document: only the first request (a
        child miss) reaches the parent."""
        trace = Trace([req("a"), req("a"), req("a")])
        result = simulate_hierarchy(trace, 10_000, 10_000,
                                    n_children=1, warmup_fraction=0.0)
        assert result.child.overall.requests == 3
        assert result.parent.overall.requests == 1   # only the miss
        assert result.child_hit_rate == pytest.approx(2 / 3)
        assert result.hierarchy_hit_rate == pytest.approx(2 / 3)

    def test_parent_serves_cross_child_sharing(self):
        """Two children alternate requests to the same document: each
        child's first touch misses locally but the second child's miss
        hits the parent (warmed by the first child's miss)."""
        trace = Trace([req("shared"), req("shared"),
                       req("shared"), req("shared")])
        result = simulate_hierarchy(trace, 10_000, 10_000,
                                    n_children=2, warmup_fraction=0.0)
        # Round-robin: child0 gets requests 0,2; child1 gets 1,3.
        # Request 0: child0 miss, parent miss. Request 1: child1 miss,
        # parent HIT. Requests 2,3: child hits.
        assert result.child_hit_rate == pytest.approx(0.5)
        assert result.parent.overall.hits == 1
        assert result.hierarchy_hit_rate == pytest.approx(0.75)

    def test_hierarchy_rate_bounds(self):
        trace = Trace([req(f"u{i % 7}") for i in range(100)])
        result = simulate_hierarchy(trace, 300, 2000, n_children=2,
                                    warmup_fraction=0.0)
        assert result.hierarchy_hit_rate >= result.child_hit_rate
        assert 0.0 <= result.origin_byte_rate <= 1.0

    def test_warmup_excluded(self):
        trace = Trace([req("a") for _ in range(10)])
        result = simulate_hierarchy(trace, 10_000, 10_000,
                                    n_children=1, warmup_fraction=0.5)
        assert result.warmup_requests == 5
        assert result.child.overall.requests == 5
        assert result.child_hit_rate == 1.0


class TestFilteringEffect:
    def test_parent_sees_weaker_locality(self, tiny_dfn_trace):
        """The classic hierarchy observation: a parent behind child
        caches posts a much lower hit rate than the same cache would
        standalone, because the children strip the locality."""
        from repro.simulation.simulator import simulate

        total = tiny_dfn_trace.metadata().total_size_bytes
        parent_capacity = int(total * 0.02)
        child_capacity = int(total * 0.005)

        hierarchy = simulate_hierarchy(
            tiny_dfn_trace, child_capacity, parent_capacity,
            n_children=4)
        standalone = simulate(tiny_dfn_trace, "lru", parent_capacity)

        assert hierarchy.parent_hit_rate < standalone.hit_rate()
        # But the hierarchy as a whole beats any single child.
        assert hierarchy.hierarchy_hit_rate > hierarchy.child_hit_rate

    def test_policy_choice_per_level(self, tiny_dfn_trace):
        total = tiny_dfn_trace.metadata().total_size_bytes
        result = simulate_hierarchy(
            tiny_dfn_trace, int(total * 0.005), int(total * 0.02),
            child_policy="gd*(1)", parent_policy="gds(p)",
            n_children=2)
        assert 0.0 <= result.hierarchy_hit_rate <= 1.0

    def test_modified_documents_handled_at_both_levels(self):
        trace = Trace([
            req("a", size=1000),
            req("a", size=1020),   # modified
            req("a", size=1020),
        ])
        result = simulate_hierarchy(trace, 10_000, 10_000,
                                    n_children=1, warmup_fraction=0.0)
        # Request 1 misses (first); request 2 misses at child AND the
        # parent invalidates its stale copy; request 3 hits at child.
        assert result.child.overall.hits == 1
        sim = HierarchySimulator(HierarchyConfig(10_000, 10_000,
                                                 n_children=1))
        assert sim  # constructible with config object too
