"""Hierarchical span tracing: tree structure, events, propagation."""

import pytest

from repro.observability.events import (
    EventLog,
    read_events,
    set_event_sink,
    validate_event,
)
from repro.observability.trace import (
    NullTracer,
    Tracer,
    adopt,
    disable_tracing,
    enable_tracing,
    get_tracer,
    inject,
    set_tracer,
    span,
)


@pytest.fixture(autouse=True)
def _clean_globals():
    yield
    set_event_sink(None)
    disable_tracing()


@pytest.fixture
def sink(tmp_path):
    log = EventLog(tmp_path / "events.jsonl")
    set_event_sink(log)
    yield tmp_path / "events.jsonl"
    log.close()


class TestNullDefault:
    def test_default_tracer_is_disabled(self):
        disable_tracing()
        assert get_tracer().enabled is False

    def test_null_span_is_shared_noop(self, sink):
        disable_tracing()
        with span("anything", key="value") as opened:
            opened.set_attribute("more", 1)
            opened.set_status("error")
        assert read_events(sink) == []

    def test_inject_returns_none_when_disabled(self):
        disable_tracing()
        assert inject() is None

    def test_adopt_is_noop_on_null_tracer(self):
        disable_tracing()
        adopt({"trace_id": "t", "span_id": "s"})
        assert NullTracer.remote_context is None


class TestSpanTree:
    def test_root_and_child_share_trace_id(self, sink):
        enable_tracing()
        with span("outer") as outer:
            with span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_sibling_spans_share_parent(self, sink):
        enable_tracing()
        with span("outer") as outer:
            with span("first") as first:
                pass
            with span("second") as second:
                pass
        assert first.parent_id == outer.span_id
        assert second.parent_id == outer.span_id
        assert first.span_id != second.span_id

    def test_new_roots_get_new_traces(self, sink):
        enable_tracing()
        with span("one") as one:
            pass
        with span("two") as two:
            pass
        assert one.trace_id != two.trace_id

    def test_exception_marks_error_status(self, sink):
        enable_tracing()
        with pytest.raises(ValueError):
            with span("failing") as failing:
                raise ValueError("boom")
        assert failing.status == "error"
        (event,) = read_events(sink, event="span")
        assert event["status"] == "error"

    def test_end_is_idempotent(self, sink):
        enable_tracing()
        opened = span("once")
        opened.end()
        first_duration = opened.duration_seconds
        opened.end("error")
        assert opened.duration_seconds == first_duration
        assert opened.status == "ok"
        assert len(read_events(sink, event="span")) == 1

    def test_leaked_child_is_dropped_when_parent_ends(self, sink):
        enable_tracing()
        outer = span("outer")
        span("leaked")  # never ended
        outer.end()
        tracer = get_tracer()
        assert tracer.current_span() is None
        with span("fresh") as fresh:
            assert fresh.parent_id is None


class TestSpanEvents:
    def test_emits_started_and_ended_events(self, sink):
        enable_tracing()
        with span("work", cells=4):
            pass
        events = read_events(sink)
        assert [e["event"] for e in events] == ["span_started", "span"]
        started, ended = events
        assert started["name"] == ended["name"] == "work"
        assert started["span_id"] == ended["span_id"]
        assert ended["attributes"] == {"cells": 4}
        assert ended["duration_seconds"] >= 0
        for event in events:
            assert validate_event(event) == []

    def test_attributes_set_mid_flight_are_emitted(self, sink):
        enable_tracing()
        with span("work") as working:
            working.set_attribute("late", True)
        (ended,) = read_events(sink, event="span")
        assert ended["attributes"]["late"] is True


class TestCrossProcessContext:
    def test_inject_captures_current_position(self, sink):
        enable_tracing()
        with span("parent") as parent:
            context = inject()
        assert context == {"trace_id": parent.trace_id,
                           "span_id": parent.span_id}

    def test_adopted_context_parents_new_roots(self, sink):
        enable_tracing()
        adopt({"trace_id": "remote-trace", "span_id": "remote-span"})
        with span("worker-root") as root:
            pass
        assert root.trace_id == "remote-trace"
        assert root.parent_id == "remote-span"

    def test_adopt_none_clears(self, sink):
        enable_tracing()
        adopt({"trace_id": "t", "span_id": "s"})
        adopt(None)
        with span("root") as root:
            pass
        assert root.parent_id is None

    def test_local_parent_beats_remote_context(self, sink):
        enable_tracing()
        adopt({"trace_id": "remote-trace", "span_id": "remote-span"})
        with span("root") as root:
            with span("child") as child:
                pass
        assert child.parent_id == root.span_id


class TestProcessGlobal:
    def test_enable_installs_fresh_tracer(self):
        first = enable_tracing()
        second = enable_tracing()
        assert get_tracer() is second
        assert first is not second

    def test_set_tracer_returns_previous(self):
        mine = Tracer()
        previous = set_tracer(mine)
        try:
            assert get_tracer() is mine
        finally:
            set_tracer(previous)

    def test_set_none_restores_null(self):
        enable_tracing()
        set_tracer(None)
        assert get_tracer().enabled is False

    def test_threads_get_independent_stacks(self, sink):
        import threading
        enable_tracing()
        seen = {}

        def worker():
            with span("thread-root") as root:
                seen["parent"] = root.parent_id

        with span("main-root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # the other thread's root must NOT parent to main's span
        assert seen["parent"] is None
