"""Run manifests, TelemetryRun lifecycle, and offline validation."""

import json

import pytest

from repro.observability.events import emit, read_events, set_event_sink
from repro.observability.manifest import (
    EVENTS_FILENAME,
    MANIFEST_FILENAME,
    MANIFEST_REQUIRED_KEYS,
    RunManifest,
    TelemetryRun,
    host_info,
)
from repro.observability import validate as validate_mod
from repro.observability.validate import (
    validate_events_file,
    validate_manifest_dict,
    validate_telemetry_dir,
)


@pytest.fixture(autouse=True)
def _null_sink_after():
    yield
    set_event_sink(None)


class TestHostInfo:
    def test_fields(self):
        info = host_info()
        assert {"hostname", "platform", "python",
                "cpu_count", "pid"} <= set(info)
        assert info["cpu_count"] >= 1


class TestRunManifest:
    def test_create_defaults(self):
        manifest = RunManifest.create("sweep", {"trace": "dfn"})
        assert manifest.kind == "sweep"
        assert manifest.status == "running"
        assert len(manifest.run_id) == 12
        assert manifest.config_hash
        assert manifest.wall_clock_seconds is None

    def test_as_dict_carries_required_keys(self):
        data = RunManifest.create("suite").as_dict()
        assert MANIFEST_REQUIRED_KEYS <= set(data)

    def test_settings_change_the_hash(self):
        a = RunManifest.create("sweep", {"seed": 1})
        b = RunManifest.create("sweep", {"seed": 2})
        assert a.config_hash != b.config_hash

    def test_round_trip(self, tmp_path):
        manifest = RunManifest.create("suite", {"scale": "tiny"})
        manifest.status = "complete"
        manifest.wall_clock_seconds = 1.25
        path = manifest.write(tmp_path / "manifest.json")
        loaded = RunManifest.load(path)
        assert loaded.as_dict() == manifest.as_dict()

    def test_write_is_atomic(self, tmp_path):
        manifest = RunManifest.create("suite")
        manifest.write(tmp_path / "manifest.json")
        # No stray temp file left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["manifest.json"]


class TestTelemetryRun:
    def test_creates_manifest_and_events(self, tmp_path):
        run = TelemetryRun(tmp_path / "run", kind="sweep",
                           settings={"trace": "t"}, install_sink=False)
        on_disk = json.loads(
            (tmp_path / "run" / MANIFEST_FILENAME).read_text())
        assert on_disk["status"] == "running"
        run.finalize("complete")
        on_disk = json.loads(
            (tmp_path / "run" / MANIFEST_FILENAME).read_text())
        assert on_disk["status"] == "complete"
        assert on_disk["wall_clock_seconds"] >= 0
        events = read_events(tmp_path / "run" / EVENTS_FILENAME)
        assert events[0]["event"] == "run_started"
        assert events[-1]["event"] == "run_finished"
        assert events[-1]["run_id"] == run.manifest.run_id

    def test_finalize_idempotent(self, tmp_path):
        run = TelemetryRun(tmp_path, kind="sweep", install_sink=False)
        run.finalize("partial")
        run.finalize("complete")  # ignored: first call wins
        assert RunManifest.load(
            tmp_path / MANIFEST_FILENAME).status == "partial"
        finished = read_events(tmp_path / EVENTS_FILENAME,
                               "run_finished")
        assert len(finished) == 1

    def test_install_sink_routes_global_emit(self, tmp_path):
        run = TelemetryRun(tmp_path, kind="suite", install_sink=True)
        emit("experiment_started", experiment_id="fig2")
        run.finalize("complete")
        events = read_events(tmp_path / EVENTS_FILENAME,
                             "experiment_started")
        assert events and events[0]["experiment_id"] == "fig2"
        # The sink is restored: further emits go nowhere.
        assert emit("experiment_started", experiment_id="x") == {}

    def test_context_manager_failure_status(self, tmp_path):
        with pytest.raises(RuntimeError):
            with TelemetryRun(tmp_path, kind="sweep",
                              install_sink=False):
                raise RuntimeError("boom")
        assert RunManifest.load(
            tmp_path / MANIFEST_FILENAME).status == "failed"


class TestValidation:
    def _finalized_dir(self, tmp_path):
        TelemetryRun(tmp_path, kind="sweep",
                     install_sink=False).finalize("complete")
        return tmp_path

    def test_valid_directory_passes(self, tmp_path):
        assert validate_telemetry_dir(self._finalized_dir(tmp_path)) == []

    def test_missing_directory(self, tmp_path):
        problems = validate_telemetry_dir(tmp_path / "nope")
        assert problems and "not a directory" in problems[0]

    def test_missing_files_reported(self, tmp_path):
        problems = validate_telemetry_dir(tmp_path)
        assert any(MANIFEST_FILENAME in p for p in problems)
        assert any(EVENTS_FILENAME in p for p in problems)

    def test_running_manifest_flagged(self, tmp_path):
        TelemetryRun(tmp_path, kind="sweep", install_sink=False)
        problems = validate_telemetry_dir(tmp_path)
        assert any("never finalized" in p for p in problems)

    def test_manifest_missing_keys(self):
        problems = validate_manifest_dict({"status": "complete"})
        assert any("'run_id'" in p for p in problems)

    def test_events_seq_must_increase(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text(
            '{"ts": 1, "seq": 2, "event": "pool_rebuilt", "reason": "x"}\n'
            '{"ts": 2, "seq": 1, "event": "pool_rebuilt", "reason": "y"}\n')
        problems = validate_events_file(path)
        assert any("not increasing" in p for p in problems)

    def test_events_bad_json_reported(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text("not json\n")
        assert any("not JSON" in p for p in validate_events_file(path))

    def test_empty_events_reported(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text("\n")
        assert any("no events" in p for p in validate_events_file(path))

    def test_cli_ok(self, tmp_path, capsys):
        directory = self._finalized_dir(tmp_path)
        assert validate_mod.main([str(directory)]) == 0
        assert capsys.readouterr().out.startswith("OK:")

    def test_cli_invalid(self, tmp_path, capsys):
        assert validate_mod.main([str(tmp_path)]) == 1
        assert "INVALID:" in capsys.readouterr().err
