"""Progress heartbeat: rate limiting, ETA, formatting."""

import io

from repro.observability.progress import ProgressReporter, _format_seconds


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make(total=10, **kwargs):
    clock = FakeClock()
    stream = io.StringIO()
    reporter = ProgressReporter(total=total, label="suite",
                                stream=stream, min_interval=10.0,
                                clock=clock, **kwargs)
    return reporter, clock, stream


class TestRateLimiting:
    def test_first_update_prints(self):
        reporter, _, stream = make()
        reporter.update(detail="fig1")
        assert reporter.lines_printed == 1
        assert stream.getvalue().count("\n") == 1

    def test_updates_inside_interval_suppressed(self):
        reporter, clock, _ = make()
        reporter.update()
        clock.now = 3.0
        reporter.update()
        clock.now = 9.0
        reporter.update()
        assert reporter.lines_printed == 1
        assert reporter.done == 3

    def test_prints_again_after_interval(self):
        reporter, clock, _ = make()
        reporter.update()
        clock.now = 11.0
        reporter.update()
        assert reporter.lines_printed == 2

    def test_completion_always_prints(self):
        reporter, _, _ = make(total=2)
        reporter.update()   # prints (first)
        reporter.update()   # prints despite interval: done == total
        assert reporter.lines_printed == 2

    def test_finish_always_prints(self):
        reporter, _, stream = make()
        reporter.update()
        reporter.finish()
        assert reporter.lines_printed == 2
        assert "done" in stream.getvalue().splitlines()[-1]


class TestFormatting:
    def test_line_shape(self):
        reporter, clock, stream = make(total=4)
        clock.now = 8.0
        reporter.update(detail="fig2")
        line = stream.getvalue().strip()
        assert line.startswith("[suite] 1/4 (25.0%)")
        assert "elapsed 8s" in line
        assert "eta 24s" in line
        assert line.endswith("| fig2")

    def test_no_eta_when_complete(self):
        reporter, _, stream = make(total=1)
        reporter.update()
        assert "eta" not in stream.getvalue()

    def test_unknown_total_prints_bare_count(self):
        reporter, _, stream = make(total=0)
        reporter.update()
        line = stream.getvalue()
        assert "[suite] 1 " in line
        assert "%" not in line

    def test_explicit_done(self):
        reporter, _, _ = make()
        reporter.update(done=7)
        assert reporter.done == 7


class TestFormatSeconds:
    def test_units(self):
        assert _format_seconds(42) == "42s"
        assert _format_seconds(90) == "1.5m"
        assert _format_seconds(5400) == "1.5h"
