"""Event log append/replay semantics and the event schemas."""

import json

import pytest

from repro.observability.events import (
    EVENT_FIELD_TYPES,
    EVENT_SCHEMAS,
    EventLog,
    NullEventLog,
    emit,
    event_sink,
    iter_events,
    read_events,
    set_event_sink,
    validate_event,
)


@pytest.fixture(autouse=True)
def _null_sink_after():
    yield
    set_event_sink(None)


class TestEventLog:
    def test_records_ts_seq_and_fields(self, tmp_path):
        ticks = iter([100.0, 101.5])
        log = EventLog(tmp_path / "events.jsonl",
                       clock=lambda: next(ticks))
        first = log.emit("cell_scheduled", key="lru@1", attempt=1)
        second = log.emit("cell_finished", key="lru@1", attempt=1,
                          duration_seconds=1.5)
        log.close()
        assert first == {"ts": 100.0, "seq": 1,
                         "event": "cell_scheduled",
                         "key": "lru@1", "attempt": 1}
        assert second["seq"] == 2
        lines = (tmp_path / "events.jsonl").read_text().splitlines()
        assert [json.loads(l)["seq"] for l in lines] == [1, 2]

    def test_lines_survive_without_close(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        log.emit("pool_rebuilt", reason="worker crash")
        # Flushed per line: readable while the log is still open.
        assert read_events(tmp_path / "events.jsonl")
        log.close()

    def test_creates_parent_directories(self, tmp_path):
        log = EventLog(tmp_path / "deep" / "dir" / "events.jsonl")
        log.emit("pool_rebuilt", reason="test")
        log.close()
        assert (tmp_path / "deep" / "dir" / "events.jsonl").exists()

    def test_context_manager_closes(self, tmp_path):
        with EventLog(tmp_path / "e.jsonl") as log:
            log.emit("pool_rebuilt", reason="x")
        assert log._stream.closed
        log.close()  # idempotent


class TestReaders:
    def test_read_events_filters_by_name(self, tmp_path):
        with EventLog(tmp_path / "e.jsonl") as log:
            log.emit("cell_scheduled", key="a", attempt=1)
            log.emit("cell_finished", key="a", attempt=1,
                     duration_seconds=0.1)
            log.emit("cell_scheduled", key="b", attempt=1)
        assert len(read_events(tmp_path / "e.jsonl")) == 3
        scheduled = read_events(tmp_path / "e.jsonl", "cell_scheduled")
        assert [r["key"] for r in scheduled] == ["a", "b"]

    def test_iter_events_skips_blank_lines(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text('{"ts": 1, "seq": 1, "event": "x"}\n\n'
                        '{"ts": 2, "seq": 2, "event": "y"}\n')
        assert len(list(iter_events(path))) == 2


class TestValidateEvent:
    def test_every_schema_entry_is_satisfiable(self):
        for name, fields in EVENT_SCHEMAS.items():
            event = {"ts": 1.0, "seq": 1, "event": name}
            typed = EVENT_FIELD_TYPES.get(name, {})
            for field in fields:
                allowed = typed.get(field, (int,))
                event[field] = "x" if allowed[0] is str else 0
            assert validate_event(event) == [], name

    def test_missing_required_field(self):
        event = {"ts": 1.0, "seq": 1, "event": "cell_retried",
                 "key": "lru@1", "attempt": 2}
        problems = validate_event(event)
        assert len(problems) == 1
        assert "delay_seconds" in problems[0]
        assert "error_type" in problems[0]

    def test_unknown_event_type(self):
        problems = validate_event(
            {"ts": 1.0, "seq": 1, "event": "cell_teleported"})
        assert any("unknown event type" in p for p in problems)

    def test_missing_envelope_keys(self):
        problems = validate_event({"event": "pool_rebuilt",
                                   "reason": "x"})
        assert any("'ts'" in p for p in problems)
        assert any("'seq'" in p for p in problems)

    def test_non_dict(self):
        assert validate_event("nope")


class TestTypedValidation:
    def _span_event(self, **overrides):
        event = {"ts": 1.0, "seq": 1, "event": "span",
                 "name": "simulate", "trace_id": "t1",
                 "span_id": "s1", "parent_id": None,
                 "started_at": 100.0, "duration_seconds": 0.25,
                 "status": "ok"}
        event.update(overrides)
        return event

    def test_well_typed_span_accepted(self):
        assert validate_event(self._span_event()) == []
        assert validate_event(
            self._span_event(parent_id="p1")) == []

    def test_string_duration_rejected(self):
        problems = validate_event(
            self._span_event(duration_seconds="0.25"))
        assert any("duration_seconds" in p and "str" in p
                   for p in problems)

    def test_numeric_name_rejected(self):
        problems = validate_event(self._span_event(name=7))
        assert any("'name'" in p for p in problems)

    def test_bool_is_not_a_legal_count(self):
        event = {"ts": 1.0, "seq": 1,
                 "event": "service_worker_exited",
                 "owner": "host:1", "executed": True}
        problems = validate_event(event)
        assert any("executed" in p and "bool" in p for p in problems)

    def test_service_lifecycle_events_typed(self):
        good = {"ts": 1.0, "seq": 1, "event": "trial_completed",
                "trial_id": "abc", "owner": "host:1",
                "duration_seconds": 1.5}
        assert validate_event(good) == []
        bad = dict(good, owner=123)
        assert any("owner" in p for p in validate_event(bad))

    def test_lease_events_typed(self):
        good = {"ts": 1.0, "seq": 1, "event": "lease_reclaimed",
                "name": "t1", "owner": "host:2",
                "previous_owner": "host:1"}
        assert validate_event(good) == []
        bad = dict(good, previous_owner=None)
        assert any("previous_owner" in p for p in validate_event(bad))


class TestTornTrailingLine:
    def test_torn_line_is_skipped_with_tolerance(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with EventLog(path) as log:
            log.emit("pool_rebuilt", reason="a")
            log.emit("pool_rebuilt", reason="b")
        # simulate a SIGKILL mid-append: half a JSON object, no newline
        with open(path, "a", encoding="utf-8") as stream:
            stream.write('{"ts": 3, "seq": 3, "event": "pool_re')
        events = list(iter_events(path))
        assert [e["reason"] for e in events] == ["a", "b"]

    def test_torn_middle_line_does_not_poison_later_events(
            self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text('{"ts": 1, "seq": 1, "event": "x"}\n'
                        "{garbage\n"
                        '{"ts": 2, "seq": 2, "event": "y"}\n')
        events = list(iter_events(path))
        assert [e["event"] for e in events] == ["x", "y"]

    def test_strict_mode_raises(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text('{"ts": 1, "seq": 1, "event": "x"}\n{oops\n')
        with pytest.raises(ValueError):
            list(iter_events(path, strict=True))

    def test_read_events_uses_tolerant_default(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text('{"ts": 1, "seq": 1, "event": "x"}\n{torn')
        assert len(read_events(path)) == 1


class TestProcessSink:
    def test_default_sink_is_null(self):
        assert emit("cell_scheduled", key="a", attempt=1) == {}
        assert isinstance(event_sink(), NullEventLog)

    def test_install_routes_and_restores(self, tmp_path):
        log = EventLog(tmp_path / "e.jsonl")
        previous = set_event_sink(log)
        try:
            record = emit("cell_scheduled", key="a", attempt=1)
            assert record["seq"] == 1
            assert event_sink() is log
        finally:
            restored = set_event_sink(previous)
            log.close()
        assert restored is log
        assert emit("anything") == {}
