"""End-to-end telemetry: manifests and event streams reconstruct runs.

The acceptance scenario for the observability PR: a fault-injected run
must leave a ``manifest.json`` plus an ``events.jsonl`` from which the
full run history — scheduling, retries, timeouts, checkpoint restores
— can be reconstructed offline.
"""

import pytest

from repro.experiments.runner import ExperimentReport, run_suite
from repro.observability import read_events, validate_telemetry_dir
from repro.observability.events import set_event_sink
from repro.observability.manifest import RunManifest
from repro.resilience import CheckpointStore, FaultInjector, FaultSpec
from repro.simulation.parallel import cell_key, run_sweep_parallel
from repro.types import DocumentType, Request, Trace

import repro.experiments.runner as runner_module

POLICIES = ["lru", "gds(1)"]
CAPACITIES = [4000, 12000]


@pytest.fixture(autouse=True)
def _null_sink_after():
    yield
    set_event_sink(None)


def small_trace():
    requests = []
    for i in range(200):
        for url, size, doc_type in (
                (f"u{i % 17}", 500, DocumentType.IMAGE),
                (f"h{i % 5}", 1500, DocumentType.HTML)):
            requests.append(Request(float(i), url, size, size, doc_type))
    return Trace(requests, name="telemetry-test")


@pytest.fixture(scope="module")
def trace():
    return small_trace()


def events_for(records, key):
    return [(r["event"], r["attempt"]) for r in records
            if r.get("key") == key and "attempt" in r]


class TestSweepTelemetry:
    def test_clean_sweep_reconstructs(self, trace, tmp_path):
        sweep = run_sweep_parallel(
            trace, POLICIES, CAPACITIES, n_workers=2,
            telemetry_dir=tmp_path / "tel")
        assert sweep.complete
        assert validate_telemetry_dir(tmp_path / "tel") == []

        manifest = RunManifest.load(tmp_path / "tel" / "manifest.json")
        assert manifest.kind == "sweep"
        assert manifest.status == "complete"
        assert manifest.settings["policies"] == POLICIES
        assert manifest.settings["capacities"] == list(CAPACITIES)
        assert manifest.wall_clock_seconds > 0

        records = read_events(tmp_path / "tel" / "events.jsonl")
        assert records[0]["event"] == "run_started"
        assert records[-1]["event"] == "run_finished"
        # Every cell was scheduled then finished, on attempt 1.
        for policy in POLICIES:
            for capacity in CAPACITIES:
                key = cell_key(policy, capacity)
                assert events_for(records, key) == [
                    ("cell_scheduled", 1), ("cell_finished", 1)]
        finished = read_events(tmp_path / "tel" / "events.jsonl",
                               "cell_finished")
        assert all(r["duration_seconds"] >= 0 for r in finished)

    def test_retry_events_in_order(self, trace, tmp_path):
        """A corrupted cell leaves scheduled -> retried -> scheduled ->
        finished, with the attempt numbers telling the story.  (A
        corrupt payload retries without a pool rebuild, so the event
        order is deterministic; a crash additionally requeues innocent
        in-flight cells.)"""
        key = cell_key("lru", 4000)
        injector = FaultInjector.corrupt_once(key)
        sweep = run_sweep_parallel(
            trace, POLICIES, CAPACITIES, n_workers=2,
            fault_injector=injector, max_retries=2,
            telemetry_dir=tmp_path / "tel", sleep=lambda _: None)
        assert sweep.complete
        assert validate_telemetry_dir(tmp_path / "tel") == []

        records = read_events(tmp_path / "tel" / "events.jsonl")
        assert events_for(records, key) == [
            ("cell_scheduled", 1),
            ("cell_retried", 1),
            ("cell_scheduled", 2),
            ("cell_finished", 2)]
        (retry,) = read_events(tmp_path / "tel" / "events.jsonl",
                               "cell_retried")
        assert retry["error_type"] == "WorkerCrashError"
        # The rerun cell reports its attempt count on the result too.
        assert sweep.grid["lru"][4000].attempts == 2

    def test_timeout_events_in_order(self, trace, tmp_path):
        key = cell_key("lru", 4000)
        injector = FaultInjector.of(
            FaultSpec(key=key, kind="hang", attempts=(1, 2),
                      hang_seconds=60.0))
        sweep = run_sweep_parallel(
            trace, ["lru"], [4000], n_workers=2,
            fault_injector=injector, cell_timeout=1.0, max_retries=1,
            failure_policy="partial", telemetry_dir=tmp_path / "tel",
            sleep=lambda _: None)
        assert not sweep.complete
        records = read_events(tmp_path / "tel" / "events.jsonl")
        history = [r["event"] for r in records if r.get("key") == key]
        assert history == [
            "cell_scheduled", "cell_timed_out", "cell_retried",
            "cell_scheduled", "cell_timed_out", "cell_failed"]
        (timed_out, _) = read_events(tmp_path / "tel" / "events.jsonl",
                                     "cell_timed_out")
        assert timed_out["timeout_seconds"] == 1.0
        (failed,) = read_events(tmp_path / "tel" / "events.jsonl",
                                "cell_failed")
        assert failed["attempts"] == 2
        assert failed["error_type"] == "CellTimeoutError"
        # Partial runs finalize as such, and the failure record carries
        # the wall-clock spent across both attempts.
        manifest = RunManifest.load(tmp_path / "tel" / "manifest.json")
        assert manifest.status == "partial"
        (failure,) = sweep.failures
        assert failure.duration_seconds > 0

    def test_checkpoint_restores_are_events(self, trace, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        run_sweep_parallel(trace, ["lru"], [4000], n_workers=1,
                           checkpoint_store=store)
        run_sweep_parallel(trace, ["lru"], [4000], n_workers=1,
                           checkpoint_store=store,
                           telemetry_dir=tmp_path / "tel")
        restored = read_events(tmp_path / "tel" / "events.jsonl",
                               "cell_checkpoint_restored")
        assert [r["key"] for r in restored] == [cell_key("lru", 4000)]
        # Nothing was scheduled: the grid came entirely from disk.
        assert read_events(tmp_path / "tel" / "events.jsonl",
                           "cell_scheduled") == []

    def test_serial_path_emits_cell_events(self, trace, tmp_path):
        sweep = run_sweep_parallel(
            trace, ["lru"], [4000], n_workers=1,
            telemetry_dir=tmp_path / "tel")
        assert sweep.complete
        assert validate_telemetry_dir(tmp_path / "tel") == []
        records = read_events(tmp_path / "tel" / "events.jsonl")
        names = [r["event"] for r in records]
        assert names == ["run_started", "cell_scheduled",
                         "cell_finished", "run_finished"]
        assert sweep.grid["lru"][4000].duration_seconds > 0


class FlakyRunner:
    """Fails the first ``failures`` calls, then succeeds."""

    def __init__(self, experiment_id, failures=0):
        self.experiment_id = experiment_id
        self.failures = failures
        self.calls = 0

    def __call__(self, settings):
        self.calls += 1
        if self.calls <= self.failures:
            raise RuntimeError(f"{self.experiment_id} boom")
        return ExperimentReport(self.experiment_id, settings.scale_name,
                                "body", {})


@pytest.fixture
def flaky_runners(monkeypatch):
    runners = {eid: FlakyRunner(eid) for eid in ("table1", "table2")}
    for eid, fake in runners.items():
        monkeypatch.setitem(runner_module._RUNNERS, eid, fake)
    return runners


class TestSuiteTelemetry:
    def test_retried_suite_reconstructs(self, flaky_runners, tmp_path):
        flaky_runners["table2"].failures = 1
        suite = run_suite(["table1", "table2"], scale="tiny",
                          max_retries=1, sleep=lambda _: None,
                          telemetry_dir=tmp_path / "tel")
        assert suite.complete
        assert validate_telemetry_dir(tmp_path / "tel") == []

        manifest = RunManifest.load(tmp_path / "tel" / "manifest.json")
        assert manifest.kind == "suite"
        assert manifest.status == "complete"
        assert manifest.settings["experiment_ids"] == \
            ["table1", "table2"]
        assert manifest.settings["scale_name"] == "tiny"

        records = read_events(tmp_path / "tel" / "events.jsonl")
        history = [(r["event"], r.get("experiment_id"))
                   for r in records if "experiment_id" in r]
        assert history == [
            ("experiment_started", "table1"),
            ("experiment_finished", "table1"),
            ("experiment_started", "table2"),
            ("experiment_retried", "table2"),
            ("experiment_finished", "table2")]
        (retry,) = read_events(tmp_path / "tel" / "events.jsonl",
                               "experiment_retried")
        assert retry["attempt"] == 1
        assert retry["error_type"] == "RuntimeError"

    def test_permanent_failure_and_partial_status(self, flaky_runners,
                                                  tmp_path):
        flaky_runners["table1"].failures = 99
        suite = run_suite(["table1", "table2"], scale="tiny",
                          max_retries=0, sleep=lambda _: None,
                          telemetry_dir=tmp_path / "tel")
        assert not suite.complete
        manifest = RunManifest.load(tmp_path / "tel" / "manifest.json")
        assert manifest.status == "partial"
        (failed,) = read_events(tmp_path / "tel" / "events.jsonl",
                                "experiment_failed")
        assert failed["experiment_id"] == "table1"
        assert failed["error_type"] == "RuntimeError"

    def test_resume_emits_checkpoint_restored(self, flaky_runners,
                                              tmp_path):
        run_suite(["table1"], scale="tiny",
                  checkpoint_dir=tmp_path / "ckpt")
        run_suite(["table1"], scale="tiny",
                  checkpoint_dir=tmp_path / "ckpt", resume=True,
                  telemetry_dir=tmp_path / "tel")
        restored = read_events(tmp_path / "tel" / "events.jsonl",
                               "experiment_checkpoint_restored")
        assert [r["experiment_id"] for r in restored] == ["table1"]
        assert flaky_runners["table1"].calls == 1

    def test_suite_profile_dir(self, flaky_runners, tmp_path):
        run_suite(["table1"], scale="tiny",
                  profile_dir=tmp_path / "prof")
        assert (tmp_path / "prof" / "table1.prof").exists()


class TestSweepProfileDir:
    def test_per_cell_profiles_written(self, trace, tmp_path):
        run_sweep_parallel(trace, ["lru"], [4000], n_workers=2,
                           profile_dir=tmp_path / "prof")
        profiles = list((tmp_path / "prof").glob("*.prof"))
        assert len(profiles) == 1
        assert "lru" in profiles[0].name
        assert "attempt1" in profiles[0].name
