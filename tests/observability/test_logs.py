"""Structured-logging configuration and formatters."""

import io
import json
import logging

import pytest

from repro.observability.logs import (
    LOG_LEVELS,
    JsonLinesFormatter,
    PlainFormatter,
    configure,
    get_logger,
)


@pytest.fixture(autouse=True)
def _reset_logging():
    yield
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_configured", False):
            logger.removeHandler(handler)
    if not logger.handlers:
        logger.addHandler(logging.NullHandler())
    logger.setLevel(logging.NOTSET)


class TestGetLogger:
    def test_bare_name_is_prefixed(self):
        assert get_logger("trace").name == "repro.trace"

    def test_already_prefixed_kept(self):
        assert get_logger("repro.trace").name == "repro.trace"

    def test_default_is_library_root(self):
        assert get_logger().name == "repro"
        assert get_logger("repro").name == "repro"

    def test_children_share_root(self):
        assert get_logger("a.b").parent.name in ("repro.a", "repro")


class TestConfigure:
    def test_plain_lines_carry_extras(self):
        sink = io.StringIO()
        configure(level="info", stream=sink)
        get_logger("x").info("hello", extra={"cell": "lru@1"})
        line = sink.getvalue()
        assert "INFO" in line
        assert "repro.x: hello" in line
        assert "cell=lru@1" in line

    def test_json_lines_parse_with_extras(self):
        sink = io.StringIO()
        configure(level="debug", json_lines=True, stream=sink)
        get_logger("y").warning("watch out", extra={"attempt": 2})
        record = json.loads(sink.getvalue())
        assert record["level"] == "warning"
        assert record["logger"] == "repro.y"
        assert record["message"] == "watch out"
        assert record["attempt"] == 2
        assert isinstance(record["ts"], float)

    def test_level_filters(self):
        sink = io.StringIO()
        configure(level="warning", stream=sink)
        get_logger("z").info("quiet")
        get_logger("z").error("loud")
        output = sink.getvalue()
        assert "quiet" not in output
        assert "loud" in output

    def test_reconfigure_replaces_not_stacks(self):
        first, second = io.StringIO(), io.StringIO()
        configure(stream=first)
        configure(stream=second)
        get_logger("w").info("once")
        assert first.getvalue() == ""
        assert second.getvalue().count("once") == 1
        tagged = [h for h in logging.getLogger("repro").handlers
                  if getattr(h, "_repro_configured", False)]
        assert len(tagged) == 1

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure(level="verbose")

    def test_level_case_insensitive(self):
        sink = io.StringIO()
        configure(level="DEBUG", stream=sink)
        get_logger("q").debug("fine grained")
        assert "fine grained" in sink.getvalue()

    def test_log_levels_constant(self):
        assert LOG_LEVELS == (
            "debug", "info", "warning", "error", "critical")


class TestFormatters:
    def _record(self, **extra):
        record = logging.LogRecord(
            name="repro.t", level=logging.INFO, pathname=__file__,
            lineno=1, msg="msg %d", args=(7,), exc_info=None)
        for key, value in extra.items():
            setattr(record, key, value)
        return record

    def test_json_interpolates_message(self):
        payload = json.loads(JsonLinesFormatter().format(self._record()))
        assert payload["message"] == "msg 7"

    def test_json_exception_field(self):
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            import sys
            record = logging.LogRecord(
                name="repro.t", level=logging.ERROR, pathname=__file__,
                lineno=1, msg="failed", args=(), exc_info=sys.exc_info())
        payload = json.loads(JsonLinesFormatter().format(record))
        assert "RuntimeError: boom" in payload["exception"]

    def test_plain_sorts_extras(self):
        line = PlainFormatter().format(self._record(b="2", a="1"))
        assert line.endswith("a=1 b=2")
