"""Counter/gauge/histogram semantics and the registry contract."""

import pytest

from repro.errors import ConfigurationError
from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    disable_metrics,
    enable_metrics,
    get_registry,
    set_registry,
)


@pytest.fixture(autouse=True)
def _null_registry_after():
    yield
    disable_metrics()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("requests_total")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42.0

    def test_cannot_decrease(self):
        with pytest.raises(ConfigurationError):
            Counter("requests_total").inc(-1)

    def test_sample_shape(self):
        counter = Counter("c", (("policy", "lru"),))
        counter.inc(3)
        assert counter.sample() == {
            "name": "c", "type": "counter",
            "labels": {"policy": "lru"}, "value": 3.0}


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("in_flight")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 6.0

    def test_can_go_negative(self):
        gauge = Gauge("drift")
        gauge.dec(3)
        assert gauge.value == -3.0


class TestHistogram:
    def test_count_sum_mean(self):
        hist = Histogram("seconds", buckets=(1.0, 10.0))
        for value in (0.5, 2.0, 20.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(22.5)
        assert hist.mean == pytest.approx(7.5)

    def test_bucket_counts_are_cumulative(self):
        hist = Histogram("seconds", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 0.7, 5.0, 50.0, 500.0):
            hist.observe(value)
        # <=1: 2, <=10: 3, <=100: 4; 500 only in count/sum.
        assert hist.bucket_counts() == [2, 3, 4]
        assert hist.count == 5

    def test_boundary_lands_in_its_bucket(self):
        hist = Histogram("seconds", buckets=(1.0, 10.0))
        hist.observe(1.0)
        assert hist.bucket_counts() == [1, 1]

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ConfigurationError):
            Histogram("bad", buckets=(5.0, 1.0))

    def test_rejects_empty_buckets(self):
        with pytest.raises(ConfigurationError):
            Histogram("bad", buckets=())


class TestHistogramQuantiles:
    def test_empty_histogram_reports_zero(self):
        hist = Histogram("seconds", buckets=(1.0, 10.0))
        assert hist.quantile(0.5) == 0.0
        assert hist.quantiles() == {"p50": 0.0, "p95": 0.0,
                                    "p99": 0.0}

    def test_interpolates_within_bucket(self):
        hist = Histogram("seconds", buckets=(1.0, 2.0))
        for value in (1.2, 1.4, 1.6, 1.8):
            hist.observe(value)
        # all four land in (1, 2]; the median interpolates halfway
        assert hist.quantile(0.5) == pytest.approx(1.5)
        assert hist.quantile(1.0) == pytest.approx(2.0)

    def test_first_bucket_interpolates_up_from_zero(self):
        hist = Histogram("seconds", buckets=(1.0, 2.0))
        hist.observe(0.4)
        hist.observe(0.6)
        assert hist.quantile(0.5) == pytest.approx(0.5)

    def test_quantile_beyond_last_bound_reports_last_bound(self):
        hist = Histogram("seconds", buckets=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(100.0)  # beyond the last bound
        assert hist.quantile(0.99) == pytest.approx(2.0)

    def test_p50_p95_p99_ordering(self):
        hist = Histogram("seconds", buckets=DEFAULT_BUCKETS)
        for i in range(100):
            hist.observe(0.001 * (i + 1))
        estimates = hist.quantiles()
        assert set(estimates) == {"p50", "p95", "p99"}
        assert estimates["p50"] <= estimates["p95"] <= estimates["p99"]

    def test_rejects_out_of_range_q(self):
        hist = Histogram("seconds", buckets=(1.0,))
        with pytest.raises(ConfigurationError):
            hist.quantile(1.5)
        with pytest.raises(ConfigurationError):
            hist.quantile(-0.1)

    def test_sample_carries_quantiles(self):
        hist = Histogram("seconds", buckets=(1.0, 10.0))
        hist.observe(0.5)
        sample = hist.sample()
        assert "quantiles" in sample
        assert set(sample["quantiles"]) == {"p50", "p95", "p99"}

    def test_null_instrument_quantiles(self):
        registry = NullRegistry()
        hist = registry.histogram("anything")
        assert hist.quantile(0.5) == 0.0
        assert hist.quantiles() == {}


class TestRegistry:
    def test_same_name_and_labels_share_an_instrument(self):
        registry = MetricsRegistry()
        registry.counter("cells_total", policy="lru").inc()
        registry.counter("cells_total", policy="lru").inc()
        assert registry.counter("cells_total", policy="lru").value == 2.0

    def test_label_sets_are_distinct_children(self):
        registry = MetricsRegistry()
        registry.counter("cells_total", policy="lru").inc()
        registry.counter("cells_total", policy="gds(1)").inc(5)
        assert registry.counter("cells_total", policy="lru").value == 1.0
        assert registry.counter("cells_total",
                                policy="gds(1)").value == 5.0

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.counter("c", policy="lru", scale="tiny")
        b = registry.counter("c", scale="tiny", policy="lru")
        assert a is b

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ConfigurationError):
            registry.gauge("thing")
        with pytest.raises(ConfigurationError):
            registry.histogram("thing", other="label")

    def test_collect_exports_all_instruments(self):
        registry = MetricsRegistry()
        registry.counter("b_total").inc()
        registry.gauge("a_gauge").set(7)
        registry.histogram("h_seconds").observe(0.01)
        samples = registry.collect()
        assert [s["name"] for s in samples] == \
            ["a_gauge", "b_total", "h_seconds"]
        assert samples[2]["count"] == 1

    def test_as_dict_naming(self):
        registry = MetricsRegistry()
        registry.counter("runs_total", policy="lru").inc(2)
        registry.counter("plain_total").inc()
        summary = registry.as_dict()
        assert summary["runs_total{policy=lru}"] == 2.0
        assert summary["plain_total"] == 1.0

    def test_default_buckets_ascending(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestNullRegistry:
    def test_disabled_and_shared_noop(self):
        registry = NullRegistry()
        assert registry.enabled is False
        counter = registry.counter("anything", policy="lru")
        assert counter is registry.gauge("other")
        assert counter is registry.histogram("third")
        counter.inc(100)
        counter.observe(1.0)
        counter.set(9)
        counter.dec()
        assert counter.value == 0.0
        assert registry.collect() == []
        assert registry.as_dict() == {}


class TestProcessGlobal:
    def test_default_is_null(self):
        disable_metrics()
        assert get_registry().enabled is False

    def test_enable_installs_fresh_real_registry(self):
        first = enable_metrics()
        first.counter("c").inc()
        second = enable_metrics()
        assert get_registry() is second
        assert second.counter("c").value == 0.0

    def test_set_registry_returns_previous(self):
        mine = MetricsRegistry()
        previous = set_registry(mine)
        try:
            assert get_registry() is mine
        finally:
            set_registry(previous)

    def test_set_none_restores_null(self):
        enable_metrics()
        set_registry(None)
        assert get_registry().enabled is False
