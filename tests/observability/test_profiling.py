"""Phase timers and the opt-in cProfile wrapper."""

import pstats

import pytest

from repro.observability.metrics import disable_metrics, enable_metrics
from repro.observability.profiling import (
    PhaseTimings,
    maybe_profile,
    phase_timer,
)


@pytest.fixture(autouse=True)
def _null_registry_after():
    yield
    disable_metrics()


class TestPhaseTimings:
    def test_accumulates_per_phase(self):
        timings = PhaseTimings()
        timings.add("warmup", 1.0)
        timings.add("warmup", 0.5)
        timings.add("measurement", 2.0)
        assert timings.get("warmup") == pytest.approx(1.5)
        assert timings.total == pytest.approx(3.5)
        assert "warmup" in timings
        assert "aggregate" not in timings
        assert timings.as_dict() == {"warmup": 1.5, "measurement": 2.0}

    def test_missing_phase_is_zero(self):
        assert PhaseTimings().get("nope") == 0.0

    def test_repr_mentions_phases(self):
        timings = PhaseTimings()
        timings.add("warmup", 0.25)
        assert "warmup" in repr(timings)


class TestPhaseTimer:
    def test_records_into_timings(self):
        timings = PhaseTimings()
        with phase_timer("warmup", timings):
            pass
        assert timings.get("warmup") > 0.0

    def test_records_even_on_exception(self):
        timings = PhaseTimings()
        with pytest.raises(RuntimeError):
            with phase_timer("measurement", timings):
                raise RuntimeError("boom")
        assert "measurement" in timings

    def test_observes_histogram_when_metrics_enabled(self):
        registry = enable_metrics()
        with phase_timer("warmup", metric="sim_phase_seconds"):
            pass
        hist = registry.histogram("sim_phase_seconds", phase="warmup")
        assert hist.count == 1

    def test_no_histogram_when_metrics_disabled(self):
        disable_metrics()
        with phase_timer("warmup", metric="sim_phase_seconds"):
            pass
        registry = enable_metrics()
        assert registry.collect() == []


class TestMaybeProfile:
    def test_writes_loadable_stats(self, tmp_path):
        target = tmp_path / "cells" / "lru@1.prof"
        with maybe_profile(target):
            sum(range(1000))
        assert target.exists()
        stats = pstats.Stats(str(target))
        assert stats.total_calls >= 1

    def test_none_path_is_noop(self, tmp_path):
        with maybe_profile(None):
            pass
        assert list(tmp_path.iterdir()) == []

    def test_disabled_is_noop(self, tmp_path):
        with maybe_profile(tmp_path / "x.prof", enabled=False):
            pass
        assert not (tmp_path / "x.prof").exists()
