"""Tests for confidence-interval utilities."""

import random

import pytest

from repro.analysis.confidence import (
    Interval,
    block_bootstrap_ratio,
    hit_rate_interval,
    wilson_interval,
)
from repro.errors import AnalysisError


class TestWilson:
    def test_contains_estimate(self):
        interval = wilson_interval(30, 100)
        assert interval.lower < interval.estimate < interval.upper
        assert interval.estimate == 0.3
        assert 0.3 in interval

    def test_bounds_clamped(self):
        zero = wilson_interval(0, 50)
        full = wilson_interval(50, 50)
        assert zero.lower == 0.0
        assert zero.upper > 0.0          # not degenerate at the edge
        assert full.upper == 1.0
        assert full.lower < 1.0

    def test_width_shrinks_with_samples(self):
        small = wilson_interval(30, 100)
        large = wilson_interval(3000, 10_000)
        assert large.width < small.width

    def test_levels_nest(self):
        narrow = wilson_interval(40, 100, level=0.90)
        wide = wilson_interval(40, 100, level=0.99)
        assert wide.lower <= narrow.lower
        assert wide.upper >= narrow.upper

    def test_validation(self):
        with pytest.raises(AnalysisError):
            wilson_interval(1, 0)
        with pytest.raises(AnalysisError):
            wilson_interval(5, 3)
        with pytest.raises(AnalysisError):
            wilson_interval(1, 10, level=0.42)

    def test_coverage_empirically(self):
        """~95 % of 95 % intervals should contain the true rate."""
        rng = random.Random(5)
        p = 0.3
        covered = 0
        trials = 300
        for _ in range(trials):
            hits = sum(rng.random() < p for _ in range(200))
            if p in wilson_interval(hits, 200):
                covered += 1
        assert covered / trials > 0.88


class TestBootstrap:
    def test_contains_estimate(self):
        rng = random.Random(1)
        denominators = [rng.randint(100, 10_000) for _ in range(5000)]
        numerators = [d if rng.random() < 0.4 else 0
                      for d in denominators]
        interval = block_bootstrap_ratio(numerators, denominators,
                                         block_size=100)
        assert interval.lower <= interval.estimate <= interval.upper
        assert interval.estimate == pytest.approx(0.4, abs=0.05)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            block_bootstrap_ratio([], [])
        with pytest.raises(AnalysisError):
            block_bootstrap_ratio([1.0], [1.0, 2.0])
        with pytest.raises(AnalysisError):
            block_bootstrap_ratio([1.0], [0.0])

    def test_deterministic_with_seed(self):
        nums = [1.0, 0.0, 2.0, 1.0] * 50
        dens = [2.0] * 200
        a = block_bootstrap_ratio(nums, dens, seed=3, block_size=10)
        b = block_bootstrap_ratio(nums, dens, seed=3, block_size=10)
        assert (a.lower, a.upper) == (b.lower, b.upper)

    def test_block_bigger_than_data_ok(self):
        interval = block_bootstrap_ratio([1.0, 2.0], [2.0, 4.0],
                                         block_size=10_000)
        assert interval.estimate == pytest.approx(0.5)


class TestResultIntegration:
    def test_hit_rate_interval_from_result(self, tiny_uniform_trace):
        from repro.simulation.simulator import simulate

        result = simulate(tiny_uniform_trace, "lru",
                          capacity_bytes=1_000_000)
        interval = hit_rate_interval(result)
        assert isinstance(interval, Interval)
        assert interval.estimate == pytest.approx(result.hit_rate())
        assert interval.lower <= result.hit_rate() <= interval.upper

    def test_per_type_interval(self, tiny_uniform_trace):
        from repro.simulation.simulator import simulate
        from repro.types import DocumentType

        result = simulate(tiny_uniform_trace, "lru",
                          capacity_bytes=1_000_000)
        interval = hit_rate_interval(result, DocumentType.IMAGE)
        assert interval.estimate == pytest.approx(
            result.hit_rate(DocumentType.IMAGE))
