"""Tests for ASCII table rendering."""

import math

import pytest

from repro.analysis.characterize import characterize
from repro.analysis.tables import (
    render_breakdown_table,
    render_properties_table,
    render_statistics_table,
    render_sweep_table,
    render_table,
)
from repro.simulation.sweep import run_sweep
from repro.types import DocumentType, Request, Trace


class TestRenderTable:
    def test_alignment_and_headers(self):
        text = render_table(["Name", "Value"],
                            [["alpha", 1.2345], ["b", 2]])
        lines = text.splitlines()
        assert lines[0].startswith("Name")
        assert "-" in lines[1]
        assert "1.23" in lines[2]
        assert "2" in lines[3]

    def test_title(self):
        text = render_table(["A"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_nan_rendered(self):
        text = render_table(["A", "B"], [["x", math.nan]])
        assert "n/a" in text

    def test_none_rendered(self):
        text = render_table(["A", "B"], [["x", None]])
        assert "-" in text.splitlines()[-1]

    def test_ints_get_thousands_separators(self):
        text = render_table(["A", "B"], [["x", 1234567]])
        assert "1,234,567" in text

    def test_tiny_floats_scientific(self):
        text = render_table(["A", "B"], [["x", 0.00001]], digits=2)
        assert "e-05" in text

    def test_digits(self):
        text = render_table(["A", "B"], [["x", 0.123456]], digits=3)
        assert "0.123" in text


def small_trace():
    requests = []
    for i in range(60):
        requests.append(Request(float(i), f"i{i % 7}.gif", 100, 100,
                                DocumentType.IMAGE))
        requests.append(Request(float(i), f"h{i % 5}.html", 500, 500,
                                DocumentType.HTML))
    return Trace(requests, name="small")


class TestPaperTables:
    def test_properties_table(self):
        char = characterize(small_trace(), estimate_locality=False)
        text = render_properties_table({"T1": char, "T2": char})
        assert "Distinct Documents" in text
        assert "Total Requests" in text
        assert "T1" in text and "T2" in text

    def test_breakdown_table(self):
        char = characterize(small_trace(), estimate_locality=False)
        text = render_breakdown_table(char, title="Table 2")
        assert "% of Distinct Documents" in text
        assert "Images" in text and "Multi Media" in text

    def test_statistics_table(self):
        char = characterize(small_trace())
        text = render_statistics_table(char, title="Table 4")
        assert "Mean of Document Size (KB)" in text
        assert "alpha" in text and "beta" in text

    def test_sweep_table(self):
        sweep = run_sweep(small_trace(), ["lru", "gds(1)"], [2000, 10_000])
        text = render_sweep_table(sweep)
        assert "lru" in text and "gds(1)" in text
        assert "overall hit rate" in text
        byte_text = render_sweep_table(sweep, byte_rate=True,
                                       doc_type=DocumentType.IMAGE)
        assert "Images byte hit rate" in byte_text

    def test_sweep_table_missing_cell(self):
        from repro.simulation.results import SimulationResult, SweepResult
        sweep = SweepResult(trace_name="t")
        sweep.add(SimulationResult(policy="lru", capacity_bytes=100))
        sweep.add(SimulationResult(policy="fifo", capacity_bytes=200))
        text = render_sweep_table(sweep)
        assert "-" in text  # the missing grid cells
