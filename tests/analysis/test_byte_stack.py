"""Tests for byte-weighted stack distances and the approximate byte
curve, pinned against the exact simulator."""

import math
import random

import pytest

from repro.analysis.stack_distance import (
    approximate_byte_curve,
    stack_distances,
)
from repro.simulation.simulator import simulate
from repro.types import DocumentType, Request, Trace


def req(url, size, ts=0.0):
    return Request(ts, url, size, size, DocumentType.HTML)


class TestByteDistances:
    def test_sums_intervening_bytes(self):
        requests = [req("a", 10), req("b", 300), req("c", 70),
                    req("a", 10)]
        distances = stack_distances(requests, byte_weighted=True)
        assert math.isinf(distances[0])
        assert distances[3] == 370.0   # b + c bytes

    def test_duplicate_intervening_counted_once(self):
        requests = [req("a", 10), req("b", 300), req("b", 300),
                    req("a", 10)]
        distances = stack_distances(requests, byte_weighted=True)
        assert distances[3] == 300.0

    def test_unit_and_byte_agree_for_unit_sizes(self):
        rng = random.Random(2)
        requests = [req(f"u{rng.randint(0, 20)}", 1, float(i))
                    for i in range(500)]
        unit = stack_distances(requests)
        byte = stack_distances(requests, byte_weighted=True)
        assert unit == byte


class TestApproximateByteCurve:
    def test_empty_inputs(self):
        assert approximate_byte_curve([], [100]) == [(100, 0.0)]
        assert approximate_byte_curve([req("a", 1)], []) == []

    def test_monotone_in_capacity(self):
        rng = random.Random(3)
        requests = [req(f"u{rng.randint(0, 40)}",
                        rng.choice((100, 1000, 5000)), float(i))
                    for i in range(3000)]
        curve = approximate_byte_curve(requests,
                                       [10 ** 3, 10 ** 4, 10 ** 5])
        rates = [rate for _, rate in curve]
        assert rates == sorted(rates)

    def test_close_to_simulated_lru(self):
        """The approximation tracks byte-bounded LRU within a few
        points of hit rate across a capacity sweep."""
        rng = random.Random(7)
        sizes = {}
        requests = []
        for i in range(4000):
            url = f"u{int(rng.paretovariate(0.9)) % 80}"
            size = sizes.setdefault(url, rng.choice(
                (200, 1000, 4000, 20_000)))
            requests.append(req(url, size, float(i)))
        trace = Trace(requests)
        capacities = [20_000, 60_000, 200_000]
        curve = dict(approximate_byte_curve(requests, capacities))
        for capacity in capacities:
            simulated = simulate(trace, "lru", capacity,
                                 warmup_fraction=0.0).hit_rate()
            assert curve[capacity] == pytest.approx(simulated,
                                                    abs=0.05), capacity
