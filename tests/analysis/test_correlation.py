"""Tests for the temporal-correlation exponent (β) estimation."""

import random

import pytest

from repro.analysis.correlation import (
    beta_from_distances,
    estimate_beta,
    popularity_class,
    reuse_distances,
)
from repro.errors import AnalysisError
from repro.types import DocumentType, Request
from repro.workload.temporal import PowerLawGapSampler


def requests_for(urls, doc_type=DocumentType.HTML):
    return [Request(float(i), url, 100, 100, doc_type)
            for i, url in enumerate(urls)]


class TestReuseDistances:
    def test_distances(self):
        requests = requests_for(["a", "b", "a", "a", "b"])
        assert list(reuse_distances(requests)) == [
            ("a", 2), ("a", 1), ("b", 3)]

    def test_type_filter_restricts_reported_documents(self):
        requests = (requests_for(["a"], DocumentType.IMAGE)
                    + requests_for(["b", "a"], DocumentType.IMAGE)
                    + requests_for(["b"], DocumentType.HTML))
        # Re-index timestamps are irrelevant; distances are positional.
        image_only = list(reuse_distances(requests, DocumentType.IMAGE))
        assert [url for url, _ in image_only] == ["a"]

    def test_distance_counts_intervening_any_type(self):
        requests = [
            Request(0, "a", 1, 1, DocumentType.IMAGE),
            Request(1, "x", 1, 1, DocumentType.HTML),
            Request(2, "y", 1, 1, DocumentType.HTML),
            Request(3, "a", 1, 1, DocumentType.IMAGE),
        ]
        assert list(reuse_distances(requests, DocumentType.IMAGE)) == [
            ("a", 3)]


class TestPopularityClass:
    def test_bounds(self):
        requests = requests_for(["a"] * 100 + ["b"] * 5 + ["c"])
        eligible = popularity_class(requests, min_refs=2, max_refs=50)
        assert eligible == {"b"}

    def test_type_restriction(self):
        requests = (requests_for(["a"] * 5, DocumentType.IMAGE)
                    + requests_for(["b"] * 5, DocumentType.HTML))
        assert popularity_class(requests, DocumentType.IMAGE,
                                2, 50) == {"a"}


class TestBetaFit:
    def test_recovers_power_law(self):
        sampler = PowerLawGapSampler(0.6, 10 ** 5, seed=3)
        distances = sampler.sample_many(50_000).tolist()
        beta = beta_from_distances(distances)
        assert beta == pytest.approx(0.6, abs=0.15)

    def test_needs_samples(self):
        with pytest.raises(AnalysisError):
            beta_from_distances([1, 2, 3])

    def test_needs_scale_spread(self):
        with pytest.raises(AnalysisError):
            beta_from_distances([2] * 1000)


class TestEstimateBeta:
    def build_stream(self, beta, n_docs=60, refs_per_doc=30, seed=1):
        """Interleave documents whose reuse gaps follow power-law(β)."""
        rng = random.Random(seed)
        sampler = PowerLawGapSampler(beta, 50_000, seed=seed)
        events = []
        for doc in range(n_docs):
            position = rng.uniform(0, 50_000)
            for _ in range(refs_per_doc):
                events.append((position, f"d{doc}"))
                position += sampler.sample()
        events.sort()
        return requests_for([url for _, url in events])

    def test_ordering_of_betas(self):
        low = estimate_beta(self.build_stream(0.2), max_refs=100)
        high = estimate_beta(self.build_stream(0.9), max_refs=100)
        assert high > low

    def test_empty_class_raises(self):
        requests = requests_for(["a"] * 100)   # single ultra-hot doc
        with pytest.raises(AnalysisError):
            estimate_beta(requests, min_refs=2, max_refs=5)

    def test_per_type_estimates_differ(self):
        """Two types with different β in one interleaved stream."""
        stream_low = self.build_stream(0.15, seed=11)
        stream_high = self.build_stream(0.9, seed=13)
        mixed = []
        for index, request in enumerate(stream_low):
            mixed.append(Request(float(index), "L" + request.url, 100,
                                 100, DocumentType.IMAGE))
        offset = len(mixed)
        for index, request in enumerate(stream_high):
            mixed.append(Request(float(offset + index),
                                 "H" + request.url, 100, 100,
                                 DocumentType.MULTIMEDIA))
        image_beta = estimate_beta(mixed, DocumentType.IMAGE,
                                   max_refs=100)
        mm_beta = estimate_beta(mixed, DocumentType.MULTIMEDIA,
                                max_refs=100)
        assert mm_beta > image_beta
