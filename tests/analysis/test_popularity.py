"""Tests for the popularity index (α) estimation."""

import pytest

from repro.analysis.popularity import (
    alpha_from_counts,
    estimate_alpha,
    popularity_counts,
)
from repro.errors import AnalysisError
from repro.types import DocumentType, Request
from repro.workload.zipf import zipf_counts


def requests_for(urls, doc_type=DocumentType.HTML):
    return [Request(float(i), url, 100, 100, doc_type)
            for i, url in enumerate(urls)]


class TestCounts:
    def test_counts(self):
        requests = requests_for(["a", "b", "a", "a", "c"])
        assert popularity_counts(requests) == {"a": 3, "b": 1, "c": 1}

    def test_type_filter(self):
        requests = (requests_for(["a"], DocumentType.IMAGE)
                    + requests_for(["b"], DocumentType.HTML))
        assert popularity_counts(requests, DocumentType.IMAGE) == {"a": 1}


class TestAlphaFit:
    def test_recovers_known_alpha(self):
        for alpha in (0.6, 0.9, 1.2):
            counts = zipf_counts(3000, alpha, 300_000)
            fitted = alpha_from_counts(counts)
            assert fitted == pytest.approx(alpha, abs=0.15), alpha

    def test_ordering_preserved(self):
        fits = [alpha_from_counts(zipf_counts(2000, a, 100_000))
                for a in (0.4, 0.7, 1.0)]
        assert fits == sorted(fits)

    def test_uniform_counts_alpha_near_zero(self):
        with pytest.raises(AnalysisError):
            # All equal: collapses to one point; undefined.
            alpha_from_counts([5] * 100)

    def test_too_few_documents(self):
        with pytest.raises(AnalysisError):
            alpha_from_counts([3, 2, 1])

    def test_tie_collapsing_beats_naive_fit(self):
        """A huge 1-request tail must not drag the slope toward zero
        as badly as the naive per-document fit does."""
        counts = zipf_counts(5000, 1.0, 20_000)  # long flat tail
        fitted = alpha_from_counts(counts)
        assert fitted == pytest.approx(1.0, abs=0.3)

    def test_zero_counts_ignored(self):
        counts = list(zipf_counts(100, 0.8, 10_000)) + [0] * 50
        assert alpha_from_counts(counts) > 0


class TestEstimateFromRequests:
    def test_end_to_end(self):
        urls = []
        for rank, count in enumerate(zipf_counts(200, 0.9, 5000), 1):
            urls.extend([f"u{rank}"] * count)
        alpha = estimate_alpha(requests_for(urls))
        assert alpha == pytest.approx(0.9, abs=0.25)

    def test_per_type_isolation(self):
        image_urls = []
        for rank, count in enumerate(zipf_counts(100, 1.2, 4000), 1):
            image_urls.extend([f"i{rank}"] * count)
        html_urls = []
        for rank, count in enumerate(zipf_counts(100, 0.3, 4000), 1):
            html_urls.extend([f"h{rank}"] * count)
        requests = (requests_for(image_urls, DocumentType.IMAGE)
                    + requests_for(html_urls, DocumentType.HTML))
        image_alpha = estimate_alpha(requests, DocumentType.IMAGE)
        html_alpha = estimate_alpha(requests, DocumentType.HTML)
        assert image_alpha > html_alpha
