"""Tests for LRU stack-distance analysis, cross-validated against the
byte-accurate simulator on fixed-size workloads."""

import math
import random

import pytest

from repro.analysis.stack_distance import (
    COLD,
    profiles_by_type,
    stack_distances,
    stack_profile,
)
from repro.types import DocumentType, Request, Trace


def requests_for(urls, size=10, doc_type=DocumentType.HTML):
    return [Request(float(i), url, size, size, doc_type)
            for i, url in enumerate(urls)]


class TestDistances:
    def test_textbook_sequence(self):
        # a b c a: a's re-reference skips b and c -> distance 2.
        distances = stack_distances(requests_for(["a", "b", "c", "a"]))
        assert distances[0] is COLD
        assert distances[3] == 2.0

    def test_immediate_rereference_distance_zero(self):
        distances = stack_distances(requests_for(["a", "a"]))
        assert distances[1] == 0.0

    def test_distinct_documents_not_references(self):
        # a b b b a: only ONE distinct doc (b) between the two a's.
        distances = stack_distances(requests_for(["a", "b", "b", "b", "a"]))
        assert distances[4] == 1.0

    def test_empty(self):
        assert stack_distances([]) == []

    def test_all_cold(self):
        distances = stack_distances(requests_for(["a", "b", "c"]))
        assert all(d is COLD for d in distances)


class TestProfile:
    def test_hit_rate_at_capacity(self):
        # a b a b: both re-references at distance 1.
        profile = stack_profile(requests_for(["a", "b", "a", "b"]))
        assert profile.total_references == 4
        assert profile.cold_misses == 2
        assert profile.hit_rate_at(1) == 0.0   # distance 1 not < 1
        assert profile.hit_rate_at(2) == 0.5

    def test_compulsory_miss_rate(self):
        profile = stack_profile(requests_for(["a", "b", "a"]))
        assert profile.compulsory_miss_rate == pytest.approx(2 / 3)

    def test_curve_monotone(self):
        rng = random.Random(1)
        urls = [f"u{rng.randint(0, 50)}" for _ in range(3000)]
        profile = stack_profile(requests_for(urls))
        curve = profile.curve([1, 2, 4, 8, 16, 32, 64])
        rates = [rate for _, rate in curve]
        assert rates == sorted(rates)
        assert rates[-1] <= 1.0 - profile.compulsory_miss_rate + 1e-9

    def test_per_type_restriction(self):
        requests = (requests_for(["i", "i"], doc_type=DocumentType.IMAGE)
                    + requests_for(["h"], doc_type=DocumentType.HTML))
        profile = stack_profile(requests, DocumentType.IMAGE)
        assert profile.total_references == 2
        assert profile.cold_misses == 1

    def test_profiles_by_type_consistent(self):
        rng = random.Random(2)
        requests = []
        for i in range(2000):
            doc_type = rng.choice(list(DocumentType))
            requests.append(Request(
                float(i), f"{doc_type.value}{rng.randint(0, 30)}",
                10, 10, doc_type))
        profiles = profiles_by_type(requests)
        overall = profiles[None]
        assert overall.total_references == len(requests)
        assert sum(p.total_references
                   for t, p in profiles.items() if t is not None) == \
            len(requests)
        # Per-type hit counts at huge capacity sum to the overall's.
        big = 10 ** 6
        per_type_hits = sum(
            p.hit_rate_at(big) * p.total_references
            for t, p in profiles.items() if t is not None)
        assert per_type_hits == pytest.approx(
            overall.hit_rate_at(big) * overall.total_references)


class TestCrossValidationAgainstSimulator:
    """The load-bearing test: Mattson one-pass curve == simulated LRU,
    exactly, on fixed-size documents."""

    def test_exact_match_with_lru_simulation(self):
        from repro.simulation.simulator import simulate

        rng = random.Random(7)
        size = 100
        urls = [f"u{int(rng.paretovariate(0.8)) % 60}"
                for _ in range(4000)]
        trace = Trace(requests_for(urls, size=size))
        profile = stack_profile(trace.requests)
        for capacity_docs in (1, 3, 10, 25, 60):
            simulated = simulate(trace, "lru",
                                 capacity_bytes=capacity_docs * size,
                                 warmup_fraction=0.0)
            analytic = profile.hit_rate_at(capacity_docs)
            assert simulated.hit_rate() == pytest.approx(analytic), \
                f"capacity {capacity_docs} docs"

    def test_per_type_match(self):
        from repro.simulation.simulator import simulate

        rng = random.Random(9)
        size = 50
        requests = []
        for i in range(3000):
            doc_type = (DocumentType.IMAGE if rng.random() < 0.7
                        else DocumentType.HTML)
            requests.append(Request(
                float(i), f"{doc_type.value}{rng.randint(0, 40)}",
                size, size, doc_type))
        trace = Trace(requests)
        profiles = profiles_by_type(requests)
        capacity_docs = 20
        simulated = simulate(trace, "lru",
                             capacity_bytes=capacity_docs * size,
                             warmup_fraction=0.0)
        for doc_type in (DocumentType.IMAGE, DocumentType.HTML):
            assert simulated.hit_rate(doc_type) == pytest.approx(
                profiles[doc_type].hit_rate_at(capacity_docs)), doc_type
