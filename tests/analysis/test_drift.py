"""Tests for workload drift analysis."""

import pytest

from repro.analysis.drift import (
    drift_report,
    total_variation,
    windowed_summaries,
)
from repro.errors import AnalysisError
from repro.types import DocumentType, Request, Trace


def req(url, doc_type, ts=0.0, size=100):
    return Request(ts, url, size, size, doc_type)


def two_phase_trace(per_phase=500):
    """Images only, then HTML only: maximal mid-trace drift."""
    requests = [req(f"i{i % 40}", DocumentType.IMAGE, float(i))
                for i in range(per_phase)]
    requests += [req(f"h{i % 40}", DocumentType.HTML,
                     float(per_phase + i)) for i in range(per_phase)]
    return Trace(requests, name="two-phase")


class TestTotalVariation:
    def test_identical_mixes(self):
        mix = {DocumentType.IMAGE: 0.7, DocumentType.HTML: 0.3}
        assert total_variation(mix, mix) == 0.0

    def test_disjoint_mixes(self):
        a = {DocumentType.IMAGE: 1.0}
        b = {DocumentType.HTML: 1.0}
        assert total_variation(a, b) == pytest.approx(1.0)

    def test_symmetric(self):
        a = {DocumentType.IMAGE: 0.6, DocumentType.HTML: 0.4}
        b = {DocumentType.IMAGE: 0.2, DocumentType.HTML: 0.8}
        assert total_variation(a, b) == total_variation(b, a)
        assert total_variation(a, b) == pytest.approx(0.4)


class TestWindows:
    def test_validation(self):
        with pytest.raises(AnalysisError):
            windowed_summaries([], n_windows=0)
        with pytest.raises(AnalysisError):
            windowed_summaries([req("a", DocumentType.HTML)] * 3,
                               n_windows=10)

    def test_windows_partition_trace(self):
        trace = two_phase_trace()
        summaries = windowed_summaries(trace.requests, n_windows=4)
        assert summaries[0].start == 0
        assert summaries[-1].end == len(trace)
        for left, right in zip(summaries, summaries[1:]):
            assert left.end == right.start

    def test_mix_per_window(self):
        summaries = windowed_summaries(two_phase_trace().requests,
                                       n_windows=4)
        assert summaries[0].request_mix[DocumentType.IMAGE] == 1.0
        assert summaries[-1].request_mix[DocumentType.HTML] == 1.0

    def test_alpha_nan_for_thin_windows(self):
        requests = [req(f"u{i}", DocumentType.HTML) for i in range(20)]
        summaries = windowed_summaries(requests, n_windows=2)
        # All counts equal (1 each): alpha fit degenerates to NaN.
        import math
        assert math.isnan(summaries[0].alpha)


class TestDriftReport:
    def test_stationary_trace_low_drift(self, tiny_dfn_trace):
        report = drift_report(tiny_dfn_trace, n_windows=8)
        assert report.max_mix_drift < 0.08

    def test_regime_change_detected(self):
        report = drift_report(two_phase_trace(), n_windows=4)
        assert report.max_mix_drift > 0.9
        assert report.drift_window() == 2   # the phase boundary

    def test_mean_leq_max(self, tiny_dfn_trace):
        report = drift_report(tiny_dfn_trace, n_windows=6)
        assert report.mean_mix_drift <= report.max_mix_drift
