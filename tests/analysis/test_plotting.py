"""Tests for ASCII chart rendering and CSV series export."""

import pytest

from repro.analysis.plotting import ascii_chart, series_to_csv


class TestAsciiChart:
    def test_basic_render(self):
        chart = ascii_chart({"up": [(0, 0.0), (1, 0.5), (2, 1.0)]},
                            width=20, height=5, title="T")
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert any("*" in line for line in lines)
        assert "*=up" in chart

    def test_multiple_series_distinct_markers(self):
        chart = ascii_chart({
            "a": [(0, 0.0), (1, 1.0)],
            "b": [(0, 1.0), (1, 0.0)],
        }, width=20, height=5)
        assert "*=a" in chart
        assert "o=b" in chart
        assert "o" in chart.replace("o=b", "")

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"a": []})

    def test_log_x(self):
        chart = ascii_chart({"a": [(1, 0.1), (10, 0.2), (100, 0.3)]},
                            logx=True)
        assert "log scale" in chart

    def test_log_x_skips_nonpositive(self):
        chart = ascii_chart({"a": [(0, 0.5), (10, 0.2), (100, 0.3)]},
                            logx=True)
        assert "log scale" in chart

    def test_constant_series(self):
        chart = ascii_chart({"flat": [(0, 0.5), (1, 0.5)]})
        assert "flat" in chart

    def test_axis_labels(self):
        chart = ascii_chart({"a": [(0, 0.0), (100, 1.0)]},
                            x_label="cache size", y_label="hit rate")
        assert "cache size" in chart
        assert "hit rate" in chart


class TestSeriesCsv:
    def test_aligned_on_x_union(self):
        csv = series_to_csv({
            "a": [(1, 0.1), (2, 0.2)],
            "b": [(2, 0.9), (3, 0.8)],
        }, x_name="size")
        lines = csv.strip().splitlines()
        assert lines[0] == "size,a,b"
        assert lines[1] == "1,0.1,"
        assert lines[2] == "2,0.2,0.9"
        assert lines[3] == "3,,0.8"

    def test_single_series(self):
        csv = series_to_csv({"only": [(5, 1.0)]})
        assert csv.splitlines()[0] == "x,only"
        assert csv.splitlines()[1] == "5,1"
