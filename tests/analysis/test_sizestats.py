"""Tests for per-type size statistics (Tables 4/5 machinery)."""

import math

import numpy as np
import pytest

from repro.analysis.sizestats import (
    SizeStats,
    overall_size_stats,
    size_stats_by_type,
)
from repro.types import DocumentType, Request


def req(url, size, transfer=None, doc_type=DocumentType.HTML):
    return Request(0.0, url, size, transfer if transfer is not None
                   else size, doc_type)


class TestSizeStats:
    def test_from_values(self):
        stats = SizeStats.from_values([100, 200, 300])
        assert stats.count == 3
        assert stats.mean == 200
        assert stats.median == 200
        assert stats.total == 600
        assert stats.cov == pytest.approx(np.std([100, 200, 300]) / 200)

    def test_empty(self):
        stats = SizeStats.from_values([])
        assert stats.count == 0
        assert math.isnan(stats.mean)
        assert math.isnan(stats.cov)

    def test_kb_properties(self):
        stats = SizeStats.from_values([2048])
        assert stats.mean_kb == 2.0
        assert stats.median_kb == 2.0


class TestByType:
    def test_document_vs_transfer_populations(self):
        requests = [
            req("a", 1000),                 # doc a, full
            req("a", 1000, transfer=200),   # doc a, interrupted
            req("b", 3000),                 # doc b, full
        ]
        stats = size_stats_by_type(requests)[DocumentType.HTML]
        # Documents: {a: 1000, b: 3000} -> two observations.
        assert stats.document.count == 2
        assert stats.document.mean == 2000
        # Transfers: one per request.
        assert stats.transfer.count == 3
        assert stats.transfer.mean == pytest.approx((1000 + 200 + 3000) / 3)

    def test_document_size_uses_latest(self):
        requests = [req("a", 1000), req("a", 1020)]  # modified
        stats = size_stats_by_type(requests)[DocumentType.HTML]
        assert stats.document.count == 1
        assert stats.document.mean == 1020

    def test_types_isolated(self):
        requests = [req("i", 100, doc_type=DocumentType.IMAGE),
                    req("m", 10_000, doc_type=DocumentType.MULTIMEDIA)]
        stats = size_stats_by_type(requests)
        assert stats[DocumentType.IMAGE].document.mean == 100
        assert stats[DocumentType.MULTIMEDIA].document.mean == 10_000
        assert stats[DocumentType.HTML].document.count == 0

    def test_transfer_clamped_to_size(self):
        requests = [req("a", 100, transfer=500)]  # inconsistent input
        stats = size_stats_by_type(requests)[DocumentType.HTML]
        assert stats.transfer.mean == 100


class TestOverall:
    def test_documents(self):
        requests = [req("a", 100), req("a", 100), req("b", 300)]
        stats = overall_size_stats(requests)
        assert stats.count == 2
        assert stats.mean == 200

    def test_transfers(self):
        requests = [req("a", 100), req("a", 100, transfer=50)]
        stats = overall_size_stats(requests, transfers=True)
        assert stats.count == 2
        assert stats.mean == 75
