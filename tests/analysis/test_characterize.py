"""Tests for full workload characterization (Tables 1-5)."""

import math

import pytest

from repro.analysis.characterize import (
    characterize,
    type_breakdown,
)
from repro.types import DOCUMENT_TYPES, DocumentType, Request, Trace


def req(url, size, doc_type, transfer=None):
    return Request(0.0, url, size, transfer if transfer is not None
                   else size, doc_type)


def mixed_trace():
    requests = [
        req("i1", 100, DocumentType.IMAGE),
        req("i1", 100, DocumentType.IMAGE),
        req("i2", 300, DocumentType.IMAGE),
        req("m1", 10_000, DocumentType.MULTIMEDIA, transfer=5_000),
        req("h1", 600, DocumentType.HTML),
    ]
    return Trace(requests, name="mixed")


class TestBreakdown:
    def test_percentages(self):
        breakdown = type_breakdown(mixed_trace())
        # 4 distinct documents: 2 images, 1 mm, 1 html.
        assert breakdown.distinct_documents[DocumentType.IMAGE] == \
            pytest.approx(50.0)
        assert breakdown.total_requests[DocumentType.IMAGE] == \
            pytest.approx(60.0)
        # Bytes: images 400 of 11_000 total distinct bytes.
        assert breakdown.overall_size[DocumentType.IMAGE] == \
            pytest.approx(100 * 400 / 11_000)
        # Requested data counts transfers: 500 + 5000 + 600 = 6100.
        assert breakdown.requested_data[DocumentType.MULTIMEDIA] == \
            pytest.approx(100 * 5000 / 6100)

    def test_each_metric_sums_to_100(self):
        breakdown = type_breakdown(mixed_trace())
        for metric in (breakdown.distinct_documents,
                       breakdown.overall_size,
                       breakdown.total_requests,
                       breakdown.requested_data):
            assert sum(metric.values()) == pytest.approx(100.0)

    def test_empty_trace(self):
        breakdown = type_breakdown(Trace([]))
        assert all(v == 0.0 for v in
                   breakdown.total_requests.values())


class TestMetadata:
    def test_table1_fields(self):
        meta = mixed_trace().metadata()
        assert meta.total_requests == 5
        assert meta.distinct_documents == 4
        assert meta.total_size_bytes == 11_000
        assert meta.requested_bytes == 100 + 100 + 300 + 5000 + 600

    def test_modified_document_counted_once_at_latest_size(self):
        trace = Trace([req("a", 100, DocumentType.HTML),
                       req("a", 104, DocumentType.HTML)])
        meta = trace.metadata()
        assert meta.distinct_documents == 1
        assert meta.total_size_bytes == 104


class TestCharacterize:
    def test_structure(self, tiny_dfn_trace):
        char = characterize(tiny_dfn_trace, estimate_locality=False)
        assert char.metadata.total_requests == len(tiny_dfn_trace)
        for doc_type in DOCUMENT_TYPES:
            assert doc_type in char.by_type
            assert math.isnan(char.alpha(doc_type))

    def test_locality_estimates_populated(self, tiny_dfn_trace):
        char = characterize(tiny_dfn_trace)
        # Images are plentiful: both estimates must resolve.
        assert not math.isnan(char.alpha(DocumentType.IMAGE))
        assert not math.isnan(char.beta(DocumentType.IMAGE))

    def test_thin_types_get_nan_not_error(self):
        trace = Trace([req("a", 100, DocumentType.IMAGE)])
        char = characterize(trace)
        assert math.isnan(char.alpha(DocumentType.MULTIMEDIA))

    def test_alpha_ordering_matches_profile(self, tiny_dfn_trace):
        """Generated with image α 0.9 > html 0.75: estimates preserve
        the ordering (the paper's qualitative claim)."""
        char = characterize(tiny_dfn_trace)
        assert char.alpha(DocumentType.IMAGE) > \
            char.alpha(DocumentType.HTML)

    def test_beta_ordering_matches_profile(self, tiny_dfn_trace):
        """Image β 0.15 < application β 0.60 in the DFN profile."""
        char = characterize(tiny_dfn_trace)
        image_beta = char.beta(DocumentType.IMAGE)
        app_beta = char.beta(DocumentType.APPLICATION)
        if not (math.isnan(image_beta) or math.isnan(app_beta)):
            assert app_beta > image_beta
