"""Tests for the MLE popularity-index estimator."""

import pytest

from repro.analysis.popularity import alpha_from_counts, alpha_mle
from repro.errors import AnalysisError
from repro.workload.zipf import zipf_counts


def test_recovers_known_alpha():
    for alpha in (0.5, 0.9, 1.2):
        counts = zipf_counts(20_000, alpha, 2_000_000)
        fitted = alpha_mle(counts)
        assert fitted == pytest.approx(alpha, abs=0.1), \
            f"alpha={alpha} fitted={fitted}"


def test_recovers_alpha_from_sampled_stream():
    """MLE on a *sampled* (not deterministic) Zipf stream."""
    from collections import Counter
    from repro.workload.zipf import ZipfSampler
    sampler = ZipfSampler(3000, 0.8, seed=5)
    counts = Counter(sampler.sample_many(200_000))
    fitted = alpha_mle(counts.values())
    assert fitted == pytest.approx(0.8, abs=0.1)


def test_ordering_preserved():
    fits = [alpha_mle(zipf_counts(10_000, a, 500_000))
            for a in (0.5, 0.8, 1.1)]
    assert fits == sorted(fits)


def test_agrees_with_regression_fit():
    counts = zipf_counts(10_000, 0.9, 1_000_000)
    mle = alpha_mle(counts)
    regression = alpha_from_counts(counts)
    assert mle == pytest.approx(regression, abs=0.3)


def test_too_few_documents():
    with pytest.raises(AnalysisError):
        alpha_mle([5, 3, 1])


def test_uniform_counts_rejected():
    with pytest.raises(AnalysisError):
        alpha_mle([7] * 1000)


def test_extreme_concentration_rejected():
    # One colossal document among singletons: alpha beyond the bound.
    with pytest.raises(AnalysisError):
        alpha_mle([10 ** 9] + [1] * 50, alpha_bounds=(1e-3, 2.0))


def test_zero_counts_ignored():
    counts = list(zipf_counts(5000, 0.9, 200_000)) + [0] * 100
    assert alpha_mle(counts) == pytest.approx(0.9, abs=0.1)
