"""Tests for working-set (footprint) analysis."""

import pytest

from repro.analysis.footprint import (
    mean_footprint_bytes,
    peak_footprint,
    working_set_series,
)
from repro.errors import AnalysisError
from repro.types import DocumentType, Request


def req(url, size=100, doc_type=DocumentType.HTML):
    return Request(0.0, url, size, size, doc_type)


class TestSeries:
    def test_validation(self):
        with pytest.raises(AnalysisError):
            working_set_series([req("a")], window=0)

    def test_empty(self):
        assert working_set_series([], window=10) == []

    def test_distinct_documents_in_window(self):
        requests = [req("a"), req("b"), req("a"), req("c")]
        samples = working_set_series(requests, window=10,
                                     sample_interval=1)
        assert [s.documents for s in samples] == [1, 2, 2, 3]
        assert samples[-1].bytes == 300

    def test_window_expiry(self):
        # Window of 2: at position i only requests i-1, i are live.
        requests = [req("a"), req("b"), req("c"), req("d")]
        samples = working_set_series(requests, window=2,
                                     sample_interval=1)
        assert [s.documents for s in samples] == [1, 2, 2, 2]

    def test_repeat_references_keep_document_live(self):
        requests = [req("a"), req("a"), req("a"), req("a")]
        samples = working_set_series(requests, window=2,
                                     sample_interval=1)
        assert all(s.documents == 1 for s in samples)
        assert all(s.bytes == 100 for s in samples)

    def test_bytes_track_sizes(self):
        requests = [req("small", 10), req("big", 10_000)]
        samples = working_set_series(requests, window=10,
                                     sample_interval=1)
        assert samples[-1].bytes == 10_010

    def test_type_restriction(self):
        requests = [req("i", doc_type=DocumentType.IMAGE),
                    req("h", doc_type=DocumentType.HTML)]
        samples = working_set_series(requests, window=10,
                                     sample_interval=1,
                                     doc_type=DocumentType.IMAGE)
        assert samples[-1].documents == 1

    def test_default_sampling_bounded(self, tiny_dfn_trace):
        samples = working_set_series(tiny_dfn_trace.requests,
                                     window=2000)
        assert 150 <= len(samples) <= 260


class TestAggregates:
    def test_peak_and_mean(self):
        requests = ([req(f"w{i}", 100) for i in range(10)]
                    + [req("solo", 100)] * 30)
        peak = peak_footprint(requests, window=10)
        assert peak.documents >= 9
        mean = mean_footprint_bytes(requests, window=10)
        assert 100 <= mean <= 1000

    def test_empty_raises(self):
        with pytest.raises(AnalysisError):
            peak_footprint([], window=5)

    def test_larger_window_larger_footprint(self, tiny_dfn_trace):
        small = mean_footprint_bytes(tiny_dfn_trace.requests, 500)
        large = mean_footprint_bytes(tiny_dfn_trace.requests, 5000)
        assert large > small

    def test_multimedia_bytes_dominate_count(self, tiny_dfn_trace):
        """A handful of multimedia documents out-weighs thousands of
        images — the footprint view of the paper's Table 2."""
        from repro.analysis.footprint import working_set_series
        window = len(tiny_dfn_trace) // 2
        image = working_set_series(tiny_dfn_trace.requests, window,
                                   doc_type=DocumentType.IMAGE)[-1]
        mm = working_set_series(tiny_dfn_trace.requests, window,
                                doc_type=DocumentType.MULTIMEDIA)[-1]
        assert image.documents > 50 * max(mm.documents, 1)
        if mm.documents:
            assert mm.bytes / mm.documents > \
                20 * (image.bytes / image.documents)
