"""Tests for reference-concentration statistics."""

import pytest

from repro.analysis.concentration import (
    concentration_by_type,
    concentration_curve,
    gini_coefficient,
    top_share,
)
from repro.errors import AnalysisError
from repro.types import DocumentType, Request
from repro.workload.zipf import zipf_counts


class TestCurve:
    def test_uniform_is_diagonal(self):
        curve = concentration_curve([10] * 100)
        for doc_fraction, request_fraction in curve:
            assert request_fraction == pytest.approx(doc_fraction,
                                                     abs=0.02)

    def test_skewed_above_diagonal(self):
        counts = zipf_counts(1000, 1.0, 50_000)
        curve = concentration_curve(counts)
        mid = [pt for pt in curve if 0.05 < pt[0] < 0.5]
        assert all(req > doc for doc, req in mid)

    def test_endpoints(self):
        curve = concentration_curve([5, 3, 1])
        assert curve[0] == (0.0, 0.0)
        assert curve[-1] == (1.0, 1.0)

    def test_empty_raises(self):
        with pytest.raises(AnalysisError):
            concentration_curve([0, 0])


class TestTopShare:
    def test_uniform(self):
        assert top_share([10] * 100, 0.10) == pytest.approx(0.10)

    def test_skewed(self):
        counts = zipf_counts(1000, 1.0, 100_000)
        assert top_share(counts, 0.10) > 0.4

    def test_validation(self):
        with pytest.raises(AnalysisError):
            top_share([1, 2], 0.0)
        with pytest.raises(AnalysisError):
            top_share([], 0.5)


class TestGini:
    def test_uniform_zero(self):
        assert gini_coefficient([7] * 50) == pytest.approx(0.0)

    def test_single_document(self):
        assert gini_coefficient([100]) == 0.0

    def test_extreme_concentration(self):
        # One document with everything, many with one request each.
        counts = [10_000] + [1] * 999
        assert gini_coefficient(counts) > 0.8

    def test_monotone_in_alpha(self):
        ginis = [gini_coefficient(zipf_counts(2000, alpha, 100_000))
                 for alpha in (0.2, 0.6, 1.0)]
        assert ginis == sorted(ginis)

    def test_empty_raises(self):
        with pytest.raises(AnalysisError):
            gini_coefficient([])


class TestByType:
    def test_per_type_summary(self):
        requests = []
        for index in range(100):
            requests.append(Request(float(index), f"hot{index % 2}",
                                    10, 10, DocumentType.IMAGE))
        for index in range(100):
            requests.append(Request(float(index), f"h{index}", 10, 10,
                                    DocumentType.HTML))
        summary = concentration_by_type(requests)
        assert summary[DocumentType.IMAGE]["documents"] == 2
        # Images: all requests on 2 docs -> near-uniform between them.
        # HTML: perfectly uniform, gini 0.
        assert summary[DocumentType.HTML]["gini"] == pytest.approx(0.0)
        assert None in summary   # overall entry

    def test_image_popularity_more_concentrated(self, tiny_dfn_trace):
        """DFN profile: image α 0.9 > html 0.75 ⇒ higher image gini."""
        summary = concentration_by_type(tiny_dfn_trace.requests)
        assert summary[DocumentType.IMAGE]["gini"] > \
            summary[DocumentType.HTML]["gini"]
