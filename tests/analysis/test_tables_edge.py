"""Edge-case tests for table rendering helpers."""

import pytest

from repro.analysis.tables import _capacity_label, _fmt, render_table


class TestCapacityLabel:
    @pytest.mark.parametrize("capacity,expected", [
        (500, "500B"),
        (1_500, "1.5KB"),
        (2_000_000, "2.0MB"),
        (3_200_000_000, "3.2GB"),
    ])
    def test_units(self, capacity, expected):
        assert _capacity_label(capacity) == expected


class TestFormat:
    def test_float_precision(self):
        assert _fmt(0.123456, digits=3) == "0.123"

    def test_large_int_grouping(self):
        assert _fmt(6_718_201) == "6,718,201"

    def test_string_passthrough(self):
        assert _fmt("label") == "label"

    def test_none_dash(self):
        assert _fmt(None) == "-"

    def test_zero(self):
        assert _fmt(0.0) == "0.00"
        assert _fmt(0) == "0"


class TestRenderTableEdge:
    def test_single_cell(self):
        text = render_table(["Only"], [["x"]])
        assert "Only" in text and "x" in text

    def test_wide_values_stretch_columns(self):
        text = render_table(["A", "B"],
                            [["short", 1], ["a-much-longer-label", 2]])
        lines = text.splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) <= 2  # header rule may differ by trailing pad

    def test_no_rows(self):
        text = render_table(["A", "B"], [])
        assert text.splitlines()[0].startswith("A")
