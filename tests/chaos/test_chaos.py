"""The chaos suite: SIGKILL workers mid-trial, corrupt the store, and
prove the surviving bytes are identical to an uninterrupted run.

These are the tests CI's ``chaos`` job runs; they are slower than unit
tests (real subprocesses, real kills) but bounded to a few seconds by
the tiny trace scale and short lease TTLs.
"""

import pytest

from repro.experiments.chaos import run_chaos
from repro.experiments.service import open_service
from repro.experiments.store import ResultsStore

TINY = 1 / 512


@pytest.fixture(scope="module")
def chaos_report(tmp_path_factory):
    """One full chaos run shared by every assertion below: two
    SIGKILLs mid-trial plus a bit-flipped store segment."""
    root = tmp_path_factory.mktemp("chaos")
    return root, run_chaos(root, kills=2, corrupt=True, scale=TINY,
                           lease_ttl=1.0)


class TestChaosHarness:
    def test_stores_bit_identical(self, chaos_report):
        _, report = chaos_report
        assert report.ok, report.render()
        assert report.reference_digest == report.chaos_digest

    def test_kills_actually_happened(self, chaos_report):
        _, report = chaos_report
        assert report.kills == 2

    def test_corruption_was_quarantined(self, chaos_report):
        _, report = chaos_report
        assert report.corrupted_files == 1
        assert report.quarantined >= 1

    def test_queue_fully_drained(self, chaos_report):
        root, report = chaos_report
        assert report.drained
        queue, _ = open_service(root / "chaos")
        status = queue.status()
        assert status.drained
        assert status.failed == 0  # nothing was abandoned, all retried

    def test_every_trial_has_a_record(self, chaos_report):
        root, report = chaos_report
        reference = ResultsStore(root / "reference" / "store")
        chaos = ResultsStore(root / "chaos" / "store")
        assert report.records == len(reference.records()) > 0
        assert set(chaos.records()) == set(reference.records())

    def test_payloads_match_reference_exactly(self, chaos_report):
        # Digest equality already implies this; assert it explicitly so
        # a failure names the differing record instead of "bytes differ".
        root, _ = chaos_report
        reference = ResultsStore(root / "reference" / "store")
        chaos = ResultsStore(root / "chaos" / "store")
        ref_payloads = reference.payloads()
        for key, payload in chaos.payloads().items():
            assert payload == ref_payloads[key], key

    def test_report_renders(self, chaos_report):
        _, report = chaos_report
        text = report.render()
        assert "IDENTICAL" in text
        assert "SIGKILLed" in text
