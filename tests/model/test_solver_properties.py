"""Property-based tests for the Che solver, with exact IRM baselines.

Three families of invariant:

* per-document hit probabilities live in [0, 1] for every policy and
  any positive rate/size vectors;
* hit rates are monotone non-decreasing in capacity (occupancy is
  strictly increasing in ``T_C``, so bigger caches never hurt);
* on catalogs small enough to enumerate (≤ 10 documents, unit sizes),
  the Che approximation lands near the *exact* stationary IRM hit
  rate: the LRU stack distribution (King 1971) and the FIFO/RANDOM
  product form (Gelenbe 1973).  The tolerances encode the measured
  worst-case Che error on such tiny catalogs — the approximation is
  asymptotic in catalog size, so these are its hardest instances.
"""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.solver import (
    MODEL_POLICIES,
    hit_probabilities,
    solve_characteristic_time,
    solve_curve,
)

#: Measured worst-case |Che − exact| on ≤10-document catalogs.  The
#: reset-timer approximation is tight even here; the non-reset one
#: degrades more (its product form couples documents strongly at tiny
#: catalog sizes).
EXACT_TOLERANCE = {"lru": 0.10, "fifo": 0.17, "random": 0.17}

weight_vectors = st.lists(
    st.floats(min_value=0.05, max_value=50.0,
              allow_nan=False, allow_infinity=False),
    min_size=2, max_size=10)

size_vectors = st.lists(
    st.floats(min_value=1.0, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    min_size=2, max_size=10)


def normalized(weights):
    rates = np.asarray(weights, dtype=np.float64)
    return rates / rates.sum()


# ---------------------------------------------------------------------------
# Exact stationary IRM hit rates for tiny catalogs (unit sizes).
# ---------------------------------------------------------------------------

def exact_lru_hit_rate(rates, capacity):
    """Exact IRM LRU hit rate via the stack stationary distribution.

    The LRU stack content (top to bottom) ``d_1..d_C`` has stationary
    probability ``Π_j p_{d_j} / (1 − Σ_{k<j} p_{d_k})``; a request for
    ``i`` hits iff ``i`` is somewhere in the stack.
    """
    n = len(rates)
    capacity = min(capacity, n)
    in_cache = np.zeros(n)
    for stack in itertools.permutations(range(n), capacity):
        probability = 1.0
        mass_above = 0.0
        for document in stack:
            probability *= rates[document] / (1.0 - mass_above)
            mass_above += rates[document]
        for document in stack:
            in_cache[document] += probability
    return float((rates * in_cache).sum())


def exact_fifo_hit_rate(rates, capacity):
    """Exact IRM FIFO/RANDOM hit rate via the Gelenbe product form.

    Both chains share the stationary content distribution
    ``π(S) ∝ Π_{i∈S} p_i`` over size-``C`` document subsets, hence
    identical hit rates.
    """
    n = len(rates)
    capacity = min(capacity, n)
    weights = {}
    for subset in itertools.combinations(range(n), capacity):
        weights[subset] = math.prod(rates[i] for i in subset)
    total = sum(weights.values())
    in_cache = np.zeros(n)
    for subset, weight in weights.items():
        for document in subset:
            in_cache[document] += weight / total
    return float((rates * in_cache).sum())


def che_hit_rate(rates, capacity, policy):
    """Steady-state Che hit rate on a unit-size catalog."""
    solved = solve_characteristic_time(
        rates, np.ones_like(rates), float(capacity), policy=policy)
    probs = hit_probabilities(rates, solved.characteristic_time, policy)
    return float((rates * probs).sum())


# ---------------------------------------------------------------------------
# Properties.
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(weights=weight_vectors, sizes=size_vectors,
       fraction=st.floats(min_value=0.01, max_value=1.5))
def test_hit_probabilities_in_unit_interval(weights, sizes, fraction):
    n = min(len(weights), len(sizes))
    rates = normalized(weights[:n])
    size_array = np.asarray(sizes[:n])
    capacity = max(fraction * size_array.sum(), 1e-9)
    for policy in MODEL_POLICIES:
        solved = solve_characteristic_time(rates, size_array, capacity,
                                           policy=policy)
        probs = hit_probabilities(rates, solved.characteristic_time,
                                  policy)
        assert np.all(probs >= 0.0)
        assert np.all(probs <= 1.0)


@settings(max_examples=40, deadline=None)
@given(weights=weight_vectors, sizes=size_vectors)
def test_hit_rate_monotone_in_capacity(weights, sizes):
    n = min(len(weights), len(sizes))
    rates = normalized(weights[:n])
    size_array = np.asarray(sizes[:n])
    total = size_array.sum()
    capacities = [total * f for f in (0.01, 0.05, 0.2, 0.5, 0.9, 1.1)]
    for policy in MODEL_POLICIES:
        ladder = solve_curve(rates, size_array, capacities,
                             policy=policy)
        hit_rates = [
            float((rates * hit_probabilities(
                rates, solved.characteristic_time, policy)).sum())
            for solved in ladder]
        for smaller, larger in zip(hit_rates, hit_rates[1:]):
            assert larger >= smaller - 1e-9


@settings(max_examples=30, deadline=None)
@given(weights=weight_vectors,
       capacity=st.integers(min_value=1, max_value=9))
def test_lru_matches_exact_enumeration(weights, capacity):
    rates = normalized(weights)
    if capacity >= len(rates):
        return  # whole catalog fits: both sides are exactly 1
    exact = exact_lru_hit_rate(rates, capacity)
    approx = che_hit_rate(rates, capacity, "lru")
    assert abs(approx - exact) <= EXACT_TOLERANCE["lru"]


@settings(max_examples=30, deadline=None)
@given(weights=weight_vectors,
       capacity=st.integers(min_value=1, max_value=9))
def test_fifo_matches_exact_enumeration(weights, capacity):
    rates = normalized(weights)
    if capacity >= len(rates):
        return
    exact = exact_fifo_hit_rate(rates, capacity)
    for policy in ("fifo", "random"):
        approx = che_hit_rate(rates, capacity, policy)
        assert abs(approx - exact) <= EXACT_TOLERANCE[policy]


def test_exact_baselines_agree_on_uniform_rates():
    """Sanity-pin the enumerators themselves: uniform p, C of n docs
    → stationary occupancy C/n for every policy family."""
    rates = np.full(6, 1.0 / 6.0)
    assert exact_lru_hit_rate(rates, 3) == pytest.approx(0.5)
    assert exact_fifo_hit_rate(rates, 3) == pytest.approx(0.5)
