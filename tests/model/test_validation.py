"""Tests for the model-vs-simulation validation harness.

Includes the acceptance pin for this subsystem: on a synthetic
IRM-leaning workload the Che LRU curve stays within 2 percentage
points MAE of the shared-pass simulator across the paper's 4-capacity
grid.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.model.validation import validate_model
from repro.simulation.sweep import PAPER_SIZE_FRACTIONS


@pytest.fixture(scope="module")
def report(irm_trace):
    return validate_model(irm_trace, policies=("lru", "fifo"))


class TestValidate:
    def test_grid_shape(self, report):
        assert len(report.cells) == 2 * len(PAPER_SIZE_FRACTIONS)
        assert report.policies == ["lru", "fifo"]
        ladder = [c.capacity_bytes for c in report.cells
                  if c.policy == "lru"]
        assert ladder == sorted(ladder)

    def test_lru_mae_within_two_points(self, report):
        """The ISSUE acceptance criterion, enforced in-tree."""
        assert report.policy_mean_absolute_error("lru") <= 0.02

    def test_all_policies_mae_within_tolerance(self, report):
        # The non-reset family is slightly looser but still close on
        # an IRM trace.
        assert report.mean_absolute_error <= 0.03
        assert report.max_absolute_error <= 0.05

    def test_per_type_errors_recorded(self, report):
        cell = report.cells[0]
        assert cell.per_type
        for entry in cell.per_type.values():
            assert entry["hit_rate_error"] == pytest.approx(
                abs(entry["predicted_hit_rate"]
                    - entry["simulated_hit_rate"]))

    def test_byte_hit_rates_tracked(self, report):
        assert 0.0 <= report.byte_mean_absolute_error <= 0.1

    def test_unknown_policy_rejected(self, irm_trace):
        with pytest.raises(ConfigurationError):
            validate_model(irm_trace, policies=("gd*(1)",))

    def test_no_policies_rejected(self, irm_trace):
        with pytest.raises(ConfigurationError):
            validate_model(irm_trace, policies=())

    def test_unlisted_policy_mae_rejected(self, report):
        with pytest.raises(ConfigurationError):
            report.policy_mean_absolute_error("random")


class TestReportSerialization:
    def test_as_dict(self, report):
        payload = report.as_dict()
        assert payload["cells"]
        assert payload["per_policy_mean_absolute_error"].keys() == \
            {"lru", "fifo"}
        assert payload["mean_absolute_error"] == \
            report.mean_absolute_error

    def test_save_roundtrip(self, report, tmp_path):
        path = report.save(tmp_path / "report.json")
        loaded = json.loads(path.read_text())
        assert loaded == report.as_dict()

    def test_text_table(self, report):
        text = report.text()
        assert "hit-rate MAE" in text
        assert "lru" in text
        # One row per cell plus headers/footers.
        assert len(text.splitlines()) >= len(report.cells) + 3

    def test_empty_report_aggregates(self):
        from repro.model.validation import ValidationReport

        empty = ValidationReport(trace_name="x", total_requests=0,
                                 warmup_fraction=0.0)
        assert empty.mean_absolute_error == 0.0
        assert empty.max_absolute_error == 0.0


class TestWarmup:
    def test_warmup_applies_to_both_stacks(self, irm_trace):
        report = validate_model(irm_trace, policies=("lru",),
                                fractions=(0.01,),
                                warmup_fraction=0.3)
        assert report.warmup_fraction == 0.3
        # The warmup generalization stays honest too.
        assert report.mean_absolute_error <= 0.04
