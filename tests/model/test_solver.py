"""Tests for the characteristic-time solver."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.model.solver import (
    MODEL_POLICIES,
    hit_probabilities,
    normalize_policy,
    occupancy_bytes,
    solve_characteristic_time,
    solve_curve,
)


@pytest.fixture(scope="module")
def zipf_catalog():
    """500-document Zipf(0.8) catalog with heavy-tailed sizes."""
    rng = np.random.default_rng(5)
    ranks = np.arange(1, 501, dtype=np.float64)
    weights = ranks ** -0.8
    rates = weights / weights.sum()
    sizes = np.exp(rng.normal(9.0, 1.0, size=500))
    return rates, sizes


class TestNormalize:
    def test_case_insensitive(self):
        assert normalize_policy("LRU") == "lru"

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            normalize_policy("gd*(1)")


class TestRootFinding:
    @pytest.mark.parametrize("policy", MODEL_POLICIES)
    def test_occupancy_pinned_to_capacity(self, zipf_catalog, policy):
        rates, sizes = zipf_catalog
        capacity = 0.05 * sizes.sum()
        result = solve_characteristic_time(rates, sizes, capacity,
                                           policy=policy)
        assert result.converged
        occupancy = occupancy_bytes(rates, sizes,
                                    result.characteristic_time, policy)
        assert occupancy == pytest.approx(capacity, rel=1e-6)

    def test_whole_catalog_capacity_is_infinite_time(self, zipf_catalog):
        rates, sizes = zipf_catalog
        result = solve_characteristic_time(rates, sizes, sizes.sum())
        assert math.isinf(result.characteristic_time)
        assert result.converged
        assert hit_probabilities(rates,
                                 result.characteristic_time).tolist() \
            == [1.0] * len(rates)

    def test_fifo_equals_random(self, zipf_catalog):
        """Gelenbe 1973: FIFO and RANDOM share IRM hit rates."""
        rates, sizes = zipf_catalog
        capacity = 0.02 * sizes.sum()
        fifo = solve_characteristic_time(rates, sizes, capacity, "fifo")
        random_ = solve_characteristic_time(rates, sizes, capacity,
                                            "random")
        assert fifo.characteristic_time == pytest.approx(
            random_.characteristic_time, rel=1e-9)

    def test_lru_beats_fifo_under_irm(self, zipf_catalog):
        """Che: the reset timer retains populars longer."""
        rates, sizes = zipf_catalog
        capacity = 0.02 * sizes.sum()
        lru = solve_characteristic_time(rates, sizes, capacity, "lru")
        fifo = solve_characteristic_time(rates, sizes, capacity, "fifo")
        lru_rate = float((rates * hit_probabilities(
            rates, lru.characteristic_time, "lru")).sum())
        fifo_rate = float((rates * hit_probabilities(
            rates, fifo.characteristic_time, "fifo")).sum())
        assert lru_rate >= fifo_rate

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            solve_characteristic_time([0.5, 0.5], [1, 1], 0.0)
        with pytest.raises(ConfigurationError):
            solve_characteristic_time([], [], 10.0)
        with pytest.raises(ConfigurationError):
            solve_characteristic_time([0.5], [1, 1], 10.0)
        with pytest.raises(ConfigurationError):
            solve_characteristic_time([-0.5, 1.5], [1, 1], 1.0)

    def test_rates_need_not_be_normalized(self, zipf_catalog):
        """Rates scale T_C reciprocally; hit rates are invariant."""
        rates, sizes = zipf_catalog
        capacity = 0.03 * sizes.sum()
        unit = solve_characteristic_time(rates, sizes, capacity)
        scaled = solve_characteristic_time(rates * 1000.0, sizes,
                                           capacity)
        assert scaled.characteristic_time == pytest.approx(
            unit.characteristic_time / 1000.0, rel=1e-6)


class TestCurve:
    def test_matches_individual_solves(self, zipf_catalog):
        rates, sizes = zipf_catalog
        capacities = [0.4 * sizes.sum(), 0.01 * sizes.sum(),
                      0.1 * sizes.sum()]
        ladder = solve_curve(rates, sizes, capacities)
        for capacity, result in zip(capacities, ladder):
            single = solve_characteristic_time(rates, sizes, capacity)
            assert result.capacity_bytes == capacity
            assert result.characteristic_time == pytest.approx(
                single.characteristic_time, rel=1e-6)

    def test_input_order_preserved(self, zipf_catalog):
        rates, sizes = zipf_catalog
        capacities = [300.0, 100.0, 200.0]
        ladder = solve_curve(rates, sizes, capacities)
        assert [r.capacity_bytes for r in ladder] == capacities

    def test_empty_rejected(self, zipf_catalog):
        rates, sizes = zipf_catalog
        with pytest.raises(ConfigurationError):
            solve_curve(rates, sizes, [])


class TestMetrics:
    def test_solves_counted_when_enabled(self, zipf_catalog):
        from repro.observability.metrics import (
            disable_metrics,
            enable_metrics,
            get_registry,
        )

        rates, sizes = zipf_catalog
        enable_metrics()
        try:
            solve_characteristic_time(rates, sizes, 0.01 * sizes.sum())
            samples = get_registry().collect()
            counts = [s for s in samples
                      if s["name"] == "model_solves_total"
                      and s["labels"] == {"policy": "lru"}]
            assert counts and counts[0]["value"] >= 1
        finally:
            disable_metrics()
