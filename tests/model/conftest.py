"""Shared fixtures for the analytical-model tests.

One small IRM trace (the regime the Che approximation assumes) and its
calibrated catalog, shared session-wide — calibration is cheap but the
trace generation is the slow part.
"""

from __future__ import annotations

import logging

import pytest

from repro.model.catalog import catalog_from_trace
from repro.workload.generator import generate_trace
from repro.workload.profiles import dfn_like


@pytest.fixture()
def propagating_repro_logger():
    """Let ``repro.*`` records reach caplog's root handler.

    ``configure_logging`` (exercised by CLI tests elsewhere in the
    suite) sets ``propagate = False`` on the ``repro`` logger, which
    would hide its records from caplog depending on test order.
    """
    logger = logging.getLogger("repro")
    saved = logger.propagate
    logger.propagate = True
    try:
        yield
    finally:
        logger.propagate = saved


@pytest.fixture(scope="session")
def irm_trace():
    """DFN-like trace at 1/256 scale under the IRM temporal model.

    1/256 is the smallest power-of-two scale where the Che
    approximation's finite-catalog error stays comfortably inside the
    2pp acceptance tolerance (halving again roughly doubles the MAE —
    the approximation is asymptotic in catalog size).
    """
    return generate_trace(dfn_like(scale=1.0 / 256.0),
                          temporal_model="irm")


@pytest.fixture(scope="session")
def irm_catalog(irm_trace):
    return catalog_from_trace(irm_trace)
