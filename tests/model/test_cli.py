"""Tests for the ``model`` subcommand of the experiments CLI."""

import json

import pytest

from repro.experiments.cli import main as experiments_main
from repro.model.cli import main as model_main
from repro.trace.writer import write_trace

BASE = ["--profile", "uniform", "--profile-scale", "0.02"]


def run(capsys, argv):
    code = model_main(argv)
    return code, capsys.readouterr().out


class TestPredict:
    def test_table_output(self, capsys):
        code, out = run(capsys, ["predict", "--capacity", "200000",
                                 *BASE])
        assert code == 0
        assert "hit rate" in out
        assert "lru" in out

    def test_json_output(self, capsys):
        code, out = run(capsys, ["predict", "--capacity", "200000",
                                 "--json", *BASE])
        payload = json.loads(out)
        assert code == 0
        assert payload["policy"] == "lru"
        assert 0.0 <= payload["hit_rate"] <= 1.0
        assert payload["per_type"]

    def test_hierarchy(self, capsys):
        code, out = run(capsys, ["predict", "--capacity", "100000",
                                 "--parent-capacity", "400000",
                                 "--json", *BASE])
        payload = json.loads(out)
        assert code == 0
        assert payload["combined_hit_rate"] >= \
            payload["child"]["hit_rate"] - 1e-12

    def test_source_required(self, capsys):
        code = model_main(["predict", "--capacity", "1000"])
        assert code == 2  # ConfigurationError path

    def test_both_sources_rejected(self, capsys, tmp_path):
        code = model_main(["predict", "--capacity", "1000",
                           "--trace", "x.csv", *BASE])
        assert code == 2


class TestCurve:
    def test_default_fractions(self, capsys):
        code, out = run(capsys, ["curve", "--json", *BASE])
        payload = json.loads(out)
        assert code == 0
        assert len(payload) == 4  # the paper's ladder
        capacities = [p["capacity_bytes"] for p in payload]
        assert capacities == sorted(capacities)

    def test_explicit_capacities(self, capsys):
        code, out = run(capsys, ["curve", "--capacities",
                                 "100000,300000", "--policy", "fifo",
                                 "--json", *BASE])
        payload = json.loads(out)
        assert code == 0
        assert [p["policy"] for p in payload] == ["fifo", "fifo"]

    def test_trace_calibration_single_pass(self, capsys, tmp_path,
                                           tiny_uniform_trace):
        path = tmp_path / "trace.csv"
        write_trace(path, tiny_uniform_trace)
        code, out = run(capsys, ["curve", "--trace", str(path),
                                 "--json"])
        payload = json.loads(out)
        assert code == 0
        assert len(payload) == 4


class TestValidate:
    def test_gate_passes_on_irm(self, capsys):
        code, out = run(capsys, ["validate", *BASE, "--irm",
                                 "--policies", "lru",
                                 "--fractions", "0.01,0.04",
                                 "--max-mae", "0.05"])
        assert code == 0
        assert "MAE" in out

    def test_gate_fails_on_absurd_tolerance(self, capsys):
        code, _ = run(capsys, ["validate", *BASE, "--irm",
                               "--policies", "lru",
                               "--fractions", "0.01",
                               "--max-mae", "0.0000001"])
        assert code == 1

    def test_report_written(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        code, _ = run(capsys, ["validate", *BASE, "--irm",
                               "--policies", "lru",
                               "--fractions", "0.01",
                               "--report", str(report_path)])
        assert code == 0
        payload = json.loads(report_path.read_text())
        assert payload["cells"]


class TestDispatchAndTelemetry:
    def test_experiments_cli_dispatches_model(self, capsys):
        code = experiments_main(["model", "predict", "--capacity",
                                 "200000", *BASE])
        assert code == 0
        assert "hit rate" in capsys.readouterr().out

    def test_telemetry_run_written(self, capsys, tmp_path):
        from repro.observability import read_events, \
            validate_telemetry_dir

        run_dir = tmp_path / "telemetry"
        code, _ = run(capsys, ["curve", *BASE, "--telemetry-dir",
                               str(run_dir)])
        assert code == 0
        assert validate_telemetry_dir(run_dir) == []
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["kind"] == "model-curve"
        assert manifest["status"] == "complete"
        events = read_events(run_dir / "events.jsonl")
        assert any(e["event"] == "model_curve_computed"
                   for e in events)
