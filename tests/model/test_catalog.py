"""Tests for model calibration (the Catalog and its three routes)."""

import logging

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.model.catalog import (
    Catalog,
    catalog_from_counts,
    catalog_from_profile,
    catalog_from_trace,
)
from repro.types import DocumentType, Trace
from repro.workload.fitting import fit_profile
from repro.workload.profiles import dfn_like, uniform_profile

from tests.conftest import make_request


class TestCatalogInvariants:
    def test_minimal_catalog(self):
        catalog = Catalog(probabilities=[0.5, 0.5], sizes=[100, 200],
                          type_codes=[0, 1])
        assert catalog.n_documents == 2
        assert catalog.total_bytes == 300
        assert catalog.counts is None
        assert catalog.total_requests is None
        # mean_transfers defaults to sizes.
        assert np.array_equal(catalog.mean_transfers, catalog.sizes)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Catalog(probabilities=[], sizes=[], type_codes=[])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            Catalog(probabilities=[0.5, 0.5], sizes=[100],
                    type_codes=[0, 0])

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            Catalog(probabilities=[0.5, 0.6], sizes=[1, 1],
                    type_codes=[0, 0])

    def test_negative_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            Catalog(probabilities=[1.5, -0.5], sizes=[1, 1],
                    type_codes=[0, 0])

    def test_type_code_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            Catalog(probabilities=[1.0], sizes=[1], type_codes=[99])

    def test_type_mask(self):
        catalog = catalog_from_counts(
            [3, 1], doc_types=[DocumentType.IMAGE, DocumentType.HTML])
        assert catalog.type_mask(DocumentType.IMAGE).tolist() == [True,
                                                                  False]

    def test_as_dict_summary(self):
        catalog = catalog_from_counts([3, 1], sizes=10.0, name="x")
        summary = catalog.as_dict()
        assert summary["calibration"] == "empirical"
        assert summary["documents"] == 2
        assert summary["requests"] == 4.0


class TestFromCounts:
    def test_mapping_accepted(self):
        catalog = catalog_from_counts({"a": 3, "b": 1})
        assert catalog.probabilities.tolist() == [0.75, 0.25]
        assert catalog.counts.tolist() == [3.0, 1.0]

    def test_scalar_size_broadcast(self):
        catalog = catalog_from_counts([1, 1, 2], sizes=1.0)
        assert catalog.sizes.tolist() == [1.0, 1.0, 1.0]

    def test_default_type_is_other(self):
        catalog = catalog_from_counts([1])
        assert catalog.type_mask(DocumentType.OTHER).all()

    def test_zero_count_rejected(self):
        with pytest.raises(ConfigurationError):
            catalog_from_counts([1, 0])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            catalog_from_counts([])


class TestFromTrace:
    def test_counts_and_probabilities(self):
        trace = Trace([
            make_request(url="a", size=100),
            make_request(url="a", size=100),
            make_request(url="b", size=50,
                         doc_type=DocumentType.IMAGE),
        ])
        catalog = catalog_from_trace(trace)
        assert catalog.n_documents == 2
        assert catalog.total_requests == 3
        by_url = dict(zip(["a", "b"], catalog.counts))
        assert by_url == {"a": 2.0, "b": 1.0}
        assert catalog.probabilities.sum() == pytest.approx(1.0)

    def test_last_size_wins(self):
        trace = Trace([make_request(url="a", size=100),
                       make_request(url="a", size=300)])
        catalog = catalog_from_trace(trace)
        assert catalog.sizes.tolist() == [300.0]

    def test_transfers_clamped_to_size(self):
        # An interrupted transfer counts its bytes; an overshoot
        # (stale size) is clamped exactly like the simulator clamps.
        trace = Trace([make_request(url="a", size=100, transfer=40),
                       make_request(url="a", size=100, transfer=500)])
        catalog = catalog_from_trace(trace)
        assert catalog.mean_transfers.tolist() == [(40 + 100) / 2]

    def test_accepts_plain_iterable(self):
        requests = iter([make_request(url="a"), make_request(url="b")])
        catalog = catalog_from_trace(requests, name="streamed")
        assert catalog.n_documents == 2
        assert catalog.name == "streamed"

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            catalog_from_trace(Trace([]))


class TestFromProfile:
    def test_matches_generator_budget(self):
        profile = uniform_profile(n_requests=2000, n_documents=400)
        catalog = catalog_from_profile(profile)
        assert catalog.counts.sum() == pytest.approx(2000, rel=0.01)
        assert catalog.n_documents == pytest.approx(400, rel=0.05)
        assert catalog.probabilities.sum() == pytest.approx(1.0)

    def test_deterministic_for_a_seed(self):
        profile = dfn_like(scale=1.0 / 1024.0)
        a = catalog_from_profile(profile)
        b = catalog_from_profile(profile)
        assert np.array_equal(a.sizes, b.sizes)
        assert np.array_equal(a.counts, b.counts)

    def test_interruptions_shrink_mean_transfers(self):
        profile = dfn_like(scale=1.0 / 1024.0)
        catalog = catalog_from_profile(profile)
        assert (catalog.mean_transfers <= catalog.sizes + 1e-9).all()
        assert (catalog.mean_transfers < catalog.sizes).any()

    def test_warns_on_unreliable_fit(self, tiny_dfn_trace, caplog,
                                     propagating_repro_logger):
        """A thin fitted type surfaces as a calibration warning."""
        profile = fit_profile(tiny_dfn_trace)
        assert profile.fit_diagnostics is not None
        assert not profile.fit_diagnostics.clean  # OTHER is absent
        with caplog.at_level(logging.WARNING, logger="repro.model"):
            catalog_from_profile(profile)
        assert any("unreliable" in record.message
                   for record in caplog.records)

    def test_no_warning_without_diagnostics(self, caplog,
                                            propagating_repro_logger):
        profile = uniform_profile(n_requests=1000, n_documents=200)
        with caplog.at_level(logging.WARNING, logger="repro.model"):
            catalog_from_profile(profile)
        assert not [r for r in caplog.records
                    if "unreliable" in r.message]
