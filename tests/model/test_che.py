"""Tests for the Che predictors (predict / curve / hierarchy)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.model.catalog import catalog_from_counts
from repro.model.che import hierarchy_predict, hit_rate_curve, predict
from repro.types import DocumentType


@pytest.fixture(scope="module")
def two_type_catalog():
    """20 documents, two types, unit sizes, Zipf-ish counts."""
    counts = [100 // (rank + 1) + 1 for rank in range(20)]
    doc_types = [DocumentType.IMAGE if rank % 2 == 0
                 else DocumentType.HTML for rank in range(20)]
    return catalog_from_counts(counts, sizes=1.0, doc_types=doc_types,
                               name="two-type")


class TestPredict:
    def test_rates_in_unit_interval(self, irm_catalog):
        prediction = predict(irm_catalog, 2_000_000)
        assert 0.0 <= prediction.hit_rate <= 1.0
        assert 0.0 <= prediction.byte_hit_rate <= 1.0
        for entry in prediction.per_type.values():
            assert 0.0 <= entry.hit_rate <= 1.0
            assert 0.0 <= entry.byte_hit_rate <= 1.0

    def test_overall_is_share_weighted_type_mix(self, irm_catalog):
        prediction = predict(irm_catalog, 2_000_000)
        mixed = sum(entry.request_share * entry.hit_rate
                    for entry in prediction.per_type.values())
        assert prediction.hit_rate == pytest.approx(mixed, abs=1e-9)
        assert sum(entry.request_share
                   for entry in prediction.per_type.values()) \
            == pytest.approx(1.0)

    def test_finite_trace_correction_lowers_hit_rate(self,
                                                     two_type_catalog):
        finite = predict(two_type_catalog, 10)
        steady = predict(two_type_catalog, 10, steady_state=True)
        assert finite.finite_trace
        assert not steady.finite_trace
        # Compulsory misses only ever subtract.
        assert finite.hit_rate < steady.hit_rate

    def test_whole_catalog_capacity(self, two_type_catalog):
        """Everything resident: only compulsory misses remain."""
        prediction = predict(two_type_catalog,
                             two_type_catalog.total_bytes)
        assert math.isinf(prediction.characteristic_time)
        n = two_type_catalog.n_documents
        requests = two_type_catalog.total_requests
        assert prediction.hit_rate == pytest.approx(
            (requests - n) / requests)
        steady = predict(two_type_catalog,
                         two_type_catalog.total_bytes,
                         steady_state=True)
        assert steady.hit_rate == pytest.approx(1.0)

    def test_warmup_raises_measured_hit_rate(self, irm_catalog):
        cold = predict(irm_catalog, 2_000_000, warmup_fraction=0.0)
        warm = predict(irm_catalog, 2_000_000, warmup_fraction=0.3)
        # Warm-up hides part of the compulsory misses.
        assert warm.hit_rate > cold.hit_rate

    def test_warmup_bounds_enforced(self, irm_catalog):
        with pytest.raises(ConfigurationError):
            predict(irm_catalog, 1000, warmup_fraction=1.0)
        with pytest.raises(ConfigurationError):
            predict(irm_catalog, 1000, warmup_fraction=-0.1)

    def test_as_dict_roundtrips_json_types(self, two_type_catalog):
        prediction = predict(two_type_catalog,
                             two_type_catalog.total_bytes)
        payload = prediction.as_dict()
        assert payload["characteristic_time"] is None  # inf → null
        assert set(payload["per_type"]) == {"image", "html"}


class TestCurve:
    def test_matches_pointwise_predict(self, two_type_catalog):
        capacities = [4, 8, 12]
        curve = hit_rate_curve(two_type_catalog, capacities)
        for capacity, from_curve in zip(capacities, curve):
            single = predict(two_type_catalog, capacity)
            assert from_curve.hit_rate == pytest.approx(
                single.hit_rate, rel=1e-9)

    def test_monotone_and_input_order(self, two_type_catalog):
        capacities = [12.0, 4.0, 8.0]
        curve = hit_rate_curve(two_type_catalog, capacities)
        assert [p.capacity_bytes for p in curve] == capacities
        by_capacity = sorted(curve, key=lambda p: p.capacity_bytes)
        for smaller, larger in zip(by_capacity, by_capacity[1:]):
            assert larger.hit_rate >= smaller.hit_rate - 1e-12


class TestHierarchy:
    def test_combined_dominates_child(self, two_type_catalog):
        hierarchy = hierarchy_predict(two_type_catalog, 5, 10)
        assert hierarchy.combined_hit_rate >= \
            hierarchy.child.hit_rate - 1e-12
        assert hierarchy.combined_hit_rate <= 1.0
        assert hierarchy.parent.catalog_name.endswith("-child-misses")

    def test_parent_idle_when_child_holds_catalog(self,
                                                  two_type_catalog):
        hierarchy = hierarchy_predict(
            two_type_catalog, two_type_catalog.total_bytes, 5)
        assert hierarchy.combined_hit_rate == pytest.approx(
            hierarchy.child.hit_rate)
        assert hierarchy.parent.hit_rate == 0.0

    def test_big_parent_approaches_cold_free_ceiling(self,
                                                     two_type_catalog):
        hierarchy = hierarchy_predict(
            two_type_catalog, 5, two_type_catalog.total_bytes)
        assert hierarchy.combined_hit_rate == pytest.approx(1.0)
