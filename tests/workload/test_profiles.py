"""Tests for the calibrated workload profiles."""

import pytest

from repro.errors import ConfigurationError
from repro.types import DOCUMENT_TYPES, DocumentType
from repro.workload.profiles import (
    TypeProfile,
    WorkloadProfile,
    dfn_like,
    profile_by_name,
    rtp_like,
    uniform_profile,
)
from repro.workload.sizes import FixedSizeModel


class TestValidation:
    def base_type(self, **overrides):
        kwargs = dict(doc_share=1.0, request_share=1.0, alpha=0.8,
                      beta=0.4, size_model=FixedSizeModel(100))
        kwargs.update(overrides)
        return TypeProfile(**kwargs)

    def test_valid_profile_passes(self):
        profile = WorkloadProfile("t", 100, 50,
                                  {DocumentType.HTML: self.base_type()})
        profile.validate()

    def test_shares_must_sum_to_one(self):
        profile = WorkloadProfile(
            "t", 100, 50,
            {DocumentType.HTML: self.base_type(doc_share=0.6)})
        with pytest.raises(ConfigurationError):
            profile.validate()

    def test_requests_must_cover_documents(self):
        profile = WorkloadProfile("t", 10, 50,
                                  {DocumentType.HTML: self.base_type()})
        with pytest.raises(ConfigurationError):
            profile.validate()

    def test_type_level_validation(self):
        with pytest.raises(ConfigurationError):
            self.base_type(alpha=-1).validate()
        with pytest.raises(ConfigurationError):
            self.base_type(modification_rate=1.0).validate()
        with pytest.raises(ConfigurationError):
            self.base_type(doc_share=1.5).validate()

    def test_empty_types_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadProfile("t", 100, 50, {}).validate()


class TestCalibratedProfiles:
    def test_dfn_shares_sum(self):
        profile = dfn_like()
        assert sum(t.doc_share for t in profile.types.values()) == \
            pytest.approx(1.0)
        assert sum(t.request_share for t in profile.types.values()) == \
            pytest.approx(1.0)

    def test_dfn_paper_mix(self):
        """Images+HTML ≈ 95 % of documents and requests (paper)."""
        profile = dfn_like()
        img = profile.types[DocumentType.IMAGE]
        html = profile.types[DocumentType.HTML]
        assert img.doc_share + html.doc_share > 0.9
        assert img.request_share + html.request_share > 0.9
        mm = profile.types[DocumentType.MULTIMEDIA]
        assert mm.doc_share == pytest.approx(0.0023)
        assert mm.request_share == pytest.approx(0.0014)

    def test_rtp_has_more_multimedia(self):
        """The paper's central DFN/RTP contrast."""
        dfn, rtp = dfn_like(), rtp_like()
        mm = DocumentType.MULTIMEDIA
        assert rtp.types[mm].doc_share > dfn.types[mm].doc_share
        assert rtp.types[mm].request_share > dfn.types[mm].request_share

    def test_rtp_flatter_popularity(self):
        dfn, rtp = dfn_like(), rtp_like()
        for doc_type in DOCUMENT_TYPES:
            assert rtp.types[doc_type].alpha <= dfn.types[doc_type].alpha

    def test_rtp_stronger_correlation_for_named_types(self):
        """'The slopes β ... for HTML, multi media, and application are
        much bigger' in RTP."""
        dfn, rtp = dfn_like(), rtp_like()
        for doc_type in (DocumentType.HTML, DocumentType.MULTIMEDIA,
                         DocumentType.APPLICATION):
            assert rtp.types[doc_type].beta > dfn.types[doc_type].beta

    def test_beta_ordering_within_dfn(self):
        """Images nearly uncorrelated; multimedia/application strongly
        correlated (paper Section 2)."""
        profile = dfn_like()
        assert profile.types[DocumentType.IMAGE].beta < \
            profile.types[DocumentType.HTML].beta
        assert profile.types[DocumentType.HTML].beta < \
            profile.types[DocumentType.MULTIMEDIA].beta

    def test_alpha_ordering_within_dfn(self):
        """Images most skewed, multimedia/application most even."""
        profile = dfn_like()
        assert profile.types[DocumentType.IMAGE].alpha > \
            profile.types[DocumentType.HTML].alpha > \
            profile.types[DocumentType.MULTIMEDIA].alpha

    def test_scale_argument(self):
        small = dfn_like(scale=1.0 / 512)
        full = dfn_like(scale=1.0)
        assert full.n_requests == 6_718_201
        assert small.n_requests == 6_718_201 // 512
        assert full.n_documents == 2_987_565

    def test_scaled_copy(self):
        profile = dfn_like(scale=1.0)
        half = profile.scaled(0.5)
        assert half.n_requests == profile.n_requests // 2
        assert half.types is not profile.types or \
            half.types == profile.types
        with pytest.raises(ConfigurationError):
            profile.scaled(0)

    def test_profiles_validate(self):
        dfn_like().validate()
        rtp_like().validate()
        uniform_profile().validate()


class TestLookup:
    def test_by_name(self):
        assert profile_by_name("dfn").name == "dfn-like"
        assert profile_by_name("RTP-like").name == "rtp-like"
        assert profile_by_name("dfn", seed=123).seed == 123

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            profile_by_name("nlanr")
