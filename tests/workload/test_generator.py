"""Tests for the synthetic trace generator."""

from collections import Counter

import pytest

from repro.types import DOCUMENT_TYPES, DocumentType
from repro.workload.generator import SyntheticTraceGenerator, generate_trace
from repro.workload.profiles import dfn_like, uniform_profile


@pytest.fixture(scope="module")
def uniform_trace():
    return generate_trace(uniform_profile(n_requests=8000,
                                          n_documents=1500, seed=3))


class TestBasics:
    def test_request_count_exact(self, uniform_trace):
        assert len(uniform_trace) == 8000

    def test_document_count_close(self, uniform_trace):
        distinct = len({r.url for r in uniform_trace})
        assert distinct == pytest.approx(1500, abs=5)

    def test_timestamps_nondecreasing(self, uniform_trace):
        stamps = [r.timestamp for r in uniform_trace]
        assert all(a <= b for a, b in zip(stamps, stamps[1:]))

    def test_deterministic(self):
        profile = uniform_profile(n_requests=1000, n_documents=300, seed=9)
        a = generate_trace(profile)
        b = generate_trace(profile)
        assert [(r.url, r.size, r.transfer_size) for r in a] == \
            [(r.url, r.size, r.transfer_size) for r in b]

    def test_different_seeds_differ(self):
        a = generate_trace(uniform_profile(n_requests=1000,
                                           n_documents=300, seed=1))
        b = generate_trace(uniform_profile(n_requests=1000,
                                           n_documents=300, seed=2))
        assert [r.url for r in a] != [r.url for r in b]

    def test_urls_classifiable(self, uniform_trace):
        """Synthetic URLs survive a round-trip through the classifier."""
        from repro.trace.classify import classify
        for request in uniform_trace.requests[:200]:
            assert classify(request.url, request.content_type) is \
                request.doc_type


class TestMixFidelity:
    def test_request_shares_match_profile(self):
        profile = dfn_like(scale=1.0 / 128)
        trace = generate_trace(profile)
        counts = Counter(r.doc_type for r in trace)
        total = len(trace)
        for doc_type in DOCUMENT_TYPES:
            expected = profile.types[doc_type].request_share
            actual = counts[doc_type] / total
            assert actual == pytest.approx(expected, abs=0.005), doc_type

    def test_document_shares_match_profile(self):
        profile = dfn_like(scale=1.0 / 128)
        trace = generate_trace(profile)
        docs = {}
        for request in trace:
            docs[request.url] = request.doc_type
        counts = Counter(docs.values())
        total = len(docs)
        for doc_type in DOCUMENT_TYPES:
            expected = profile.types[doc_type].doc_share
            actual = counts[doc_type] / total
            assert actual == pytest.approx(expected, abs=0.01), doc_type

    def test_popularity_skew_matches_alpha_ordering(self):
        """Types with larger α concentrate requests on fewer documents."""
        from repro.analysis.popularity import popularity_counts
        profile = dfn_like(scale=1.0 / 128)
        trace = generate_trace(profile)
        img = popularity_counts(trace, DocumentType.IMAGE)
        mm_alpha_proxy = popularity_counts(trace, DocumentType.HTML)

        def head_share(counts):
            ordered = sorted(counts.values(), reverse=True)
            head = max(len(ordered) // 100, 1)
            return sum(ordered[:head]) / sum(ordered)

        # Images (alpha 0.9) more concentrated than HTML (alpha 0.75).
        assert head_share(img) > head_share(mm_alpha_proxy)


class TestPerturbations:
    def test_modifications_injected(self):
        profile = dfn_like(scale=1.0 / 256)
        trace = generate_trace(profile)
        assert trace.modifications_injected > 0
        # Some URL's size changes over the trace.
        sizes = {}
        changed = 0
        for request in trace:
            previous = sizes.get(request.url)
            if previous is not None and previous != request.size:
                changed += 1
                delta = abs(request.size - previous) / previous
                assert delta < 0.05, "modification exceeded tolerance"
            sizes[request.url] = request.size
        assert changed == trace.modifications_injected

    def test_interruptions_injected(self):
        profile = dfn_like(scale=1.0 / 256)
        trace = generate_trace(profile)
        assert trace.interruptions_injected > 0
        interrupted = [r for r in trace if r.transfer_size < r.size]
        assert len(interrupted) == trace.interruptions_injected
        for request in interrupted:
            assert request.transfer_size <= request.size * 0.95

    def test_multimedia_interrupted_most(self):
        """The paper's rationale: users abort large transfers."""
        profile = dfn_like(scale=1.0 / 64)
        trace = generate_trace(profile)
        rates = {}
        totals = Counter(r.doc_type for r in trace)
        aborted = Counter(r.doc_type for r in trace
                          if r.transfer_size < r.size)
        for doc_type in (DocumentType.IMAGE, DocumentType.MULTIMEDIA):
            rates[doc_type] = aborted[doc_type] / totals[doc_type]
        assert rates[DocumentType.MULTIMEDIA] > rates[DocumentType.IMAGE]


class TestEdgeCases:
    def test_tiny_profile(self):
        trace = generate_trace(uniform_profile(n_requests=10,
                                               n_documents=5, seed=1))
        assert len(trace) == 10

    def test_single_document_type_starved_of_requests(self):
        """A type with documents but a rounding-starved request budget
        must shrink its population rather than fail."""
        trace = generate_trace(uniform_profile(n_requests=12,
                                               n_documents=10, seed=2))
        assert len(trace) == 12

    def test_generator_object_reusable(self):
        generator = SyntheticTraceGenerator(
            uniform_profile(n_requests=500, n_documents=100, seed=4))
        a = generator.generate()
        b = generator.generate()
        assert [r.url for r in a] == [r.url for r in b]
