"""Tests for the power-law gap sampler and reference placement."""

import random

import numpy as np
import pytest

from repro.workload.temporal import PowerLawGapSampler, place_references


class TestSampler:
    def test_validation(self):
        with pytest.raises(ValueError):
            PowerLawGapSampler(-0.1, 100)
        with pytest.raises(ValueError):
            PowerLawGapSampler(0.5, 0)

    def test_gaps_in_range(self):
        sampler = PowerLawGapSampler(0.7, 1000, seed=1)
        gaps = sampler.sample_many(5000)
        assert gaps.min() >= 1
        assert gaps.max() <= 1000

    def test_max_gap_one_degenerate(self):
        sampler = PowerLawGapSampler(0.5, 1, seed=2)
        assert sampler.sample() == 1
        assert all(g == 1 for g in sampler.sample_many(10))
        assert sampler.mean_gap() == 1.0

    def test_beta_one_special_case(self):
        sampler = PowerLawGapSampler(1.0, 10_000, seed=3)
        gaps = sampler.sample_many(5000)
        assert gaps.min() >= 1 and gaps.max() <= 10_000

    def test_higher_beta_shorter_gaps(self):
        means = []
        for beta in (0.1, 0.5, 0.9):
            sampler = PowerLawGapSampler(beta, 100_000, seed=5)
            means.append(float(sampler.sample_many(20_000).mean()))
        assert means[0] > means[1] > means[2]

    def test_empirical_mean_matches_analytic(self):
        sampler = PowerLawGapSampler(0.6, 10_000, seed=7)
        empirical = float(sampler.sample_many(200_000).mean())
        assert empirical == pytest.approx(sampler.mean_gap(), rel=0.05)

    def test_analytic_mean_special_betas(self):
        # beta = 1 and beta = 2 hit the log branches.
        for beta in (1.0, 2.0):
            sampler = PowerLawGapSampler(beta, 1000, seed=9)
            empirical = float(sampler.sample_many(200_000).mean())
            assert empirical == pytest.approx(sampler.mean_gap(), rel=0.1)

    def test_deterministic(self):
        a = PowerLawGapSampler(0.5, 1000, seed=11).sample_many(50)
        b = PowerLawGapSampler(0.5, 1000, seed=11).sample_many(50)
        assert (a == b).all()

    def test_distribution_slope(self):
        """Sampled gaps fit back to the requested β."""
        from repro.structures.histogram import (
            LogHistogram, least_squares_slope)
        beta = 0.7
        sampler = PowerLawGapSampler(beta, 10 ** 6, seed=13)
        hist = LogHistogram(max_value=10 ** 6, bins_per_decade=4)
        for gap in sampler.sample_many(100_000):
            hist.add(gap)
        slope = least_squares_slope(hist.loglog_points())
        assert -slope == pytest.approx(beta, abs=0.12)


class TestPlacement:
    def test_counts_and_range(self):
        rng = random.Random(1)
        sampler = PowerLawGapSampler(0.5, 1000, seed=2)
        positions = place_references(25, 1000.0, sampler, rng)
        assert len(positions) == 25
        assert all(0 <= p < 1000.0 for p in positions)

    def test_zero_refs(self):
        rng = random.Random(1)
        sampler = PowerLawGapSampler(0.5, 100, seed=2)
        assert place_references(0, 100.0, sampler, rng) == []

    def test_single_ref_uniform(self):
        rng = random.Random(3)
        sampler = PowerLawGapSampler(0.5, 100, seed=4)
        positions = [place_references(1, 100.0, sampler, rng)[0]
                     for _ in range(2000)]
        assert np.mean(positions) == pytest.approx(50.0, abs=5.0)

    def test_positions_distinct(self):
        rng = random.Random(5)
        sampler = PowerLawGapSampler(0.8, 10_000, seed=6)
        positions = place_references(100, 10_000.0, sampler, rng)
        assert len(set(positions)) == len(positions)
