"""Tests for the Independent Reference Model generation arm."""

import pytest

from repro.analysis.correlation import estimate_beta
from repro.errors import ConfigurationError
from repro.types import DocumentType
from repro.workload.generator import SyntheticTraceGenerator, generate_trace
from repro.workload.profiles import uniform_profile
from repro.workload.temporal import place_references_irm


def test_unknown_temporal_model_rejected():
    with pytest.raises(ConfigurationError):
        SyntheticTraceGenerator(uniform_profile(), temporal_model="markov")


def test_irm_positions_uniform():
    import random
    rng = random.Random(3)
    positions = place_references_irm(5000, 100.0, rng)
    assert len(positions) == 5000
    assert all(0 <= p < 100.0 for p in positions)
    mean = sum(positions) / len(positions)
    assert mean == pytest.approx(50.0, abs=2.0)


def test_irm_preserves_counts_and_popularity():
    profile = uniform_profile(n_requests=6000, n_documents=1200, seed=5)
    gaps = generate_trace(profile, temporal_model="gaps")
    irm = generate_trace(profile, temporal_model="irm")
    assert len(gaps) == len(irm) == 6000

    def counts(trace):
        from collections import Counter
        return Counter(r.url for r in trace)

    # Same documents, same per-document request counts: only the
    # *placement* differs.
    assert counts(gaps) == counts(irm)


def test_irm_weakens_measured_correlation():
    """β estimated on an IRM trace is lower than on the gap trace
    generated from the same (high-β) profile."""
    profile = uniform_profile(n_requests=20_000, n_documents=2500,
                              alpha=0.1, beta=0.9, seed=7)
    gaps = generate_trace(profile, temporal_model="gaps")
    irm = generate_trace(profile, temporal_model="irm")
    beta_gaps = estimate_beta(gaps.requests, max_refs=100)
    beta_irm = estimate_beta(irm.requests, max_refs=100)
    assert beta_gaps > beta_irm


def test_irm_deterministic():
    profile = uniform_profile(n_requests=1000, n_documents=300, seed=9)
    a = generate_trace(profile, temporal_model="irm")
    b = generate_trace(profile, temporal_model="irm")
    assert [r.url for r in a] == [r.url for r in b]
