"""Tests for the modification/interruption injector."""

import random

import pytest

from repro.types import DocumentType, Request
from repro.workload.modifications import MIN_MODIFIABLE_SIZE, ChangeInjector
from repro.workload.profiles import uniform_profile


def stream(url="u", size=10_000, count=100,
           doc_type=DocumentType.HTML):
    return [Request(float(i), url, size, size, doc_type)
            for i in range(count)]


def injector_with_rates(modification=0.0, interruption=0.0, seed=1):
    profile = uniform_profile(n_requests=100, n_documents=10)
    for type_profile in profile.types.values():
        type_profile.modification_rate = modification
        type_profile.interruption_rate = interruption
    return ChangeInjector(profile, rng=random.Random(seed))


def test_zero_rates_passthrough():
    injector = injector_with_rates()
    original = stream()
    out = list(injector.process(original))
    assert out == original
    assert injector.modifications == 0
    assert injector.interruptions == 0


def test_modifications_stay_within_tolerance():
    injector = injector_with_rates(modification=0.5)
    out = list(injector.process(stream(count=500)))
    previous = None
    for request in out:
        if previous is not None and request.size != previous:
            delta = abs(request.size - previous) / previous
            assert 0 < delta < 0.05
        previous = request.size
    assert injector.modifications > 0


def test_first_visit_never_modified():
    injector = injector_with_rates(modification=0.99, seed=3)
    out = list(injector.process(
        [Request(0.0, f"u{i}", 10_000, 10_000, DocumentType.HTML)
         for i in range(100)]))
    assert injector.modifications == 0
    assert all(r.size == 10_000 for r in out)


def test_tiny_documents_not_modified():
    injector = injector_with_rates(modification=0.99)
    out = list(injector.process(stream(size=MIN_MODIFIABLE_SIZE - 1,
                                       count=200)))
    assert injector.modifications == 0
    assert all(r.size == MIN_MODIFIABLE_SIZE - 1 for r in out)


def test_interruptions_cut_transfer_only():
    injector = injector_with_rates(interruption=0.5)
    out = list(injector.process(stream(count=500)))
    assert injector.interruptions > 0
    for request in out:
        assert request.size == 10_000     # document size untouched
        if request.transfer_size < request.size:
            # At least the 5 % tolerance below full size.
            assert request.transfer_size <= request.size * 0.95
            assert request.transfer_size >= 1


def test_modified_size_persists_for_later_requests():
    injector = injector_with_rates(modification=1.0, seed=5)
    out = list(injector.process(stream(count=3)))
    # Request 2 sees the size request 1 was modified to (before its own
    # modification), i.e. sizes form a chain, not oscillation around
    # the original.
    assert out[1].size != out[0].size
    # The injector's memory of the URL is the latest size.
    assert injector._current_sizes["u"] == out[2].size


def test_unknown_type_passthrough():
    profile = uniform_profile(n_requests=100, n_documents=10)
    del profile.types[DocumentType.OTHER]
    injector = ChangeInjector(profile, rng=random.Random(1))
    original = stream(doc_type=DocumentType.OTHER)
    assert list(injector.process(original)) == original


def test_deterministic_given_rng():
    a = list(injector_with_rates(0.3, 0.3, seed=7).process(stream()))
    b = list(injector_with_rates(0.3, 0.3, seed=7).process(stream()))
    assert a == b
