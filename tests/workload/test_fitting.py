"""Tests for profile fitting (synthetic twins)."""

import pytest

from repro.errors import ConfigurationError
from repro.types import DOCUMENT_TYPES, DocumentType, Trace
from repro.workload.fitting import fidelity_report, fit_profile
from repro.workload.generator import generate_trace
from repro.workload.profiles import dfn_like


@pytest.fixture(scope="module")
def dfn_trace():
    return generate_trace(dfn_like(scale=1.0 / 128))


@pytest.fixture(scope="module")
def fitted(dfn_trace):
    return fit_profile(dfn_trace)


class TestFit:
    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_profile(Trace([]))

    def test_profile_validates(self, fitted):
        fitted.validate()
        assert fitted.name.endswith("-fitted")

    def test_volume_matches(self, fitted, dfn_trace):
        assert fitted.n_requests == len(dfn_trace)
        assert fitted.n_documents == len({r.url for r in dfn_trace})

    def test_shares_recovered(self, fitted):
        """The fitted shares land on the generating profile's."""
        original = dfn_like()
        for doc_type in DOCUMENT_TYPES:
            assert fitted.types[doc_type].request_share == pytest.approx(
                original.types[doc_type].request_share, abs=0.01), doc_type

    def test_alpha_ordering_recovered(self, fitted):
        """Images most skewed, multimedia least (the DFN design)."""
        assert fitted.types[DocumentType.IMAGE].alpha > \
            fitted.types[DocumentType.HTML].alpha

    def test_beta_ordering_recovered(self, fitted):
        assert fitted.types[DocumentType.APPLICATION].beta > \
            fitted.types[DocumentType.IMAGE].beta

    def test_size_medians_recovered(self, fitted):
        """Fitted medians land near the generating models'."""
        original = dfn_like()
        for doc_type in (DocumentType.IMAGE, DocumentType.HTML):
            fitted_median = fitted.types[doc_type].size_model.median_bytes
            original_median = \
                original.types[doc_type].size_model.median_bytes
            assert fitted_median == pytest.approx(original_median,
                                                  rel=0.25), doc_type

    def test_perturbation_rates_positive(self, fitted):
        html = fitted.types[DocumentType.HTML]
        mm = fitted.types[DocumentType.MULTIMEDIA]
        assert html.modification_rate > 0
        assert mm.interruption_rate > html.interruption_rate

    def test_handles_single_type_trace(self):
        from repro.types import Request
        requests = [Request(float(i), f"u{i % 7}", 100, 100,
                            DocumentType.IMAGE) for i in range(200)]
        profile = fit_profile(Trace(requests, name="mono"))
        profile.validate()
        assert profile.types[DocumentType.IMAGE].request_share == \
            pytest.approx(1.0, abs=1e-3)


class TestTwinFidelity:
    def test_twin_matches_original_breakdown(self, dfn_trace, fitted):
        twin = generate_trace(fitted)
        report = fidelity_report(dfn_trace, twin)
        assert report["request_volume_ratio"] == pytest.approx(1.0,
                                                               abs=0.01)
        assert report["total_requests_max_dev"] < 1.0     # pct points
        assert report["distinct_documents_max_dev"] < 1.5
        assert report["requested_data_max_dev"] < 12.0    # heavy tails

    def test_twin_preserves_policy_ordering(self, dfn_trace, fitted):
        """The acceptance test that matters: the paper's headline
        ordering measured on the twin matches the original."""
        from repro.simulation.simulator import simulate

        twin = generate_trace(fitted)

        def ordering(trace):
            capacity = int(trace.metadata().total_size_bytes * 0.02)
            rates = {p: simulate(trace, p, capacity).hit_rate()
                     for p in ("lru", "gds(1)", "gd*(1)")}
            return sorted(rates, key=rates.get)

        assert ordering(dfn_trace) == ordering(twin)

    def test_scaled_twin(self, fitted):
        half = fitted.scaled(0.5)
        twin = generate_trace(half)
        assert len(twin) == pytest.approx(fitted.n_requests / 2, rel=0.01)


class TestFitDiagnostics:
    """Satellite of the analytical-model work: every fit carries its
    provenance so model calibration can warn on unreliable types."""

    def test_diagnostics_attached_and_complete(self, fitted):
        diagnostics = fitted.fit_diagnostics
        assert diagnostics is not None
        assert set(diagnostics.by_type) == set(DOCUMENT_TYPES)

    def test_rich_type_fits_cleanly(self, fitted, dfn_trace):
        entry = fitted.fit_diagnostics.by_type[DocumentType.IMAGE]
        assert entry.n_requests == sum(
            1 for r in dfn_trace if r.doc_type is DocumentType.IMAGE)
        assert entry.alpha_method in ("mle", "regression")
        assert entry.beta_method == "estimated"
        assert entry.problems() == []

    def test_absent_type_flagged(self, dfn_trace):
        subset = Trace([r for r in dfn_trace
                        if r.doc_type is not DocumentType.MULTIMEDIA])
        entry = fit_profile(subset).fit_diagnostics.by_type[
            DocumentType.MULTIMEDIA]
        assert entry.n_requests == 0
        assert entry.problems() == [
            "type absent from trace (defaults used)"]

    def test_problems_map_omits_clean_types(self, dfn_trace):
        subset = Trace([r for r in dfn_trace
                        if r.doc_type is not DocumentType.MULTIMEDIA])
        diagnostics = fit_profile(subset).fit_diagnostics
        problems = diagnostics.problems()
        assert DocumentType.IMAGE not in problems
        assert DocumentType.MULTIMEDIA in problems
        assert not diagnostics.clean

    def test_thin_type_flagged(self):
        """A tiny trace trips the thin-sample warning."""
        from repro.workload.profiles import dfn_like

        trace = generate_trace(dfn_like(scale=1.0 / 4096))
        diagnostics = fit_profile(trace).fit_diagnostics
        thin = [t for t, entry in diagnostics.by_type.items()
                if entry.n_requests
                and any("thin sample" in p for p in entry.problems())]
        assert thin  # multimedia at least

    def test_scaling_preserves_diagnostics(self, fitted):
        assert fitted.scaled(0.5).fit_diagnostics is \
            fitted.fit_diagnostics

    def test_as_dict_serializes(self, fitted):
        import json

        payload = fitted.fit_diagnostics.as_dict()
        json.dumps(payload)  # JSON-safe
        assert payload["image"]["problems"] == []
        assert payload["image"]["alpha_method"] in ("mle",
                                                    "regression")
