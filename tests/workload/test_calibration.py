"""Calibration regression tests.

EXPERIMENTS.md documents how closely the synthetic profiles land on
the paper's published statistics; these tests pin that calibration so
profile edits cannot silently drift away from the paper.  All targets
come from the paper's prose (the intact numbers); tolerances reflect
sampling noise at 1/64 scale (the scale EXPERIMENTS.md documents).
"""

import pytest

from repro.analysis.characterize import characterize, type_breakdown
from repro.types import DocumentType
from repro.workload.generator import generate_trace
from repro.workload.profiles import dfn_like, rtp_like

IMAGE = DocumentType.IMAGE
HTML = DocumentType.HTML
MM = DocumentType.MULTIMEDIA
APP = DocumentType.APPLICATION


@pytest.fixture(scope="module")
def dfn_breakdown():
    return type_breakdown(generate_trace(dfn_like(scale=1 / 64)))


@pytest.fixture(scope="module")
def rtp_breakdown():
    return type_breakdown(generate_trace(rtp_like(scale=1 / 64)))


class TestDFNCalibration:
    def test_request_mix(self, dfn_breakdown):
        """Request shares are exact by construction."""
        requests = dfn_breakdown.total_requests
        assert requests[IMAGE] == pytest.approx(70.0, abs=0.2)
        assert requests[HTML] == pytest.approx(21.2, abs=0.2)
        assert requests[MM] == pytest.approx(0.14, abs=0.03)
        assert requests[APP] == pytest.approx(2.6, abs=0.1)

    def test_document_mix(self, dfn_breakdown):
        documents = dfn_breakdown.distinct_documents
        assert documents[MM] == pytest.approx(0.23, abs=0.05)
        assert documents[IMAGE] + documents[HTML] > 90.0

    def test_requested_data_shares(self, dfn_breakdown):
        """Paper: images 30.8 %, application 34.8 % of requested data;
        multimedia+application > 40 %."""
        data = dfn_breakdown.requested_data
        assert data[IMAGE] == pytest.approx(30.8, abs=5.0)
        assert data[APP] == pytest.approx(34.8, abs=6.0)
        assert data[MM] + data[APP] > 40.0

    def test_mm_plus_app_small_request_share(self, dfn_breakdown):
        requests = dfn_breakdown.total_requests
        assert requests[MM] + requests[APP] < 5.0


class TestRTPCalibration:
    def test_request_mix(self, rtp_breakdown):
        requests = rtp_breakdown.total_requests
        assert requests[HTML] == pytest.approx(44.2, abs=0.3)
        assert requests[MM] == pytest.approx(0.33, abs=0.05)

    def test_document_mix(self, rtp_breakdown):
        assert rtp_breakdown.distinct_documents[MM] == \
            pytest.approx(0.41, abs=0.06)

    def test_rtp_vs_dfn_contrasts(self, dfn_breakdown, rtp_breakdown):
        """The cross-trace inequalities the paper's Section 4.4 lists."""
        # More multimedia documents and requests.
        assert rtp_breakdown.distinct_documents[MM] > \
            dfn_breakdown.distinct_documents[MM]
        assert rtp_breakdown.total_requests[MM] > \
            dfn_breakdown.total_requests[MM]
        # Smaller image and application byte shares.
        assert rtp_breakdown.requested_data[IMAGE] < \
            dfn_breakdown.requested_data[IMAGE]
        assert rtp_breakdown.requested_data[APP] < \
            dfn_breakdown.requested_data[APP]
        # More HTML requests.
        assert rtp_breakdown.total_requests[HTML] > \
            2 * dfn_breakdown.total_requests[HTML]


class TestLocalityCalibration:
    @pytest.fixture(scope="class")
    def dfn_char(self):
        return characterize(generate_trace(dfn_like(scale=1 / 64)))

    @pytest.fixture(scope="class")
    def rtp_char(self):
        return characterize(generate_trace(rtp_like(scale=1 / 64)))

    def test_alpha_orderings(self, dfn_char):
        """Images most skewed; multimedia/application most even."""
        assert dfn_char.alpha(IMAGE) > dfn_char.alpha(HTML)
        assert dfn_char.alpha(HTML) > dfn_char.alpha(MM)

    def test_beta_inverse_trend(self, dfn_char):
        """Images nearly uncorrelated; mm/app strongly correlated."""
        assert dfn_char.beta(IMAGE) < dfn_char.beta(APP)

    def test_rtp_flatter_popularity(self, dfn_char, rtp_char):
        assert rtp_char.alpha(IMAGE) < dfn_char.alpha(IMAGE)

    def test_application_size_signature(self, dfn_char):
        """'Quite large mean values ... while median sizes are very
        small' — the paper's new observation."""
        app = dfn_char.by_type[APP].sizes.document
        assert app.mean > 5 * app.median
        image = dfn_char.by_type[IMAGE].sizes.document
        assert image.mean < 3 * image.median

    def test_multimedia_largest_transfers(self, dfn_char):
        mm_mean = dfn_char.by_type[MM].sizes.transfer.mean
        for other in (IMAGE, HTML, APP):
            assert mm_mean > \
                3 * dfn_char.by_type[other].sizes.transfer.mean
