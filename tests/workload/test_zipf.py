"""Tests for Zipf popularity machinery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.zipf import (
    ZipfSampler,
    fit_alpha,
    zipf_counts,
    zipf_weights,
)


class TestWeights:
    def test_shape(self):
        weights = zipf_weights(5, 1.0)
        assert weights[0] == pytest.approx(1.0)
        assert weights[1] == pytest.approx(0.5)
        assert weights[4] == pytest.approx(0.2)

    def test_alpha_zero_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert all(w == 1.0 for w in weights)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(5, -0.1)


class TestCounts:
    def test_exact_total(self):
        counts = zipf_counts(100, 0.8, 5000)
        assert sum(counts) == 5000
        assert len(counts) == 100

    def test_every_document_requested(self):
        counts = zipf_counts(500, 1.2, 800)
        assert min(counts) >= 1

    def test_nonincreasing(self):
        counts = zipf_counts(200, 0.7, 4000)
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_rejects_insufficient_requests(self):
        with pytest.raises(ValueError):
            zipf_counts(10, 1.0, 9)

    def test_equal_requests_and_docs(self):
        counts = zipf_counts(50, 1.0, 50)
        assert counts == [1] * 50

    def test_alpha_zero_near_uniform(self):
        counts = zipf_counts(10, 0.0, 1000)
        assert max(counts) - min(counts) <= 1

    def test_head_dominates_for_large_alpha(self):
        counts = zipf_counts(1000, 1.2, 50_000)
        head_share = sum(counts[:10]) / 50_000
        assert head_share > 0.2

    @settings(max_examples=40, deadline=None)
    @given(n_docs=st.integers(1, 300),
           alpha=st.floats(0.0, 2.0),
           multiplier=st.floats(1.0, 50.0))
    def test_property_exact_and_positive(self, n_docs, alpha, multiplier):
        total = int(n_docs * multiplier)
        counts = zipf_counts(n_docs, alpha, total)
        assert sum(counts) == total
        assert min(counts) >= 1


class TestFitAlpha:
    def test_recovers_generated_alpha(self):
        for alpha in (0.5, 0.8, 1.1):
            counts = zipf_counts(5000, alpha, 500_000)
            fitted = fit_alpha(counts)
            assert fitted == pytest.approx(alpha, abs=0.12), \
                f"alpha={alpha} fitted={fitted}"

    def test_needs_two_documents(self):
        with pytest.raises(ValueError):
            fit_alpha([5])

    def test_zero_counts_ignored(self):
        counts = [100, 50, 25, 0, 0]
        assert fit_alpha(counts) > 0


class TestSampler:
    def test_ranks_in_range(self):
        sampler = ZipfSampler(100, 1.0, seed=1)
        ranks = sampler.sample_many(1000)
        assert all(1 <= r <= 100 for r in ranks)

    def test_rank_one_most_frequent(self):
        sampler = ZipfSampler(50, 1.0, seed=2)
        from collections import Counter
        counts = Counter(sampler.sample_many(20_000))
        assert counts[1] == max(counts.values())

    def test_deterministic(self):
        a = ZipfSampler(100, 0.9, seed=7).sample_many(100)
        b = ZipfSampler(100, 0.9, seed=7).sample_many(100)
        assert a == b

    def test_single_sample_matches_many(self):
        sampler = ZipfSampler(10, 0.5, seed=3)
        assert all(1 <= sampler.sample() <= 10 for _ in range(100))
