"""Tests for the document size models."""

import random

import numpy as np
import pytest

from repro.workload.sizes import (
    BoundedParetoSizeModel,
    FixedSizeModel,
    LognormalSizeModel,
    MixtureSizeModel,
)


class TestLognormal:
    def test_validation(self):
        with pytest.raises(ValueError):
            LognormalSizeModel(0, 1.0)
        with pytest.raises(ValueError):
            LognormalSizeModel(100, -1.0)
        with pytest.raises(ValueError):
            LognormalSizeModel(100, 1.0, min_bytes=0)
        with pytest.raises(ValueError):
            LognormalSizeModel(100, 1.0, min_bytes=10, max_bytes=10)

    def test_clamping(self):
        model = LognormalSizeModel(1000, 3.0, min_bytes=100,
                                   max_bytes=10_000)
        rng = random.Random(1)
        samples = [model.sample(rng) for _ in range(2000)]
        assert min(samples) >= 100
        assert max(samples) <= 10_000

    def test_median_matches(self):
        model = LognormalSizeModel(50_000, 1.0)
        rng = random.Random(2)
        samples = [model.sample(rng) for _ in range(20_000)]
        assert float(np.median(samples)) == pytest.approx(50_000, rel=0.05)

    def test_mean_matches_analytic(self):
        model = LognormalSizeModel(10_000, 1.0)
        rng = random.Random(3)
        samples = [model.sample(rng) for _ in range(50_000)]
        assert float(np.mean(samples)) == pytest.approx(model.mean,
                                                        rel=0.05)

    def test_analytic_properties(self):
        model = LognormalSizeModel(1000, 0.0)
        assert model.mean == pytest.approx(1000)
        assert model.cov == pytest.approx(0.0)
        wide = LognormalSizeModel(1000, 2.0)
        assert wide.mean > wide.median_bytes
        assert wide.cov > 5

    def test_sigma_zero_constant(self):
        model = LognormalSizeModel(500, 0.0)
        rng = random.Random(4)
        assert all(model.sample(rng) == 500 for _ in range(20))


class TestBoundedPareto:
    def test_validation(self):
        with pytest.raises(ValueError):
            BoundedParetoSizeModel(0, 10, 100)
        with pytest.raises(ValueError):
            BoundedParetoSizeModel(1.0, 100, 100)

    def test_range(self):
        model = BoundedParetoSizeModel(1.2, 1000, 1_000_000)
        rng = random.Random(5)
        samples = [model.sample(rng) for _ in range(5000)]
        assert min(samples) >= 1000
        assert max(samples) <= 1_000_000

    def test_heavy_tail(self):
        """Mean far above median for shape near 1."""
        model = BoundedParetoSizeModel(1.05, 1000, 10 ** 9)
        rng = random.Random(6)
        samples = [model.sample(rng) for _ in range(20_000)]
        assert np.mean(samples) > 3 * np.median(samples)

    def test_lower_shape_heavier_tail(self):
        rng1, rng2 = random.Random(7), random.Random(7)
        light = BoundedParetoSizeModel(2.5, 1000, 10 ** 8)
        heavy = BoundedParetoSizeModel(1.1, 1000, 10 ** 8)
        light_mean = np.mean([light.sample(rng1) for _ in range(20_000)])
        heavy_mean = np.mean([heavy.sample(rng2) for _ in range(20_000)])
        assert heavy_mean > light_mean


class TestMixture:
    def test_validation(self):
        body = FixedSizeModel(10)
        with pytest.raises(ValueError):
            MixtureSizeModel(body, body, 1.5)

    def test_tail_probability_zero_is_body(self):
        model = MixtureSizeModel(FixedSizeModel(10), FixedSizeModel(999),
                                 0.0)
        rng = random.Random(8)
        assert all(model.sample(rng) == 10 for _ in range(50))

    def test_tail_probability_one_is_tail(self):
        model = MixtureSizeModel(FixedSizeModel(10), FixedSizeModel(999),
                                 1.0)
        rng = random.Random(9)
        assert all(model.sample(rng) == 999 for _ in range(50))

    def test_mixing_fraction(self):
        model = MixtureSizeModel(FixedSizeModel(10), FixedSizeModel(999),
                                 0.25)
        rng = random.Random(10)
        samples = [model.sample(rng) for _ in range(10_000)]
        tail_fraction = sum(s == 999 for s in samples) / len(samples)
        assert tail_fraction == pytest.approx(0.25, abs=0.02)

    def test_small_median_large_mean(self):
        """The application-documents signature shape."""
        body = LognormalSizeModel(20_000, 2.0)
        tail = BoundedParetoSizeModel(1.1, 262_144, 10 ** 9)
        model = MixtureSizeModel(body, tail, 0.03)
        rng = random.Random(11)
        samples = [model.sample(rng) for _ in range(30_000)]
        assert np.mean(samples) > 3 * np.median(samples)


class TestFixed:
    def test_constant(self):
        model = FixedSizeModel(123)
        assert model.sample(random.Random(1)) == 123
        assert model.sample() == 123

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedSizeModel(0)
