"""ServedCache: simulator semantics under a lock, single-flight fills,
and the linearizability/lock-granularity stress tests."""

from __future__ import annotations

import random
import threading

import pytest

from repro.core.cache import Cache
from repro.core.policy import AccessOutcome
from repro.core.registry import make_policy
from repro.errors import ConfigurationError
from repro.serving.cache import CachedDocument, ServedCache
from repro.types import DocumentType

from tests.conftest import make_request


class TestServedCacheSemantics:
    def test_request_matches_simulator_outcomes(self):
        cache = ServedCache(1000, "lru")
        assert cache.request("a", 400) is AccessOutcome.MISS
        assert cache.request("a", 400) is AccessOutcome.HIT
        assert cache.request("a", 500) is AccessOutcome.MISS_MODIFIED
        assert cache.request("big", 5000) is AccessOutcome.MISS_TOO_BIG
        assert len(cache) == 1
        assert cache.occupancy_bytes == 500

    def test_request_stream_equals_plain_cache(self):
        """The served wrapper must not perturb the policy: same
        request stream, same hit sequence as a bare Cache."""
        rng = random.Random(7)
        stream = [(f"u{rng.randrange(50)}", rng.randrange(1, 400))
                  for _ in range(2000)]
        served = ServedCache(2000, "gdsf(1)")
        bare = Cache(2000, make_policy("gdsf(1)"))
        for url, size in stream:
            assert (served.request(url, size)
                    is bare.reference(url, size))
        assert served.contents() == {
            e.url: e.size for e in bare.entries()}

    def test_get_references_resident_and_counts_miss(self):
        cache = ServedCache(1000, "lru")
        assert cache.get("a") is None
        cache.put("a", 100, DocumentType.IMAGE)
        document = cache.get("a")
        assert isinstance(document, CachedDocument)
        assert document.size == 100
        assert document.doc_type is DocumentType.IMAGE
        assert document.frequency == 2  # put + get both reference
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 2  # the empty get + the put's miss

    def test_payload_roundtrip_and_size_check(self):
        cache = ServedCache(1000, "lru")
        cache.put("a", 3, payload=b"abc")
        assert cache.get("a").payload == b"abc"
        with pytest.raises(ConfigurationError):
            cache.put("b", 5, payload=b"xy")

    def test_payload_sidecar_dropped_with_eviction(self):
        cache = ServedCache(300, "lru")
        cache.put("a", 200, payload=b"x" * 200)
        cache.put("b", 200, payload=b"y" * 200)  # evicts a
        assert "a" not in cache
        assert cache.get("b").payload == b"y" * 200
        cache.check_invariants()  # payload map must not leak "a"

    def test_payload_dropped_on_delete_and_modification(self):
        cache = ServedCache(1000, "lru")
        cache.put("a", 2, payload=b"aa")
        cache.put("a", 3)  # modified: stale payload must go
        assert cache.get("a").payload is None
        cache.put("b", 2, payload=b"bb")
        assert cache.delete("b")
        assert not cache.delete("b")
        cache.check_invariants()

    def test_flush_clears_everything(self):
        cache = ServedCache(1000, "lru")
        cache.put("a", 100, payload=b"x" * 100)
        cache.flush()
        assert len(cache) == 0
        assert cache.get("a") is None
        cache.check_invariants()

    def test_stats_exposes_next_victim(self):
        cache = ServedCache(1000, "lru")
        cache.put("old", 100)
        cache.put("new", 100)
        assert cache.stats().next_victim == "old"
        cache.get("old")  # now "new" is least recently used
        assert cache.stats().next_victim == "new"

    def test_stats_hit_rate(self):
        cache = ServedCache(1000, "lru")
        cache.put("a", 100)
        cache.put("a", 100)
        stats = cache.stats()
        assert stats.hit_rate == pytest.approx(0.5)
        assert stats.as_dict()["hit_rate"] == pytest.approx(0.5)


class TestSingleFlight:
    def test_hit_never_calls_loader(self):
        cache = ServedCache(1000, "lru")
        cache.put("a", 100)
        document = cache.get_or_fetch(
            "a", lambda url: pytest.fail("loader on a hit"))
        assert document.size == 100

    def test_miss_fills_once_and_caches(self):
        cache = ServedCache(1000, "lru")
        calls = []

        def loader(url):
            calls.append(url)
            return 100, DocumentType.HTML, b"z" * 100

        first = cache.get_or_fetch("a", loader)
        second = cache.get_or_fetch("a", loader)
        assert calls == ["a"]
        assert first.payload == second.payload == b"z" * 100

    def test_concurrent_misses_coalesce_to_one_fill(self):
        """K threads missing the same URL → exactly 1 loader call."""
        cache = ServedCache(10_000, "lru")
        gate = threading.Event()
        fills = []
        fill_lock = threading.Lock()

        def loader(url):
            with fill_lock:
                fills.append(url)
            gate.wait(5.0)  # hold the flight open until all arrive
            return 64, DocumentType.IMAGE, b"p" * 64

        results = [None] * 8
        ready = threading.Barrier(9)

        def worker(index):
            ready.wait()
            results[index] = cache.get_or_fetch("hot", loader)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        ready.wait()
        # Give followers time to pile onto the flight, then release.
        import time
        time.sleep(0.05)
        gate.set()
        for thread in threads:
            thread.join(10.0)
        assert fills == ["hot"]
        assert all(r is not None and r.payload == b"p" * 64
                   for r in results)
        assert cache.stats().fills == 1
        assert cache.stats().coalesced_fills >= 1

    def test_leader_exception_shared_then_retried(self):
        cache = ServedCache(1000, "lru")
        attempts = []

        def failing(url):
            attempts.append(url)
            raise OSError("origin down")

        with pytest.raises(OSError):
            cache.get_or_fetch("a", failing)
        # The flight is gone; a new call retries the loader.
        with pytest.raises(OSError):
            cache.get_or_fetch("a", failing)
        assert attempts == ["a", "a"]

    def test_too_big_document_served_uncached(self):
        cache = ServedCache(100, "lru")
        document = cache.get_or_fetch(
            "huge", lambda url: (500, DocumentType.MULTIMEDIA))
        assert document.size == 500
        assert "huge" not in cache

    def test_malformed_loader_return_rejected(self):
        cache = ServedCache(1000, "lru")
        with pytest.raises(ConfigurationError):
            cache.get_or_fetch("a", lambda url: 100)


class TestLinearizability:
    """N threads × seeded op mix; the serialized journal replayed
    sequentially must land in exactly the concurrent run's state."""

    @pytest.mark.parametrize("policy", ["lru", "gdsf(1)", "lfu-da"])
    def test_concurrent_ops_equal_journal_replay(self, policy):
        cache = ServedCache(5000, policy, record_ops=True)
        n_threads, ops_per_thread = 8, 400

        def worker(seed):
            rng = random.Random(seed)
            for _ in range(ops_per_thread):
                url = f"u{rng.randrange(60)}"
                roll = rng.random()
                if roll < 0.70:
                    cache.request(url, 50 + (hash(url) % 300))
                elif roll < 0.85:
                    cache.get(url)
                elif roll < 0.95:
                    cache.put(url, 50 + (hash(url) % 300),
                              DocumentType.IMAGE)
                else:
                    cache.delete(url)

        threads = [threading.Thread(target=worker, args=(1000 + i,))
                   for i in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        cache.check_invariants()

        journal = cache.journal()
        assert len(journal) >= n_threads * ops_per_thread
        replica = ServedCache.replay_journal(journal, 5000, policy)
        assert replica.contents() == cache.contents()
        rep_stats, live_stats = replica.stats(), cache.stats()
        assert rep_stats.hits == live_stats.hits
        assert rep_stats.misses == live_stats.misses
        assert rep_stats.evictions == live_stats.evictions

    def test_journal_requires_record_ops(self):
        with pytest.raises(ConfigurationError):
            ServedCache(100, "lru").journal()


class TestLockGranularity:
    """Policy structures must never be observable mid-eviction: reader
    threads hammer the invariant checks while writers force constant
    evictions through a small cache."""

    @pytest.mark.parametrize("policy", ["lru", "gdsf(1)"])
    def test_readers_never_see_torn_state(self, policy):
        cache = ServedCache(600, policy)  # tiny → every put evicts
        stop = threading.Event()
        torn = []

        def reader():
            while not stop.is_set():
                try:
                    cache.check_invariants()
                    cache.stats()
                    cache.resident_urls()
                except BaseException as exc:  # pragma: no cover
                    torn.append(exc)
                    return

        def writer(seed):
            rng = random.Random(seed)
            for _ in range(1500):
                cache.request(f"w{rng.randrange(40)}",
                              100 + rng.randrange(150))

        readers = [threading.Thread(target=reader) for _ in range(3)]
        writers = [threading.Thread(target=writer, args=(i,))
                   for i in range(4)]
        for thread in readers + writers:
            thread.start()
        for thread in writers:
            thread.join(30.0)
        stop.set()
        for thread in readers:
            thread.join(10.0)
        assert not torn, f"reader observed torn state: {torn[0]!r}"
        cache.check_invariants()


def test_request_factory_smoke():
    """The shared request factory produces entries the served cache
    accepts (ties the serving tests to the repo-wide fixtures)."""
    request = make_request(url="http://x/a.html", size=128)
    cache = ServedCache(1024, "lru")
    assert cache.request(request.url, request.size,
                         request.doc_type) is AccessOutcome.MISS
