"""HashRing determinism and ShardedCache routing/budgets/topology."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.observability.events import EVENT_SCHEMAS, set_event_sink
from repro.serving.sharding import (
    HashRing,
    ShardedCache,
    split_budget,
)


class _CapturingSink:
    def __init__(self):
        self.events = []

    def emit(self, event, **fields):
        record = {"event": event, **fields}
        self.events.append(record)
        return record

    def close(self):
        pass


class TestHashRing:
    def test_deterministic_across_instances(self):
        """md5-based placement: two rings with the same shards agree
        on every key (unlike hash(), which varies per process)."""
        keys = [f"http://x/{i}" for i in range(500)]
        a = HashRing(["s0", "s1", "s2"])
        b = HashRing(["s0", "s1", "s2"])
        assert [a.owner(k) for k in keys] == [b.owner(k) for k in keys]

    def test_known_placement_pinned(self):
        """A golden owner assignment: placement is part of the stored
        experiment contract, so a silent hash change must fail here."""
        ring = HashRing(["shard-0", "shard-1", "shard-2", "shard-3"])
        owners = [ring.owner(f"doc/{i}") for i in range(8)]
        assert owners == [ring.owner(f"doc/{i}") for i in range(8)]
        shares = ring.partition(f"doc/{i}" for i in range(4000))
        # Every shard owns a meaningful share (vnodes spread the ring).
        for shard, keys in shares.items():
            assert len(keys) > 400, f"{shard} owns only {len(keys)}"

    def test_remove_moves_only_departed_shards_keys(self):
        keys = [f"k{i}" for i in range(2000)]
        before = HashRing(["s0", "s1", "s2", "s3"])
        after = HashRing(["s0", "s1", "s2"])
        moved = sum(1 for k in keys
                    if before.owner(k) != after.owner(k)
                    and before.owner(k) != "s3")
        assert moved == 0  # only s3's keys may move

    def test_duplicate_and_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            HashRing(["a", "a"])
        with pytest.raises(ConfigurationError):
            HashRing([]).owner("x")
        with pytest.raises(ConfigurationError):
            HashRing(["a"], vnodes=0)


class TestSplitBudget:
    def test_sums_and_spreads_remainder(self):
        budgets = split_budget(1003, 4)
        assert sum(budgets) == 1003
        assert budgets == [251, 251, 251, 250]

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            split_budget(3, 4)


class TestShardedCache:
    def test_routing_is_stable_and_exclusive(self):
        cache = ShardedCache(4000, n_shards=4)
        for i in range(200):
            cache.request(f"u{i}", 10)
        assert len(cache) == sum(
            len(cache.shard(name)) for name in cache.shard_names)
        # Each URL is resident on exactly the ring-owner shard.
        for i in range(200):
            url = f"u{i}"
            owner = cache.ring.owner(url)
            for name in cache.shard_names:
                assert (url in cache.shard(name)) == (name == owner)

    def test_capacity_budgets_sum_to_aggregate(self):
        cache = ShardedCache(10_007, n_shards=3)
        assert cache.capacity_bytes == 10_007
        assert cache.shard("shard-0").capacity_bytes >= \
            cache.shard("shard-2").capacity_bytes

    def test_explicit_budgets(self):
        cache = ShardedCache(600, n_shards=2,
                             shard_capacities=[500, 100])
        assert cache.shard("shard-0").capacity_bytes == 500
        with pytest.raises(ConfigurationError):
            ShardedCache(600, n_shards=2, shard_capacities=[600])

    def test_aggregate_stats(self):
        cache = ShardedCache(4000, n_shards=2)
        cache.request("a", 100)
        cache.request("a", 100)
        stats = cache.stats()
        assert stats["total"]["hits"] == 1
        assert stats["total"]["misses"] == 1
        assert stats["total"]["hit_rate"] == pytest.approx(0.5)
        assert set(stats["shards"]) == set(cache.shard_names)

    def test_add_shard_takes_over_keys(self):
        sink = _CapturingSink()
        previous = set_event_sink(sink)
        try:
            cache = ShardedCache(4000, n_shards=2)
            urls = [f"u{i}" for i in range(50)]
            for url in urls:
                cache.request(url, 10)
            cache.add_shard("shard-2", 2000)
            assert "shard-2" in cache.shard_names
            assert cache.capacity_bytes == 6000
            moved = [u for u in urls
                     if cache.ring.owner(u) == "shard-2"]
            assert moved  # the new shard owns a slice of the space
            # New requests for moved keys land on the new shard.
            cache.request(moved[0], 10)
            assert moved[0] in cache.shard("shard-2")
        finally:
            set_event_sink(previous)
        rebalances = [e for e in sink.events
                      if e["event"] == "shard_rebalanced"]
        assert rebalances == [{"event": "shard_rebalanced",
                               "action": "added", "shard": "shard-2",
                               "shards": 3}]

    def test_remove_shard_drains_to_survivors(self):
        cache = ShardedCache(9000, n_shards=3)
        urls = [f"u{i}" for i in range(60)]
        for url in urls:
            cache.request(url, 10)
        victim = "shard-1"
        resident_before = set(cache.shard(victim).resident_urls())
        assert resident_before
        cache.remove_shard(victim)
        assert victim not in cache.shard_names
        # Drained documents are resident on their new owners.
        for url in resident_before:
            assert url in cache
        cache.check_invariants()

    def test_remove_last_shard_rejected(self):
        cache = ShardedCache(1000, n_shards=1)
        with pytest.raises(ConfigurationError):
            cache.remove_shard("shard-0")

    def test_duplicate_add_rejected(self):
        cache = ShardedCache(1000, n_shards=2)
        with pytest.raises(ConfigurationError):
            cache.add_shard("shard-0", 100)

    def test_serving_events_are_in_schema(self):
        for name in ("serving_started", "replay_finished",
                     "shard_rebalanced"):
            assert name in EVENT_SCHEMAS
