"""Load replay and the triple-path validation gate.

The load-bearing claims:

* replayed per-shard hit rates equal a ``run_cells`` simulation of
  each shard's substream **exactly** (one thread per shard preserves
  per-shard order, and the served cache is bit-compatible with the
  simulator);
* for model policies on an IRM workload, the Che prediction lands
  within its usual validation tolerance of the replayed rates.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.serving.replay import (
    ReplayConfig,
    partition_trace,
    replay,
    validate_replay,
)
from repro.serving.sharding import ShardedCache
from repro.simulation.engine import SimulationConfig, run_cells
from repro.workload.generator import generate_trace
from repro.workload.profiles import dfn_like


@pytest.fixture(scope="module")
def irm_trace():
    """Seeded IRM trace (~13k requests) — the regime the Che
    comparison assumes; the CI gate runs the same shape larger."""
    return generate_trace(dfn_like(scale=1.0 / 512.0, seed=42),
                          temporal_model="irm")


def _capacity(trace, fraction=0.05):
    unique = {r.url: r.size for r in trace.requests}
    return max(int(sum(unique.values()) * fraction), 8)


class TestReplayMechanics:
    def test_partition_preserves_order_and_covers(self, irm_trace):
        cache = ShardedCache(_capacity(irm_trace), n_shards=4)
        parts = partition_trace(irm_trace, cache)
        assert sum(len(p) for p in parts.values()) == \
            len(irm_trace.requests)
        for shard, substream in parts.items():
            owner = cache.ring.owner
            assert all(owner(r.url) == shard for r in substream[:50])
            stamps = [r.timestamp for r in substream]
            assert stamps == sorted(stamps)

    def test_report_accounting(self, irm_trace):
        config = ReplayConfig(capacity_bytes=_capacity(irm_trace),
                              n_shards=4)
        report = replay(irm_trace, config)
        assert report.requests == len(irm_trace.requests)
        assert report.hits + report.misses == report.requests
        assert report.requests == sum(s.requests
                                      for s in report.per_shard)
        assert report.hits == sum(s.hits for s in report.per_shard)
        assert 0 < report.hit_rate < 1
        assert report.requests_per_second > 0
        assert report.latency_samples > 0
        assert set(report.latency_quantiles) == {"p50", "p95", "p99"}
        payload = report.as_dict()
        assert payload["hit_rate"] == pytest.approx(report.hit_rate)

    def test_per_type_hit_rates_consistent(self, irm_trace):
        config = ReplayConfig(capacity_bytes=_capacity(irm_trace),
                              n_shards=2)
        report = replay(irm_trace, config)
        by_type = {}
        for request in irm_trace.requests:
            by_type[request.doc_type.value] = \
                by_type.get(request.doc_type.value, 0) + 1
        hits = sum(
            round(report.per_type_hit_rate[name] * count)
            for name, count in by_type.items()
            if name in report.per_type_hit_rate)
        assert hits == report.hits

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ReplayConfig(capacity_bytes=2, n_shards=4).validate()
        with pytest.raises(ConfigurationError):
            ReplayConfig(capacity_bytes=100,
                         latency_sample_every=0).validate()

    def test_replay_against_existing_cache_checks_shape(self,
                                                        irm_trace):
        cache = ShardedCache(_capacity(irm_trace), n_shards=2)
        config = ReplayConfig(capacity_bytes=_capacity(irm_trace),
                              n_shards=4)
        with pytest.raises(ConfigurationError):
            replay(irm_trace, config, cache=cache)


class TestTriplePathValidation:
    @pytest.mark.parametrize("policy", ["lru", "gdsf(1)"])
    def test_replay_matches_simulation_exactly(self, irm_trace,
                                               policy):
        config = ReplayConfig(capacity_bytes=_capacity(irm_trace),
                              n_shards=4, policy=policy)
        validation = validate_replay(irm_trace, config)
        assert validation.sim_mae == 0.0
        assert validation.sim_max_error == 0.0
        for shard in validation.shards:
            assert shard.replayed_hit_rate == \
                pytest.approx(shard.simulated_hit_rate, abs=1e-12)

    def test_model_within_tolerance_on_irm(self, irm_trace):
        """Third path: per-shard Che predictions.  The tiny test trace
        is noisier than the CI-scale gate, so the tolerance here is
        looser (CI runs ~100k requests at 2pp MAE)."""
        config = ReplayConfig(capacity_bytes=_capacity(irm_trace),
                              n_shards=4, policy="lru")
        validation = validate_replay(irm_trace, config)
        assert validation.model_mae is not None
        assert validation.model_mae <= 0.05
        assert all(s.model_hit_rate is not None
                   for s in validation.shards)

    def test_model_path_skipped_for_unsupported_policy(self,
                                                       irm_trace):
        config = ReplayConfig(capacity_bytes=_capacity(irm_trace),
                              n_shards=2, policy="gdsf(1)")
        validation = validate_replay(irm_trace, config)
        assert validation.model_mae is None
        assert all(s.model_hit_rate is None
                   for s in validation.shards)

    def test_aggregate_matches_whole_trace_partitioned_sim(self,
                                                           irm_trace):
        """Sanity on the headline claim: aggregate replayed hits
        equal the sum of per-substream simulations."""
        config = ReplayConfig(capacity_bytes=_capacity(irm_trace),
                              n_shards=4)
        report = replay(irm_trace, config)
        probe = ShardedCache(config.capacity_bytes,
                             n_shards=config.n_shards)
        parts = partition_trace(irm_trace, probe)
        simulated_hits = 0
        for shard in probe.shard_names:
            substream = parts[shard]
            if not substream:
                continue
            [result] = run_cells(
                substream,
                [SimulationConfig(
                    capacity_bytes=probe.shard(
                        shard).capacity_bytes,
                    policy="lru", warmup_fraction=0.0)])
            simulated_hits += result.metrics.overall.hits
        assert report.hits == simulated_hits
