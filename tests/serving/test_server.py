"""The TCP front end: protocol round trips through both clients."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.serving.cache import ServedCache
from repro.serving.client import (
    AsyncCacheClient,
    CacheClient,
    ServingProtocolError,
)
from repro.serving.server import CacheServer, encode_frame
from repro.serving.sharding import ShardedCache
from repro.types import DocumentType


class _ServerThread:
    """Run a CacheServer on its own event loop in a daemon thread."""

    def __init__(self, cache):
        self.cache = cache
        self.port = None
        self._loop = None
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self):
        self._thread.start()
        assert self._started.wait(10.0), "server failed to start"
        return self

    def __exit__(self, *exc):
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(10.0)

    def _run(self):
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        server = CacheServer(self.cache, port=0)
        self._loop.run_until_complete(server.start())
        self.port = server.port
        self._started.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(server.stop())
            self._loop.close()


def test_sync_client_roundtrip():
    with _ServerThread(ServedCache(10_000, "lru")) as server:
        with CacheClient(port=server.port) as client:
            assert client.ping()
            assert client.put("a", 3, DocumentType.HTML,
                              payload=b"abc") == "miss"
            found = client.get("a")
            assert found["size"] == 3
            assert found["payload"] == b"abc"
            assert client.request("a", 3) == "hit"
            assert client.request("a", 4) == "miss-modified"
            assert client.delete("a")
            assert client.get("a") is None
            stats = client.stats()
            assert stats["deletes"] == 1
            assert stats["resident_docs"] == 0


def test_sync_client_against_sharded_cache():
    with _ServerThread(ShardedCache(10_000, n_shards=3)) as server:
        with CacheClient(port=server.port) as client:
            for i in range(30):
                client.request(f"u{i}", 50)
            stats = client.stats()
            assert stats["total"]["misses"] == 30
            assert len(stats["shards"]) == 3
            assert sum(s["resident_docs"]
                       for s in stats["shards"].values()) == 30


def test_unknown_op_is_an_error_not_a_disconnect():
    with _ServerThread(ServedCache(1000, "lru")) as server:
        with CacheClient(port=server.port) as client:
            with pytest.raises(ServingProtocolError,
                               match="unknown op"):
                client._roundtrip({"op": "explode"})
            assert client.ping()  # connection survived


def test_server_surfaces_cache_errors():
    with _ServerThread(ServedCache(1000, "lru")) as server:
        with CacheClient(port=server.port) as client:
            with pytest.raises(ServingProtocolError):
                client.request("a", -5)  # negative size
            assert client.ping()


def test_async_client_roundtrip():
    with _ServerThread(ServedCache(10_000, "lru")) as server:

        async def scenario():
            client = await AsyncCacheClient.connect(port=server.port)
            try:
                assert await client.ping()
                assert await client.put("a", 2,
                                        payload=b"hi") == "miss"
                found = await client.get("a")
                assert found["payload"] == b"hi"
                assert await client.delete("a")
                stats = await client.stats()
                assert stats["deletes"] == 1
            finally:
                await client.close()

        asyncio.run(scenario())


def test_frame_encoding_is_length_prefixed():
    frame = encode_frame({"op": "ping"})
    assert frame[:4] == len(frame[4:]).to_bytes(4, "big")
