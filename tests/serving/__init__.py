"""Tests for the online serving subsystem (repro.serving)."""
