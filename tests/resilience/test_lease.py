"""Tests for lease files: acquire, reclaim, renew, heartbeat."""

import json
import threading
import time

import pytest

from repro.errors import LeaseError, LeaseLostError
from repro.resilience.lease import Heartbeat, LeaseManager, default_owner


class FakeClock:
    """A controllable time source."""

    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def manager(tmp_path, clock, owner="w1", ttl=10.0):
    return LeaseManager(tmp_path / "leases", owner=owner,
                        ttl_seconds=ttl, clock=clock)


class TestAcquire:
    def test_acquire_and_release(self, tmp_path, clock):
        mgr = manager(tmp_path, clock)
        lease = mgr.acquire("trial-1")
        assert lease is not None
        assert lease.owner == "w1"
        assert lease.reclaimed_from is None
        assert mgr.holder("trial-1")["owner"] == "w1"
        assert mgr.release(lease) is True
        assert mgr.holder("trial-1") is None

    def test_second_claimant_refused_while_live(self, tmp_path, clock):
        first = manager(tmp_path, clock, owner="w1")
        second = manager(tmp_path, clock, owner="w2")
        assert first.acquire("t") is not None
        assert second.acquire("t") is None

    def test_reacquire_after_release(self, tmp_path, clock):
        mgr = manager(tmp_path, clock)
        lease = mgr.acquire("t")
        mgr.release(lease)
        assert mgr.acquire("t") is not None

    def test_names_are_sanitized(self, tmp_path, clock):
        mgr = manager(tmp_path, clock)
        lease = mgr.acquire("gd*(1)@5000/x")
        assert lease is not None
        assert lease.path.exists()
        assert "/" not in lease.path.name

    def test_invalid_ttl_rejected(self, tmp_path, clock):
        with pytest.raises(LeaseError):
            LeaseManager(tmp_path, ttl_seconds=0.0, clock=clock)

    def test_default_owner_is_host_and_pid(self):
        import os
        assert str(os.getpid()) in default_owner()


class TestStaleReclaim:
    def test_fresh_lease_is_not_stale(self, tmp_path, clock):
        mgr = manager(tmp_path, clock, ttl=10.0)
        mgr.acquire("t")
        clock.advance(9.0)
        assert not mgr.is_stale("t")

    def test_lease_goes_stale_past_ttl(self, tmp_path, clock):
        mgr = manager(tmp_path, clock, ttl=10.0)
        mgr.acquire("t")
        clock.advance(10.5)
        assert mgr.is_stale("t")

    def test_unclaimed_is_not_stale(self, tmp_path, clock):
        assert not manager(tmp_path, clock).is_stale("t")

    def test_stale_lease_is_reclaimed(self, tmp_path, clock):
        dead = manager(tmp_path, clock, owner="dead")
        dead.acquire("t")
        clock.advance(11.0)
        alive = manager(tmp_path, clock, owner="alive")
        lease = alive.acquire("t")
        assert lease is not None
        assert lease.reclaimed_from == "dead"
        assert alive.holder("t")["owner"] == "alive"

    def test_torn_lease_file_counts_as_stale(self, tmp_path, clock):
        mgr = manager(tmp_path, clock)
        lease = mgr.acquire("t")
        lease.path.write_text('{"owner": "dead", "renew')  # torn write
        assert mgr.is_stale("t")
        other = manager(tmp_path, clock, owner="w2")
        assert other.acquire("t") is not None

    def test_renewal_keeps_lease_live(self, tmp_path, clock):
        mgr = manager(tmp_path, clock, ttl=10.0)
        lease = mgr.acquire("t")
        clock.advance(8.0)
        mgr.renew(lease)
        clock.advance(8.0)
        assert not mgr.is_stale("t")  # 8s since renewal, not 16s

    def test_active_lists_only_live_leases(self, tmp_path, clock):
        mgr = manager(tmp_path, clock, ttl=10.0)
        mgr.acquire("live")
        dead = manager(tmp_path, clock, owner="dead", ttl=10.0)
        dead.acquire("gone")
        clock.advance(11.0)
        mgr.renew(mgr.acquire("live2"))
        assert "gone" not in mgr.active()
        assert "live2" in mgr.active()


class TestOwnershipVerification:
    def test_renew_after_reclaim_raises_lease_lost(self, tmp_path, clock):
        original = manager(tmp_path, clock, owner="gc-paused")
        lease = original.acquire("t")
        clock.advance(11.0)
        thief = manager(tmp_path, clock, owner="thief")
        assert thief.acquire("t") is not None
        with pytest.raises(LeaseLostError):
            original.renew(lease)

    def test_release_after_reclaim_is_a_noop(self, tmp_path, clock):
        original = manager(tmp_path, clock, owner="w1")
        lease = original.acquire("t")
        clock.advance(11.0)
        thief = manager(tmp_path, clock, owner="thief")
        thief.acquire("t")
        assert original.release(lease) is False
        # the thief's lease file survives the loser's release
        assert thief.holder("t")["owner"] == "thief"

    def test_racing_reclaimers_elect_exactly_one(self, tmp_path, clock):
        dead = manager(tmp_path, clock, owner="dead")
        dead.acquire("t")
        clock.advance(11.0)
        managers = [manager(tmp_path, clock, owner=f"w{i}")
                    for i in range(4)]
        wins = []
        barrier = threading.Barrier(len(managers))

        def race(mgr):
            barrier.wait()
            lease = mgr.acquire("t")
            if lease is not None:
                wins.append(lease.owner)

        threads = [threading.Thread(target=race, args=(m,))
                   for m in managers]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1
        assert json.loads(
            managers[0].path_for("t").read_text())["owner"] == wins[0]


class TestHeartbeat:
    def test_heartbeat_renews(self, tmp_path):
        mgr = LeaseManager(tmp_path, owner="w1", ttl_seconds=0.5)
        lease = mgr.acquire("t")
        with Heartbeat(mgr, lease, interval=0.05):
            time.sleep(0.7)  # > ttl: only renewals keep it live
            assert not mgr.is_stale("t")
        mgr.release(lease)

    def test_heartbeat_detects_loss(self, tmp_path):
        mgr = LeaseManager(tmp_path, owner="w1", ttl_seconds=0.2)
        lease = mgr.acquire("t")
        heartbeat = Heartbeat(mgr, lease, interval=0.05).start()
        # a rival steals the lease while the holder is "paused"
        lease.path.unlink()
        thief = LeaseManager(tmp_path, owner="thief", ttl_seconds=0.2)
        assert thief.acquire("t") is not None
        deadline = time.monotonic() + 5.0
        while not heartbeat.lost and time.monotonic() < deadline:
            time.sleep(0.02)
        heartbeat.stop()
        assert heartbeat.lost
