"""Tests for the deterministic fault-injection harness."""

import pickle

import pytest

from repro.errors import ConfigurationError, WorkerCrashError
from repro.resilience.faults import (
    CORRUPT_MARKER,
    FaultInjector,
    FaultSpec,
    InjectedFaultError,
)


class TestFaultSpec:
    def test_fires_only_on_listed_attempts(self):
        spec = FaultSpec(key="lru@5000", kind="raise", attempts=(1, 3))
        assert spec.fires_on("lru@5000", 1)
        assert not spec.fires_on("lru@5000", 2)
        assert spec.fires_on("lru@5000", 3)
        assert not spec.fires_on("gds(1)@5000", 1)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(key="x", kind="explode")

    def test_rejects_zero_based_attempts(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(key="x", attempts=(0,))


class TestFaultInjector:
    def test_raise_fault_is_transient_worker_crash(self):
        injector = FaultInjector.raise_once("lru@5000")
        with pytest.raises(InjectedFaultError) as info:
            injector.on_start("lru@5000", 1)
        assert isinstance(info.value, WorkerCrashError)
        # Attempt 2 passes clean — that's what makes retries converge.
        injector.on_start("lru@5000", 2)
        injector.on_start("other@1", 1)

    def test_corrupt_fault_mangles_payload(self):
        injector = FaultInjector.corrupt_once("lru@5000")
        good = {"policy": "lru", "metrics": {}}
        bad = injector.on_result("lru@5000", 1, dict(good))
        assert CORRUPT_MARKER in bad
        assert "metrics" not in bad
        assert injector.on_result("lru@5000", 2, dict(good)) == good

    def test_no_fault_is_a_no_op(self):
        injector = FaultInjector.of()
        injector.on_start("anything", 1)
        payload = {"v": 1}
        assert injector.on_result("anything", 1, payload) is payload

    def test_injector_is_picklable(self):
        injector = FaultInjector.of(
            FaultSpec(key="lru@5000", kind="crash"),
            FaultSpec(key="gds(1)@5000", kind="hang", hang_seconds=9.0),
        )
        clone = pickle.loads(pickle.dumps(injector))
        assert clone == injector
        assert clone.find("lru@5000", 1).kind == "crash"

    def test_find_returns_first_matching_spec(self):
        injector = FaultInjector.of(
            FaultSpec(key="a", kind="raise", attempts=(1,)),
            FaultSpec(key="a", kind="corrupt", attempts=(2,)),
        )
        assert injector.find("a", 1).kind == "raise"
        assert injector.find("a", 2).kind == "corrupt"
        assert injector.find("a", 3) is None
