"""Tests for deterministic retry with capped exponential backoff."""

import pytest

from repro.errors import ConfigurationError
from repro.resilience.retry import RetryPolicy, retry_call


class Flaky:
    """Fails ``failures`` times, then returns ``value``."""

    def __init__(self, failures, value="ok", exc=RuntimeError):
        self.failures = failures
        self.value = value
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc(f"failure {self.calls}")
        return self.value


class TestRetryPolicy:
    def test_backoff_schedule_is_deterministic_and_capped(self):
        policy = RetryPolicy(max_retries=5, base_delay=1.0, backoff=2.0,
                             max_delay=5.0)
        assert policy.delays() == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_max_attempts(self):
        assert RetryPolicy(max_retries=0).max_attempts == 1
        assert RetryPolicy(max_retries=3).max_attempts == 4

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff=0.5)

    def test_delay_is_one_based(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy().delay(0)


class TestRetryCall:
    def test_succeeds_first_try_without_sleeping(self):
        slept = []
        assert retry_call(lambda: 42, sleep=slept.append) == 42
        assert slept == []

    def test_retries_until_success(self):
        slept = []
        flaky = Flaky(failures=2)
        result = retry_call(
            flaky, policy=RetryPolicy(max_retries=3, base_delay=0.5),
            sleep=slept.append)
        assert result == "ok"
        assert flaky.calls == 3
        assert slept == [0.5, 1.0]

    def test_raises_after_budget_exhausted(self):
        flaky = Flaky(failures=10)
        with pytest.raises(RuntimeError, match="failure 3"):
            retry_call(flaky, policy=RetryPolicy(max_retries=2),
                       sleep=lambda _: None)
        assert flaky.calls == 3

    def test_non_retryable_exception_propagates_immediately(self):
        flaky = Flaky(failures=5, exc=ValueError)
        with pytest.raises(ValueError):
            retry_call(flaky, policy=RetryPolicy(max_retries=4),
                       retry_on=(KeyError,), sleep=lambda _: None)
        assert flaky.calls == 1

    def test_on_retry_callback_sees_attempt_and_error(self):
        seen = []
        flaky = Flaky(failures=2)
        retry_call(flaky, policy=RetryPolicy(max_retries=2),
                   sleep=lambda _: None,
                   on_retry=lambda attempt, exc: seen.append(
                       (attempt, str(exc))))
        assert seen == [(2, "failure 1"), (3, "failure 2")]

    def test_zero_retries_is_a_single_attempt(self):
        flaky = Flaky(failures=1)
        with pytest.raises(RuntimeError):
            retry_call(flaky, policy=RetryPolicy(max_retries=0),
                       sleep=lambda _: None)
        assert flaky.calls == 1
