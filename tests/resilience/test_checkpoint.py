"""Tests for atomic config-hash-validated checkpoints."""

import json

import pytest

from repro.errors import CheckpointError
from repro.resilience.checkpoint import CheckpointStore, config_hash


class TestConfigHash:
    def test_stable_across_key_order(self):
        assert config_hash({"a": 1, "b": 2.5}) == \
            config_hash({"b": 2.5, "a": 1})

    def test_differs_for_different_configs(self):
        assert config_hash({"scale": 1.0}) != config_hash({"scale": 0.5})

    def test_unserializable_config_rejected(self):
        with pytest.raises(CheckpointError):
            config_hash({"bad": {1, 2, 3}})


class TestCheckpointStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        payload = {"hit_rate": 0.42, "nested": {"a": [1, 2]}}
        store.save("fig2", payload, "digest-a")
        assert store.load("fig2", "digest-a") == payload
        assert store.has("fig2")
        assert store.completed_keys() == ["fig2"]

    def test_unsafe_keys_do_not_collide(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("gd*(1)@5000", {"v": 1})
        store.save("gd*(p)@5000", {"v": 2})
        assert store.load("gd*(1)@5000")["v"] == 1
        assert store.load("gd*(p)@5000")["v"] == 2
        assert len(store.completed_keys()) == 2

    def test_config_hash_mismatch_refuses_resume(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("fig2", {"v": 1}, "digest-small-scale")
        with pytest.raises(CheckpointError, match="config hash"):
            store.load("fig2", "digest-paper-scale")
        # Without an expected digest the payload is still readable.
        assert store.load("fig2") == {"v": 1}

    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            CheckpointStore(tmp_path).load("nope")

    def test_corrupt_json_raises(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save("fig2", {"v": 1})
        path.write_text("{truncated")
        with pytest.raises(CheckpointError, match="corrupt"):
            store.load("fig2")

    def test_write_is_atomic_no_tmp_left_behind(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("fig2", {"v": 1}, "d")
        assert not list(tmp_path.glob("*.tmp"))
        # The file on disk is complete, valid JSON with an envelope.
        (path,) = list(tmp_path.glob("*.json"))
        envelope = json.loads(path.read_text())
        assert envelope["key"] == "fig2"
        assert envelope["config_hash"] == "d"

    def test_completed_filters_by_digest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("a", {"v": 1}, "digest-1")
        store.save("b", {"v": 2}, "digest-2")
        assert set(store.completed("digest-1")) == {"a"}
        assert set(store.completed()) == {"a", "b"}

    def test_completed_skips_corrupt_strays(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("a", {"v": 1}, "d")
        (tmp_path / "stray.json").write_text("not json at all")
        assert store.completed_keys() == ["a"]

    def test_delete_and_clear(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("a", {"v": 1})
        store.save("b", {"v": 2})
        store.delete("a")
        store.delete("a")  # idempotent
        assert store.completed_keys() == ["b"]
        assert store.clear() == 1
        assert store.completed_keys() == []

    def test_save_overwrites(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("a", {"v": 1}, "d")
        store.save("a", {"v": 2}, "d")
        assert store.load("a", "d") == {"v": 2}
