"""Tests for atomic config-hash-validated checkpoints."""

import json
import os
import time

import pytest

from repro.errors import CheckpointError
from repro.resilience.checkpoint import CheckpointStore, config_hash
from repro.resilience.faults import corrupt_file


class TestConfigHash:
    def test_stable_across_key_order(self):
        assert config_hash({"a": 1, "b": 2.5}) == \
            config_hash({"b": 2.5, "a": 1})

    def test_differs_for_different_configs(self):
        assert config_hash({"scale": 1.0}) != config_hash({"scale": 0.5})

    def test_unserializable_config_rejected(self):
        with pytest.raises(CheckpointError):
            config_hash({"bad": {1, 2, 3}})


class TestCheckpointStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        payload = {"hit_rate": 0.42, "nested": {"a": [1, 2]}}
        store.save("fig2", payload, "digest-a")
        assert store.load("fig2", "digest-a") == payload
        assert store.has("fig2")
        assert store.completed_keys() == ["fig2"]

    def test_unsafe_keys_do_not_collide(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("gd*(1)@5000", {"v": 1})
        store.save("gd*(p)@5000", {"v": 2})
        assert store.load("gd*(1)@5000")["v"] == 1
        assert store.load("gd*(p)@5000")["v"] == 2
        assert len(store.completed_keys()) == 2

    def test_config_hash_mismatch_refuses_resume(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("fig2", {"v": 1}, "digest-small-scale")
        with pytest.raises(CheckpointError, match="config hash"):
            store.load("fig2", "digest-paper-scale")
        # Without an expected digest the payload is still readable.
        assert store.load("fig2") == {"v": 1}

    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            CheckpointStore(tmp_path).load("nope")

    def test_corrupt_json_raises(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save("fig2", {"v": 1})
        path.write_text("{truncated")
        with pytest.raises(CheckpointError, match="corrupt"):
            store.load("fig2")

    def test_write_is_atomic_no_tmp_left_behind(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("fig2", {"v": 1}, "d")
        assert not list(tmp_path.glob("*.tmp"))
        # The file on disk is complete, valid JSON with an envelope.
        (path,) = list(tmp_path.glob("*.json"))
        envelope = json.loads(path.read_text())
        assert envelope["key"] == "fig2"
        assert envelope["config_hash"] == "d"

    def test_completed_filters_by_digest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("a", {"v": 1}, "digest-1")
        store.save("b", {"v": 2}, "digest-2")
        assert set(store.completed("digest-1")) == {"a"}
        assert set(store.completed()) == {"a", "b"}

    def test_completed_skips_corrupt_strays(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("a", {"v": 1}, "d")
        (tmp_path / "stray.json").write_text("not json at all")
        assert store.completed_keys() == ["a"]

    def test_delete_and_clear(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("a", {"v": 1})
        store.save("b", {"v": 2})
        store.delete("a")
        store.delete("a")  # idempotent
        assert store.completed_keys() == ["b"]
        assert store.clear() == 1
        assert store.completed_keys() == []

    def test_save_overwrites(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("a", {"v": 1}, "d")
        store.save("a", {"v": 2}, "d")
        assert store.load("a", "d") == {"v": 2}


class TestDurability:
    """The crash-safety satellites: unique temp names, fsync'd
    replaces, stale-temp sweeping, and corruption never poisoning a
    resume scan."""

    def test_tmp_names_are_per_process_unique(self, tmp_path,
                                              monkeypatch):
        # Capture the temp path os.replace sees; two saves of the same
        # key must never share one (concurrent savers would stomp each
        # other's half-written file).
        store = CheckpointStore(tmp_path)
        seen = []
        real_replace = os.replace

        def spy(src, dst):
            seen.append(os.fspath(src))
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", spy)
        store.save("a", {"v": 1})
        store.save("a", {"v": 2})
        assert len(seen) == 2
        assert seen[0] != seen[1]
        assert all(f".{os.getpid()}." in name for name in seen)

    def test_crash_mid_write_leaves_old_checkpoint_intact(
            self, tmp_path, monkeypatch):
        store = CheckpointStore(tmp_path)
        store.save("a", {"v": 1}, "d")

        def crashing_replace(src, dst):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(os, "replace", crashing_replace)
        with pytest.raises(CheckpointError):
            store.save("a", {"v": 2}, "d")
        monkeypatch.undo()
        # The old checkpoint survived, and no temp litter remains.
        assert store.load("a", "d") == {"v": 1}
        assert not list(tmp_path.glob("*.tmp"))

    def test_open_sweeps_stale_tmp_files(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("a", {"v": 1})
        stale = tmp_path / "a.json.999.0.tmp"
        stale.write_text("{half-written")
        old = time.time() - 3600
        os.utime(stale, (old, old))
        fresh = tmp_path / "b.json.999.1.tmp"
        fresh.write_text("{in-flight write")
        CheckpointStore(tmp_path)  # reopening sweeps
        assert not stale.exists()
        assert fresh.exists()  # young = possibly live writer: kept

    def test_clear_removes_tmp_litter_too(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("a", {"v": 1})
        (tmp_path / "orphan.json.1.2.tmp").write_text("x")
        assert store.clear() == 2
        assert not list(tmp_path.iterdir())

    @pytest.mark.parametrize("mode", ["truncate", "bitflip", "torn"])
    def test_completed_survives_injected_corruption(self, tmp_path,
                                                    mode):
        # completed() must never raise and never mix a damaged
        # checkpoint into a resume, whatever shape the damage takes.
        store = CheckpointStore(tmp_path)
        store.save("good", {"v": 1}, "d")
        victim = store.save("bad", {"v": 2}, "d")
        corrupt_file(victim, mode=mode, seed=3)
        done = store.completed("d")
        assert "good" in done
        # Whatever survived decoding must be verbatim, never mangled.
        for payload in done.values():
            assert payload in ({"v": 1}, {"v": 2})
        assert store.load("good", "d") == {"v": 1}

    def test_completed_never_raises_on_garbage_directory(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("good", {"v": 1}, "d")
        (tmp_path / "noise.json").write_text("\x00\xff not json")
        (tmp_path / "empty.json").write_text("")
        (tmp_path / "wrong-shape.json").write_text('["a", "list"]')
        assert store.completed("d") == {"good": {"v": 1}}
        assert store.completed_keys() == ["good"]
