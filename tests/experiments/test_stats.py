"""Tests for repeated-trial statistics (CI, Mann-Whitney U, A12,
refuse-to-rank)."""

import math

import pytest

from repro.errors import AnalysisError
from repro.experiments.stats import (
    a12_magnitude,
    compare,
    mann_whitney_u,
    rank_policies,
    summarize,
    vargha_delaney_a12,
)


class TestSummarize:
    def test_mean_std_and_interval(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.n == 5
        assert summary.mean == pytest.approx(3.0)
        assert summary.std == pytest.approx(math.sqrt(2.5))
        # t(4, 95%) = 2.776
        half = 2.776 * math.sqrt(2.5) / math.sqrt(5)
        assert summary.ci_low == pytest.approx(3.0 - half)
        assert summary.ci_high == pytest.approx(3.0 + half)

    def test_single_observation_degenerates(self):
        summary = summarize([0.42])
        assert (summary.mean, summary.std) == (0.42, 0.0)
        assert summary.ci_low == summary.ci_high == 0.42

    def test_empty_sample_rejected(self):
        with pytest.raises(AnalysisError):
            summarize([])

    def test_as_dict_roundtrips(self):
        d = summarize([1.0, 2.0]).as_dict()
        assert set(d) == {"n", "mean", "std", "ci_low", "ci_high"}


class TestMannWhitney:
    def test_exact_p_fully_separated(self):
        # Classic result: two disjoint samples of 5 → p = 2/C(10,5)·C(5,5)
        a = [10, 11, 12, 13, 14]
        b = [1, 2, 3, 4, 5]
        u, p = mann_whitney_u(a, b)
        assert u == 25.0  # every a beats every b
        assert p == pytest.approx(2 / 252)

    def test_identical_samples_p_one(self):
        u, p = mann_whitney_u([1, 2, 3], [1, 2, 3])
        assert u == pytest.approx(4.5)
        assert p == pytest.approx(1.0)

    def test_symmetry(self):
        a, b = [1.0, 3.0, 5.0], [2.0, 4.0, 6.0]
        u_ab, p_ab = mann_whitney_u(a, b)
        u_ba, p_ba = mann_whitney_u(b, a)
        assert u_ab + u_ba == len(a) * len(b)
        assert p_ab == pytest.approx(p_ba)

    def test_small_n_cannot_reach_significance(self):
        # n=m=2 → the most extreme p is 1/3: correctly insignificant.
        _, p = mann_whitney_u([10, 11], [1, 2])
        assert p == pytest.approx(1 / 3)
        assert p > 0.05

    def test_normal_approximation_large_samples(self):
        a = [float(i) for i in range(40)]
        b = [float(i) + 0.5 for i in range(40)]
        assert math.comb(80, 40) > 20_000  # forces the normal path
        _, p = mann_whitney_u(a, b)
        assert 0.0 < p <= 1.0
        # a clearly shifted large sample is detected
        shifted = [v + 30 for v in a]
        _, p_shift = mann_whitney_u(shifted, b)
        assert p_shift < 0.001

    def test_all_ties_p_one_normal_path(self):
        a = [1.0] * 40
        b = [1.0] * 40
        _, p = mann_whitney_u(a, b)
        assert p == 1.0  # zero variance guarded, not a crash

    def test_empty_sample_rejected(self):
        with pytest.raises(AnalysisError):
            mann_whitney_u([], [1.0])


class TestEffectSize:
    def test_a12_bounds_and_no_effect(self):
        assert vargha_delaney_a12([5, 6], [1, 2]) == 1.0
        assert vargha_delaney_a12([1, 2], [5, 6]) == 0.0
        assert vargha_delaney_a12([1, 2], [1, 2]) == 0.5

    def test_ties_count_half(self):
        assert vargha_delaney_a12([1.0], [1.0]) == 0.5

    def test_magnitude_thresholds(self):
        assert a12_magnitude(0.5) == "negligible"
        assert a12_magnitude(0.56) == "small"
        assert a12_magnitude(0.64) == "medium"
        assert a12_magnitude(0.72) == "large"
        assert a12_magnitude(0.28) == "large"  # symmetric


class TestCompare:
    def test_significant_comparison(self):
        result = compare("a", [10, 11, 12, 13, 14], "b",
                         [1, 2, 3, 4, 5])
        assert result.significant
        assert result.a12 == 1.0
        assert result.magnitude == "large"
        assert result.as_dict()["p_value"] == result.p_value

    def test_insignificant_comparison(self):
        result = compare("a", [1.0, 2.0], "b", [1.5, 2.5])
        assert not result.significant


class TestRankPolicies:
    def test_clear_separation_gets_distinct_ranks(self):
        ranked = rank_policies({
            "good": [0.9, 0.91, 0.92, 0.93, 0.94],
            "bad": [0.1, 0.11, 0.12, 0.13, 0.14],
        })
        assert [(r["name"], r["rank"]) for r in ranked] == \
            [("good", 1), ("bad", 2)]
        assert ranked[1]["separated"]

    def test_refuses_to_rank_indistinguishable_policies(self):
        # 2 replicas can never reach p<0.05: ranks must be shared even
        # though the means differ.
        ranked = rank_policies({"a": [0.5, 0.6], "b": [0.45, 0.55]})
        assert [r["rank"] for r in ranked] == [1, 1]
        assert not ranked[1]["separated"]

    def test_mixed_separation(self):
        ranked = rank_policies({
            "top": [0.9, 0.91, 0.92, 0.93, 0.94],
            "mid_a": [0.50, 0.51, 0.52, 0.53, 0.54],
            "mid_b": [0.495, 0.505, 0.515, 0.525, 0.535],
        })
        by_name = {r["name"]: r for r in ranked}
        assert by_name["top"]["rank"] == 1
        assert by_name["mid_a"]["rank"] == 2
        assert by_name["mid_b"]["rank"] == 2  # tied with mid_a

    def test_lower_is_better_ordering(self):
        ranked = rank_policies({
            "slow": [9.0, 9.1, 9.2, 9.3, 9.4],
            "fast": [1.0, 1.1, 1.2, 1.3, 1.4],
        }, higher_is_better=False)
        assert ranked[0]["name"] == "fast"
        assert ranked[0]["rank"] == 1

    def test_empty_input(self):
        assert rank_policies({}) == []
