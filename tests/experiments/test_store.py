"""Tests for the crash-safe results store (WAL + quarantine +
deterministic compaction)."""

import json

import pytest

from repro.experiments.store import (
    ResultKey,
    ResultsStore,
    canonical_json,
    decode_record,
    encode_record,
    git_revision,
)
from repro.resilience.faults import corrupt_file


def append_n(store, n, git_hash="abc123", payload_of=None):
    keys = []
    for index in range(n):
        payload = (payload_of(index) if payload_of
                   else {"hit_rate": index / 10})
        keys.append(store.append(f"cfg{index % 2}", git_hash, index,
                                 payload))
    return keys


class TestEnvelope:
    def test_roundtrip(self):
        record = {"config_hash": "c", "git_hash": "g", "seed": 1,
                  "payload": {"x": [1, 2]}}
        assert decode_record(encode_record(record)) == record

    def test_crc_catches_tampering(self):
        record = {"config_hash": "c", "git_hash": "g", "seed": 1,
                  "payload": {"hit_rate": 0.5}}
        line = encode_record(record).replace("0.5", "0.9")
        with pytest.raises(ValueError, match="CRC"):
            decode_record(line)

    def test_missing_fields_rejected(self):
        line = canonical_json(
            {"crc": "0" * 8, "record": {"config_hash": "c"}})
        with pytest.raises(ValueError):
            decode_record(line)

    def test_torn_line_rejected(self):
        record = {"config_hash": "c", "git_hash": "g", "seed": 1,
                  "payload": {}}
        with pytest.raises(ValueError):
            decode_record(encode_record(record)[:-10])

    def test_git_revision_in_repo(self):
        # we run inside the repo, so a real hash comes back
        rev = git_revision()
        assert rev == "unknown" or len(rev) == 12


class TestAppendScan:
    def test_append_and_read_back(self, tmp_path):
        store = ResultsStore(tmp_path)
        key = store.append("cfg", "git", 42, {"hit_rate": 0.3})
        assert key == ResultKey("cfg", "git", 42)
        assert store.payloads() == {key: {"hit_rate": 0.3}}
        assert store.has(key)
        assert store.get(key)["payload"] == {"hit_rate": 0.3}

    def test_keys_differing_only_in_git_hash_do_not_mix(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.append("cfg", "rev-a", 1, {"v": "old code"})
        store.append("cfg", "rev-b", 1, {"v": "new code"})
        payloads = store.payloads()
        assert payloads[ResultKey("cfg", "rev-a", 1)] == {"v": "old code"}
        assert payloads[ResultKey("cfg", "rev-b", 1)] == {"v": "new code"}

    def test_first_wins_dedup(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.append("cfg", "git", 1, {"v": "original"})
        store.close()  # new segment for the duplicate
        store.append("cfg", "git", 1, {"v": "rerun"})
        records = store.records()
        assert len(records) == 1
        assert records[ResultKey("cfg", "git", 1)]["payload"] == \
            {"v": "original"}

    def test_concurrent_writers_use_distinct_segments(self, tmp_path):
        first = ResultsStore(tmp_path)
        second = ResultsStore(tmp_path)
        first.append("cfg", "git", 1, {"w": 1})
        second.append("cfg", "git", 2, {"w": 2})
        first.close()
        second.close()
        assert len(list(first.segments_dir.glob("*.jsonl"))) == 2
        assert len(ResultsStore(tmp_path).records()) == 2


class TestQuarantine:
    @pytest.mark.parametrize("mode", ["truncate", "bitflip", "torn"])
    def test_corruption_is_quarantined_not_fatal(self, tmp_path, mode):
        store = ResultsStore(tmp_path)
        append_n(store, 6)
        store.close()
        (segment,) = list(store.segments_dir.glob("*.jsonl"))
        before = segment.read_bytes()
        corrupt_file(segment, mode=mode, seed=5)
        assert segment.read_bytes() != before
        records = store.records()  # must not raise
        assert 0 < len(records) <= 6
        # every surviving record is verbatim — corruption cannot mix
        for key, record in records.items():
            assert record["payload"] == {"hit_rate": key.seed / 10}
        quarantined = store.quarantined()
        assert quarantined
        assert all(entry["reason"] for entry in quarantined)
        assert all(entry["source"] == segment.name
                   for entry in quarantined)

    def test_quarantined_lines_are_removed_from_source(self, tmp_path):
        store = ResultsStore(tmp_path)
        append_n(store, 3)
        store.close()
        (segment,) = list(store.segments_dir.glob("*.jsonl"))
        lines = segment.read_text().splitlines()
        lines[1] = lines[1][:-5] + "XXXXX"  # break the CRC
        segment.write_text("\n".join(lines) + "\n")
        assert len(store.records()) == 2
        # the damage was moved aside physically: a second scan finds a
        # clean file and quarantines nothing new
        count = len(store.quarantined())
        assert len(store.records()) == 2
        assert len(store.quarantined()) == count

    def test_garbage_lines_quarantined(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.append("cfg", "git", 1, {"v": 1})
        store.close()
        (segment,) = list(store.segments_dir.glob("*.jsonl"))
        with open(segment, "a") as stream:
            stream.write("not json at all\n")
            stream.write('{"valid_json": "wrong shape"}\n')
        assert len(store.records()) == 1
        assert len(store.quarantined()) == 2


class TestCompaction:
    def test_compact_merges_and_sorts(self, tmp_path):
        store = ResultsStore(tmp_path)
        keys = append_n(store, 5)
        stats = store.compact()
        assert stats.records == 5
        assert stats.segments_merged >= 1
        assert not list(store.segments_dir.glob("*.jsonl"))
        lines = store.base_path.read_text().splitlines()
        decoded = [decode_record(line) for line in lines]
        assert [ResultKey(r["config_hash"], r["git_hash"], r["seed"])
                for r in decoded] == sorted(keys)

    def test_compaction_is_bit_identical_across_orders(self, tmp_path):
        # Same record set, different append orders and segmentation →
        # identical bytes after compaction.
        a = ResultsStore(tmp_path / "a")
        b = ResultsStore(tmp_path / "b")
        records = [(f"cfg{i}", "git", i, {"hit_rate": i / 7})
                   for i in range(6)]
        for config, git, seed, payload in records:
            a.append(config, git, seed, payload)
        for config, git, seed, payload in reversed(records):
            b.append(config, git, seed, payload)
            b.close()  # one segment per record
        a.compact()
        b.compact()
        assert a.base_path.read_bytes() == b.base_path.read_bytes()
        assert a.digest() == b.digest()

    def test_duplicate_records_dropped_once(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.append("cfg", "git", 1, {"v": 1})
        store.close()
        store.append("cfg", "git", 1, {"v": 1})
        stats = store.compact()
        assert stats.records == 1
        assert stats.duplicates_dropped == 1
        assert stats.conflicts == 0

    def test_conflicting_duplicate_keeps_first_and_logs(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.append("cfg", "git", 1, {"v": "first"})
        store.close()
        store.append("cfg", "git", 1, {"v": "second"})
        stats = store.compact()
        assert stats.conflicts == 1
        assert store.payloads()[ResultKey("cfg", "git", 1)] == \
            {"v": "first"}

    def test_compact_after_compact_is_stable(self, tmp_path):
        store = ResultsStore(tmp_path)
        append_n(store, 4)
        store.compact()
        digest = store.digest()
        store.compact()
        assert store.digest() == digest

    def test_append_after_compact_lands_in_new_segment(self, tmp_path):
        store = ResultsStore(tmp_path)
        append_n(store, 2)
        store.compact()
        store.append("late", "git", 99, {"v": 1})
        assert len(store.records()) == 3
        store.compact()
        assert len(store.records()) == 3

    def test_quarantine_during_compact_counted(self, tmp_path):
        store = ResultsStore(tmp_path)
        append_n(store, 4)
        store.close()
        (segment,) = list(store.segments_dir.glob("*.jsonl"))
        corrupt_file(segment, mode="torn", seed=2)
        stats = store.compact()
        assert stats.quarantined >= 1
        assert stats.records < 4

    def test_quarantine_file_survives_compaction(self, tmp_path):
        store = ResultsStore(tmp_path)
        append_n(store, 3)
        store.close()
        (segment,) = list(store.segments_dir.glob("*.jsonl"))
        corrupt_file(segment, mode="torn", seed=2)
        store.compact()
        entries = store.quarantined()
        assert entries
        # provenance is machine-readable
        for entry in entries:
            json.dumps(entry)
