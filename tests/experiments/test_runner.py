"""Tests for the experiment runners (all at tiny scale)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.runner import ExperimentReport, run_experiment

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def table2():
    return run_experiment("table2", scale="tiny")


def test_unknown_experiment():
    with pytest.raises(ExperimentError):
        run_experiment("fig99")


def test_table1_reports_both_traces():
    report = run_experiment("table1", scale="tiny")
    assert "DFN-like" in report.data
    assert "RTP-like" in report.data
    assert report.data["DFN-like"]["total_requests"] > \
        report.data["RTP-like"]["total_requests"]
    assert "Distinct Documents" in report.text


def test_table2_breakdown_sums(table2):
    assert isinstance(table2, ExperimentReport)
    for metric in table2.data.values():
        assert sum(metric.values()) == pytest.approx(100.0)


def test_table2_mix_matches_paper(table2):
    requests = table2.data["total_requests"]
    assert requests["image"] + requests["html"] > 85.0
    assert requests["multimedia"] < 1.0


def test_table3_rtp_contrast(table2):
    table3 = run_experiment("table3", scale="tiny")
    assert table3.data["total_requests"]["html"] > \
        table2.data["total_requests"]["html"]
    assert table3.data["distinct_documents"]["multimedia"] > \
        table2.data["distinct_documents"]["multimedia"]


def test_table4_structure():
    report = run_experiment("table4", scale="tiny")
    for doc_type in ("image", "html", "multimedia", "application"):
        row = report.data[doc_type]
        assert row["doc_mean_kb"] > 0
        assert row["transfer_mean_kb"] > 0
    # Application docs: mean far above median (the paper's observation).
    app = report.data["application"]
    assert app["doc_mean_kb"] > 2 * app["doc_median_kb"]


def test_fig1_occupancy_report():
    report = run_experiment("fig1", scale="tiny")
    assert "gds(1)" in report.data["policies"]
    assert "gd*(1)" in report.data["policies"]
    assert any(name.endswith(".csv") for name in report.artifacts)
    for policy_data in report.data["policies"].values():
        for row in policy_data.values():
            assert 0.0 <= row["mean_byte_fraction"] <= 1.0


def test_fig2_structure():
    report = run_experiment("fig2", scale="tiny")
    assert set(report.data["hit_rate"]) == {
        "overall", "image", "html", "multimedia", "application"}
    for bucket in report.data["hit_rate"].values():
        for policy, rates in bucket.items():
            assert len(rates) == len(report.data["capacities"])
            assert all(0.0 <= r <= 1.0 for r in rates)
    # CSV artifacts: one per (panel, metric).
    assert len(report.artifacts) == 10


def test_ablation_beta_report():
    report = run_experiment("ablation-beta", scale="tiny")
    assert "online" in report.data
    assert report.data["beta=0.5"]["final_beta"] == 0.5


def test_policy_zoo_report():
    report = run_experiment("policy-zoo", scale="tiny")
    assert "belady" in report.data
    # The clairvoyant bound tops every online policy's hit rate.
    belady = report.data["belady"]["hit_rate"]
    for name, stats in report.data.items():
        assert stats["hit_rate"] <= belady + 1e-9, name
    # Landlord at refresh=1 must coincide with GDS.
    assert report.data["landlord(1)"]["hit_rate"] == pytest.approx(
        report.data["gds(1)"]["hit_rate"])


def test_ablation_typed_beta_report():
    report = run_experiment("ablation-typed-beta", scale="tiny")
    assert "gd*t(1) / rtp" in report.data
    betas = report.data["gd*t(1) / rtp"]["final_betas"]
    assert set(betas) == {"image", "html", "multimedia", "application"}


def test_ablation_seeds_report():
    report = run_experiment("ablation-seeds", scale="tiny")
    assert report.data["seeds"] == 3
    assert 0 <= report.data["orderings_held"] <= 3


def test_ablation_modification_report():
    report = run_experiment("ablation-modification", scale="tiny")
    trusted = report.data["gds(1)/trusted"]
    any_change = report.data["gds(1)/any-change"]
    # The any-change rule manufactures extra invalidations.
    assert any_change["invalidations"] >= trusted["invalidations"]
