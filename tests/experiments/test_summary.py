"""Tests for the markdown batch summary."""

import pytest

from repro.experiments.runner import ExperimentReport
from repro.experiments.summary import (
    render_markdown_summary,
    write_markdown_summary,
)


def make_reports():
    return [
        ExperimentReport("table2", "tiny", "TABLE TWO BODY",
                         data={"x": 1}),
        ExperimentReport("fig2", "tiny", "FIGURE TWO BODY",
                         artifacts={"fig2_overall_hr.csv": "a,b\n"}),
        ExperimentReport("ablation-beta", "tiny", "ABLATION BODY"),
        ExperimentReport("verify-claims", "tiny", "10/10"),
    ]


class TestRender:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_markdown_summary([])

    def test_structure(self):
        text = render_markdown_summary(make_reports())
        assert text.startswith("# Experiment summary")
        assert "Scale: `tiny`" in text
        assert "## Workload characterization" in text
        assert "## Performance figures" in text
        assert "## Ablations" in text
        assert "## Attestation" in text

    def test_reports_inlined(self):
        text = render_markdown_summary(make_reports())
        assert "TABLE TWO BODY" in text
        assert "FIGURE TWO BODY" in text

    def test_artifacts_listed(self):
        text = render_markdown_summary(make_reports())
        assert "`fig2/fig2_overall_hr.csv`" in text

    def test_contents_links(self):
        text = render_markdown_summary(make_reports())
        assert "- [table2](#table2)" in text


class TestWrite:
    def test_writes_file(self, tmp_path):
        path = write_markdown_summary(make_reports(), tmp_path)
        assert path == tmp_path / "SUMMARY.md"
        assert "TABLE TWO BODY" in path.read_text()


class TestCliFlag:
    def test_markdown_requires_outdir(self, capsys):
        from repro.experiments.cli import main
        assert main(["table2", "--scale", "tiny", "--markdown"]) == 2

    def test_markdown_written(self, tmp_path, capsys):
        from repro.experiments.cli import main
        assert main(["table2", "--scale", "tiny",
                     "--outdir", str(tmp_path), "--markdown"]) == 0
        summary = (tmp_path / "SUMMARY.md").read_text()
        assert "table2" in summary
