"""Tests for the durable, lease-claimed trial queue."""

import json

import pytest

from repro.experiments.queue import TrialQueue, trial_id_for
from repro.experiments.store import ResultsStore


class FakeClock:
    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def make_queue(tmp_path, clock, owner="w1", ttl=10.0, max_attempts=3):
    return TrialQueue(tmp_path / "queue", owner=owner, lease_ttl=ttl,
                      max_attempts=max_attempts, clock=clock)


SPEC = {"trace": "dfn", "scale": 0.01, "policy": "lru",
        "size_fraction": 0.01, "seed": 42}


class TestEnqueue:
    def test_enqueue_and_claim(self, tmp_path, clock):
        queue = make_queue(tmp_path, clock)
        trial_id, new = queue.enqueue(SPEC)
        assert new
        assert trial_id == trial_id_for(SPEC)
        claimed = queue.claim()
        assert claimed is not None
        assert claimed.trial_id == trial_id
        assert claimed.spec == SPEC
        assert claimed.attempt == 1

    def test_enqueue_is_idempotent(self, tmp_path, clock):
        queue = make_queue(tmp_path, clock)
        id_a, new_a = queue.enqueue(SPEC)
        id_b, new_b = queue.enqueue(dict(SPEC))  # same content
        assert id_a == id_b
        assert new_a and not new_b
        assert len(queue.trial_ids()) == 1

    def test_distinct_specs_distinct_trials(self, tmp_path, clock):
        queue = make_queue(tmp_path, clock)
        queue.enqueue(SPEC)
        queue.enqueue({**SPEC, "seed": 43})
        assert len(queue.trial_ids()) == 2


class TestClaimComplete:
    def test_complete_marks_done_and_releases(self, tmp_path, clock):
        queue = make_queue(tmp_path, clock)
        trial_id, _ = queue.enqueue(SPEC)
        claimed = queue.claim()
        queue.complete(claimed, duration_seconds=1.5)
        assert queue.done_ids() == [trial_id]
        assert queue.claim() is None  # nothing left
        status = queue.status()
        assert status.done == 1 and status.pending == 0
        assert status.drained

    def test_completed_trial_never_reclaimed(self, tmp_path, clock):
        queue = make_queue(tmp_path, clock)
        queue.enqueue(SPEC)
        queue.complete(queue.claim())
        clock.advance(1000)
        assert queue.claim() is None

    def test_claimed_trial_not_claimable_by_others(self, tmp_path, clock):
        first = make_queue(tmp_path, clock, owner="w1")
        second = make_queue(tmp_path, clock, owner="w2")
        first.enqueue(SPEC)
        assert first.claim() is not None
        assert second.claim() is None
        assert second.status().running == 1

    def test_release_returns_trial_to_queue(self, tmp_path, clock):
        queue = make_queue(tmp_path, clock)
        queue.enqueue(SPEC)
        claimed = queue.claim()
        queue.release(claimed, "transient error")
        again = queue.claim()
        assert again is not None
        assert again.attempt == 2  # the failed attempt stays charged


class TestStaleLeaseRequeue:
    def test_dead_workers_trial_is_reclaimed(self, tmp_path, clock):
        dead = make_queue(tmp_path, clock, owner="dead", ttl=10.0)
        dead.enqueue(SPEC)
        assert dead.claim() is not None
        # "dead" vanishes (SIGKILL): no release, no renewals
        clock.advance(11.0)
        survivor = make_queue(tmp_path, clock, owner="alive", ttl=10.0)
        claimed = survivor.claim()
        assert claimed is not None
        assert claimed.lease.reclaimed_from == "dead"
        assert claimed.attempt == 2

    def test_live_lease_not_stolen(self, tmp_path, clock):
        holder = make_queue(tmp_path, clock, owner="w1", ttl=10.0)
        holder.enqueue(SPEC)
        holder.claim()
        clock.advance(5.0)
        assert make_queue(tmp_path, clock, owner="w2",
                          ttl=10.0).claim() is None

    def test_attempt_budget_exhaustion_abandons(self, tmp_path, clock):
        queue = make_queue(tmp_path, clock, ttl=10.0, max_attempts=2)
        trial_id, _ = queue.enqueue(SPEC)
        for _ in range(2):
            assert queue.claim() is not None
            clock.advance(11.0)  # worker dies each time
        assert queue.claim() is None
        assert queue.failed_ids() == [trial_id]
        marker = json.loads(
            (queue.failed_dir / f"{trial_id}.json").read_text())
        assert marker["attempts"] == 2
        status = queue.status()
        assert status.failed == 1
        assert status.drained


class TestCorruptSpecs:
    def test_unreadable_spec_quarantined_not_fatal(self, tmp_path, clock):
        queue = make_queue(tmp_path, clock)
        trial_id, _ = queue.enqueue(SPEC)
        path = queue.trials_dir / f"{trial_id}.json"
        path.write_text("{torn spec")
        assert queue.claim() is None  # skipped, not crashed
        assert not path.exists()
        assert (queue.quarantine_dir / path.name).exists()

    def test_wrong_shape_spec_quarantined(self, tmp_path, clock):
        queue = make_queue(tmp_path, clock)
        trial_id, _ = queue.enqueue(SPEC)
        path = queue.trials_dir / f"{trial_id}.json"
        path.write_text('{"spec": "not an object"}')
        assert queue.spec_for(trial_id) is None
        assert (queue.quarantine_dir / path.name).exists()


class TestReconcile:
    def test_done_marker_without_record_reopens_trial(self, tmp_path,
                                                      clock):
        queue = make_queue(tmp_path, clock)
        store = ResultsStore(tmp_path / "store")
        trial_id, _ = queue.enqueue(SPEC)
        claimed = queue.claim()
        key = store.append("cfg", "git", 42, {"v": 1})
        queue.complete(claimed, key)
        assert queue.reconcile(store) == []  # marker backed by record

        # the record is destroyed (e.g. quarantined as corrupt)
        store.compact()
        store.base_path.write_text("")
        reopened = queue.reconcile(store)
        assert reopened == [trial_id]
        assert queue.done_ids() == []
        fresh = queue.claim()
        assert fresh is not None
        assert fresh.attempt == 1  # attempt budget restarted

    def test_marker_without_key_is_trusted(self, tmp_path, clock):
        queue = make_queue(tmp_path, clock)
        store = ResultsStore(tmp_path / "store")
        queue.enqueue(SPEC)
        queue.complete(queue.claim())  # no result key recorded
        assert queue.reconcile(store) == []
        assert len(queue.done_ids()) == 1

    def test_unreadable_marker_reopens(self, tmp_path, clock):
        queue = make_queue(tmp_path, clock)
        store = ResultsStore(tmp_path / "store")
        trial_id, _ = queue.enqueue(SPEC)
        queue.complete(queue.claim())
        (queue.done_dir / f"{trial_id}.json").write_text("{torn")
        assert queue.reconcile(store) == [trial_id]
        assert queue.claim() is not None
