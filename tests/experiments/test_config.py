"""Tests for experiment configuration."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.config import (
    EXPERIMENT_IDS,
    SCALES,
    ExperimentSettings,
    check_experiment_id,
)


def test_all_paper_artifacts_covered():
    """Every table and figure of the paper has an experiment id."""
    for required in ("table1", "table2", "table3", "table4", "table5",
                     "fig1", "fig2", "fig3", "rtp-const", "rtp-packet"):
        assert required in EXPERIMENT_IDS


def test_scales_ordered():
    assert SCALES["tiny"] < SCALES["small"] < SCALES["medium"] \
        < SCALES["paper"]
    assert SCALES["paper"] == 1.0


def test_check_experiment_id():
    assert check_experiment_id("FIG2") == "fig2"
    with pytest.raises(ExperimentError):
        check_experiment_id("fig9")


def test_settings_for_scale():
    settings = ExperimentSettings.for_scale("tiny")
    assert settings.scale == SCALES["tiny"]
    assert settings.scale_name == "tiny"
    with pytest.raises(ExperimentError):
        ExperimentSettings.for_scale("gigantic")
