"""Self-contained HTML reports: structure, panels, palette rules."""

import pytest

from repro.experiments.htmlreport import (
    PALETTE_DARK,
    PALETTE_LIGHT,
    SlotAssigner,
    line_chart,
    render_document,
    report_from_experiment,
    report_from_store,
    span_waterfall,
    verdict_table,
    write_html_report,
)
from repro.experiments.regress import detect_regressions
from repro.experiments.runner import ExperimentReport
from repro.experiments.store import ResultsStore


def _service_payload(policy, fraction, hit_rate, seed):
    return {
        "spec": {"trace": "dfn", "scale": 0.01, "policy": policy,
                 "size_fraction": fraction, "seed": seed},
        "capacity_bytes": int(fraction * 1e6),
        "hit_rate": hit_rate,
        "byte_hit_rate": hit_rate * 0.6,
        "type_hit_rates": {"image": hit_rate + 0.05,
                           "html": hit_rate - 0.05,
                           "multimedia": hit_rate * 0.5,
                           "application": hit_rate * 0.8,
                           "other": hit_rate},
    }


@pytest.fixture
def populated_store(tmp_path):
    store = ResultsStore(tmp_path / "store")
    for policy, base in (("lru", 0.40), ("gd*(1)", 0.50)):
        for fraction in (0.01, 0.05, 0.2):
            for seed in range(3):
                store.append(
                    f"cfg-{policy}-{fraction}", "abc123", seed,
                    _service_payload(policy, fraction,
                                     base + fraction + seed * 0.01,
                                     seed))
    return store


class TestPalette:
    def test_eight_slots_both_modes(self):
        assert len(PALETTE_LIGHT) == len(PALETTE_DARK) == 8
        assert PALETTE_LIGHT[0] == "#2a78d6"  # slot 1 is blue

    def test_slots_assigned_first_seen_never_cycled(self):
        slots = SlotAssigner(limit=2)
        assert slots.slot("a") == 1
        assert slots.slot("b") == 2
        assert slots.slot("a") == 1  # stable on re-ask
        assert slots.slot("c") is None  # folded, not cycled

    def test_policy_keeps_its_color_across_panels(
            self, populated_store):
        document = report_from_store(populated_store)
        # lru appears before gd*(1) alphabetically after sorting;
        # whichever slot each got, it must be the same in every panel
        first = document.find("--series-1")
        assert first != -1


class TestLineChart:
    def test_series_lines_markers_and_legend(self):
        chart = line_chart(
            "hit rate", ["1MB", "4MB"],
            [{"name": "lru", "values": [0.3, 0.4]},
             {"name": "gds", "values": [0.35, 0.45]}])
        assert chart.count("<polyline") == 2
        assert 'stroke-width="2"' in chart
        assert chart.count("<circle") == 4
        assert 'r="4"' in chart
        assert 'class="legend"' in chart
        assert "lru" in chart and "gds" in chart

    def test_single_series_has_no_legend_box(self):
        chart = line_chart("hit rate", ["1MB"],
                           [{"name": "lru", "values": [0.3]}])
        assert 'class="legend"' not in chart

    def test_ci_whiskers_drawn_when_bounds_given(self):
        chart = line_chart(
            "hit rate", ["1MB"],
            [{"name": "lru", "values": [0.4],
              "lo": [0.35], "hi": [0.45]}])
        # stem + two caps beyond the gridlines/baseline
        assert chart.count('stroke-width="1.5"') == 3

    def test_ninth_series_folds_with_a_note(self):
        series = [{"name": f"p{i}", "values": [0.1]}
                  for i in range(9)]
        chart = line_chart("crowded", ["x"], series)
        assert "palette exhausted" in chart
        assert "p8" in chart

    def test_none_values_leave_gaps(self):
        chart = line_chart(
            "gappy", ["a", "b", "c"],
            [{"name": "lru", "values": [0.3, None, 0.5]}])
        assert chart.count("<circle") == 2

    def test_text_is_escaped(self):
        chart = line_chart("<script>", ["x"],
                           [{"name": "a<b", "values": [0.1]}])
        assert "<script>" not in chart
        assert "&lt;script&gt;" in chart


class TestSpanWaterfall:
    def _spans(self):
        return [
            {"name": "sweep", "trace_id": "t", "span_id": "s1",
             "parent_id": None, "started_at": 100.0,
             "duration_seconds": 2.0, "status": "ok"},
            {"name": "pass", "trace_id": "t", "span_id": "s2",
             "parent_id": "s1", "started_at": 100.2,
             "duration_seconds": 1.5, "status": "ok"},
            {"name": "aggregate", "trace_id": "t", "span_id": "s3",
             "parent_id": "s2", "started_at": 101.8,
             "duration_seconds": 0.1, "status": "error"},
        ]

    def test_bars_sorted_and_labelled(self):
        svg = span_waterfall(self._spans())
        assert svg.count("<rect") == 3
        assert svg.index("sweep") < svg.index("pass") \
            < svg.index("aggregate")

    def test_error_status_carries_text_marker(self):
        svg = span_waterfall(self._spans())
        assert "x error" in svg

    def test_empty_spans_render_placeholder(self):
        assert "no span events" in span_waterfall([])

    def test_row_cap_with_note(self):
        spans = [{"name": f"s{i}", "trace_id": "t",
                  "span_id": f"id{i}", "parent_id": None,
                  "started_at": 100.0 + i,
                  "duration_seconds": 0.5, "status": "ok"}
                 for i in range(70)]
        svg = span_waterfall(spans, max_rows=60)
        assert svg.count("<rect") == 60
        assert "first 60 of 70" in svg

    def test_malformed_spans_skipped(self):
        svg = span_waterfall([{"name": "bad",
                               "started_at": "yesterday",
                               "duration_seconds": 1.0}])
        assert "no span events" in svg


class TestVerdictTable:
    def _regression_data(self, tmp_path):
        store = ResultsStore(tmp_path / "rstore")
        for seed in range(5):
            store.append("cfg", "base", seed,
                         _service_payload("lru", 0.05,
                                          0.50 + seed * 0.01, seed))
            store.append("cfg", "cand", seed,
                         _service_payload("lru", 0.05,
                                          0.40 + seed * 0.01, seed))
        return detect_regressions(store, baseline="base",
                                  candidate="cand").as_dict()

    def test_verdict_rows_with_icon_plus_label(self, tmp_path):
        table = verdict_table(self._regression_data(tmp_path))
        assert "▼ regressed" in table  # icon + label, never color alone
        assert "verdict-regressed" in table
        assert "base" in table and "cand" in table

    def test_empty_verdicts_note(self):
        table = verdict_table({"baseline": "a", "candidate": "b",
                               "alpha": 0.05, "verdicts": []})
        assert "no shared configuration" in table


class TestDocument:
    def test_single_file_self_contained(self, populated_store,
                                        tmp_path):
        document = report_from_store(populated_store)
        assert document.startswith("<!DOCTYPE html>")
        assert "<style>" in document
        assert "<svg" in document
        # self-contained: no external fetches, no scripts
        for forbidden in ("<script", "http://", "https://",
                          "src=", "@import", "url("):
            assert forbidden not in document, forbidden
        path = write_html_report(tmp_path / "out" / "report.html",
                                 document)
        assert path.read_text(encoding="utf-8") == document

    def test_dark_mode_block_present(self, populated_store):
        document = report_from_store(populated_store)
        assert "prefers-color-scheme: dark" in document
        assert PALETTE_LIGHT[0] in document
        assert PALETTE_DARK[0] in document

    def test_per_type_panels_present(self, populated_store):
        document = report_from_store(populated_store)
        for panel in ("image hit rate", "html hit rate",
                      "multimedia hit rate", "application hit rate"):
            assert panel in document
        assert "byte hit rate" in document

    def test_verdicts_and_waterfall_included_when_given(
            self, populated_store):
        spans = [{"name": "trial", "trace_id": "t", "span_id": "s",
                  "parent_id": None, "started_at": 1.0,
                  "duration_seconds": 0.5, "status": "ok"}]
        regression = {"baseline": "a", "candidate": "b",
                      "alpha": 0.05, "verdicts": [], "summary": {}}
        document = report_from_store(populated_store,
                                     regression=regression,
                                     span_events=spans)
        assert "regression verdicts" in document
        assert "span waterfall" in document

    def test_empty_store_renders_note(self, tmp_path):
        store = ResultsStore(tmp_path / "empty")
        document = report_from_store(store)
        assert "no service records" in document

    def test_render_document_escapes_title(self):
        document = render_document("<title>", ["<p>ok</p>"])
        assert "&lt;title&gt;" in document


class TestFromExperiment:
    def test_sweep_report_gets_charts(self):
        report = ExperimentReport(
            "fig2", "tiny", "text report",
            {"capacities": [1_000_000, 4_000_000],
             "hit_rate": {"overall": {"lru": [0.3, 0.4],
                                      "gds(1)": [0.35, 0.45]},
                          "image": {"lru": [0.4, 0.5],
                                    "gds(1)": [0.45, 0.55]}},
             "byte_hit_rate": {"overall": {"lru": [0.2, 0.3],
                                           "gds(1)": [0.25, 0.35]}}},
            {})
        document = report_from_experiment(report)
        assert "overall hit rate vs cache size" in document
        assert "image hit rate vs cache size" in document
        assert "overall byte hit rate vs cache size" in document
        assert "<svg" in document
        assert "977KB" in document or "1.0MB" in document

    def test_non_sweep_report_falls_back_to_text(self):
        report = ExperimentReport("table1", "tiny",
                                  "plain text tables", {"n": 1}, {})
        document = report_from_experiment(report)
        assert "plain text tables" in document
        assert "<pre>" in document

    def test_write_report_emits_html(self, tmp_path):
        from repro.experiments.report import write_report
        report = ExperimentReport("table1", "tiny", "body",
                                  {"n": 1}, {"t.csv": "a,b\n"})
        directory = write_report(report, tmp_path)
        html_path = directory / "report.html"
        assert html_path.exists()
        assert "body" in html_path.read_text(encoding="utf-8")
        assert (directory / "report.txt").exists()
        assert (directory / "t.csv").exists()
