"""Tests for the future-workload experiment and profile."""

import pytest

from repro.experiments.runner import run_experiment
from repro.types import DocumentType
from repro.workload.profiles import dfn_like, future_like, profile_by_name

pytestmark = pytest.mark.slow


class TestProfile:
    def test_realizes_the_conjecture(self):
        """Multimedia and application request shares substantially
        above the DFN baseline, per the paper's introduction."""
        dfn = dfn_like()
        future = future_like()
        mm, app = DocumentType.MULTIMEDIA, DocumentType.APPLICATION
        assert future.types[mm].request_share > \
            20 * dfn.types[mm].request_share
        assert future.types[app].request_share > \
            3 * dfn.types[app].request_share

    def test_validates_and_named(self):
        profile = future_like()
        profile.validate()
        assert profile.name == "future-like"
        assert profile_by_name("future").name == "future-like"


class TestExperiment:
    @pytest.fixture(scope="class")
    def report(self):
        return run_experiment("future-workload", scale="tiny")

    def test_both_workloads_reported(self, report):
        assert "dfn" in report.data
        assert "future" in report.data
        for bucket in (report.data["dfn"], report.data["future"]):
            assert set(bucket["hit_rate"]) == {
                "lru", "lfu-da", "gds(1)", "gd*(1)"}

    def test_multimedia_matters_more_in_future(self, report):
        """With 35x the multimedia traffic, the schemes' multimedia
        hit rates separate visibly (not the near-zero DFN noise)."""
        future_mm = report.data["future"]["mm_hit_rate"]
        assert future_mm["lru"] > 0.02
        # Size-aware constant-cost schemes still discard multimedia.
        assert future_mm["lru"] > future_mm["gd*(1)"]

    def test_headline_deltas_recorded(self, report):
        assert "gdstar_lead_dfn" in report.data
        assert "gdstar_lead_future" in report.data
