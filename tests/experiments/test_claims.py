"""Tests for the claim-verification harness."""

import pytest

from repro.experiments.claims import (
    ClaimChecker,
    ClaimResult,
    render_claim_table,
)
from repro.simulation.results import SimulationResult, SweepResult
from repro.types import DOCUMENT_TYPES, DocumentType


def synthetic_sweep(trace_name, rates):
    """Build a SweepResult with prescribed per-policy rates.

    ``rates[policy] = (hit_rate, byte_hit_rate)`` applied uniformly at
    two capacities, with hit rate slightly increasing in capacity.
    """
    sweep = SweepResult(trace_name=trace_name)
    for policy, (hit, byte) in rates.items():
        for step, capacity in enumerate((1000, 2000)):
            result = SimulationResult(policy=policy,
                                      capacity_bytes=capacity)
            # 1000 requests of 1000 bytes, apportioned per type.
            for doc_type in DOCUMENT_TYPES:
                acc = result.metrics.by_type[doc_type]
                acc.requests = 200
                acc.hits = int(200 * min(hit + 0.01 * step, 1.0))
                acc.requested_bytes = 200_000
                acc.hit_bytes = int(200_000 * min(byte + 0.01 * step, 1.0))
                result.metrics.overall.merge(acc)
            sweep.add(result)
    return sweep


def paper_consistent_sweeps():
    """Sweeps engineered so every claim passes."""
    dfn_const = synthetic_sweep("dfn", {
        "lru": (0.20, 0.30), "lfu-da": (0.25, 0.32),
        "gds(1)": (0.40, 0.10), "gd*(1)": (0.45, 0.12)})
    # Per-type adjustments: multimedia inversion + byte collapse.
    for sweep in (dfn_const,):
        for policy, mm_hit, mm_byte in (("lru", 0.30, 0.40),
                                        ("lfu-da", 0.30, 0.40),
                                        ("gds(1)", 0.05, 0.05),
                                        ("gd*(1)", 0.02, 0.02)):
            for result in sweep.grid[policy].values():
                acc = result.metrics.by_type[DocumentType.MULTIMEDIA]
                acc.hits = int(acc.requests * mm_hit)
                acc.hit_bytes = int(acc.requested_bytes * mm_byte)
    dfn_packet = synthetic_sweep("dfn", {
        "lru": (0.20, 0.30), "lfu-da": (0.25, 0.32),
        "gds(p)": (0.30, 0.31), "gd*(p)": (0.46, 0.40)})
    rtp_const = synthetic_sweep("rtp", {
        "lru": (0.10, 0.15), "lfu-da": (0.12, 0.16),
        "gds(1)": (0.20, 0.08), "gd*(1)": (0.22, 0.09)})
    for policy, mm_hit in (("lru", 0.20), ("lfu-da", 0.20),
                           ("gds(1)", 0.05), ("gd*(1)", 0.02)):
        for result in rtp_const.grid[policy].values():
            acc = result.metrics.by_type[DocumentType.MULTIMEDIA]
            acc.hits = int(acc.requests * mm_hit)
    rtp_packet = synthetic_sweep("rtp", {
        "lru": (0.10, 0.15), "lfu-da": (0.12, 0.16),
        "gds(p)": (0.15, 0.17), "gd*(p)": (0.16, 0.17)})
    return {"dfn-const": dfn_const, "dfn-packet": dfn_packet,
            "rtp-const": rtp_const, "rtp-packet": rtp_packet}


class TestChecker:
    def test_requires_all_sweeps(self):
        with pytest.raises(ValueError):
            ClaimChecker({"dfn-const": SweepResult(trace_name="x")})

    def test_all_claims_pass_on_consistent_sweeps(self):
        checker = ClaimChecker(paper_consistent_sweeps())
        results = checker.run_all()
        assert len(results) == 10
        failing = [r.claim_id for r in results if not r.passed]
        assert failing == []

    def test_claim_fails_when_ordering_inverted(self):
        sweeps = paper_consistent_sweeps()
        # Make LRU the DFN constant-cost winner: several claims break.
        boosted = synthetic_sweep("dfn", {
            "lru": (0.90, 0.90), "lfu-da": (0.25, 0.32),
            "gds(1)": (0.40, 0.10), "gd*(1)": (0.45, 0.12)})
        sweeps["dfn-const"] = boosted
        results = ClaimChecker(sweeps).run_all()
        by_id = {r.claim_id: r for r in results}
        assert not by_id["freq-over-recency"].passed
        assert not by_id["gdstar-images-html"].passed

    def test_results_carry_detail(self):
        results = ClaimChecker(paper_consistent_sweeps()).run_all()
        for result in results:
            assert isinstance(result, ClaimResult)
            assert result.detail


class TestRendering:
    def test_table_marks_pass_fail(self):
        results = [
            ClaimResult("good", "a passing claim", True, "fine"),
            ClaimResult("bad", "a failing claim", False, "broken"),
        ]
        text = render_claim_table(results)
        assert "[PASS] good" in text
        assert "[FAIL] bad " in text
        assert "1/2 claims reproduced" in text


@pytest.mark.slow
def test_verify_claims_experiment_tiny():
    """End-to-end at tiny scale: most claims should still hold (some
    per-type contrasts are noise-limited this small, so require a
    strong majority rather than all ten)."""
    from repro.experiments.runner import run_experiment

    report = run_experiment("verify-claims", scale="tiny")
    passed = sum(1 for claim in report.data.values() if claim["passed"])
    assert passed >= 7
    assert "claims reproduced" in report.text
