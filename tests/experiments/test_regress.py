"""Cross-revision regression detection: gating, inference, CLI."""

import pytest

from repro.errors import ServiceError
from repro.experiments.regress import (
    IMPROVED,
    INDISTINGUISHABLE,
    REGRESSED,
    RegressionReport,
    collect_samples,
    detect_regressions,
    main,
    resolve_hashes,
)
from repro.experiments.store import ResultsStore


def _payload(policy="lru", trace="dfn", scale=0.01, fraction=0.05,
             hit_rate=0.5, byte_hit_rate=0.3, types=None):
    return {
        "spec": {"trace": trace, "scale": scale, "policy": policy,
                 "size_fraction": fraction, "seed": 0},
        "capacity_bytes": 1000,
        "hit_rate": hit_rate,
        "byte_hit_rate": byte_hit_rate,
        "type_hit_rates": dict(types or {"image": hit_rate + 0.1,
                                         "html": hit_rate - 0.1}),
    }


def _populate(store, git_hash, hit_rates, **kwargs):
    """One record per seed under one condition and revision."""
    for seed, rate in enumerate(hit_rates):
        store.append("cfg-" + kwargs.get("policy", "lru"), git_hash,
                     seed, _payload(hit_rate=rate, **kwargs))


@pytest.fixture
def store(tmp_path):
    return ResultsStore(tmp_path / "store")


class TestCollectSamples:
    def test_groups_by_condition_then_hash_then_metric(self, store):
        _populate(store, "aaa", [0.5, 0.6])
        _populate(store, "bbb", [0.4, 0.45])
        samples = collect_samples(store)
        condition = ("dfn", 0.01, "lru", 0.05)
        assert condition in samples
        assert set(samples[condition]) == {"aaa", "bbb"}
        metrics = samples[condition]["aaa"]
        assert metrics["hit_rate"] == {0: 0.5, 1: 0.6}
        assert "byte_hit_rate" in metrics
        assert "hit_rate[image]" in metrics

    def test_foreign_records_are_skipped(self, store):
        store.append("cfg", "aaa", 1, {"something": "else"})
        assert collect_samples(store) == {}

    def test_non_numeric_and_bool_metrics_skipped(self, store):
        payload = _payload()
        payload["hit_rate"] = True
        payload["type_hit_rates"]["image"] = "high"
        store.append("cfg", "aaa", 1, payload)
        metrics = collect_samples(store)[("dfn", 0.01, "lru", 0.05)]
        assert "hit_rate" not in metrics["aaa"]
        assert "hit_rate[image]" not in metrics["aaa"]
        assert "hit_rate[html]" in metrics["aaa"]


class TestVerdicts:
    def test_seeded_regression_is_flagged(self, store):
        # clearly separated samples: every candidate below every
        # baseline, 5 seeds a side -> exact p well under 0.05
        _populate(store, "base", [0.50, 0.51, 0.52, 0.53, 0.54])
        _populate(store, "cand", [0.40, 0.41, 0.42, 0.43, 0.44])
        report = detect_regressions(store, baseline="base",
                                    candidate="cand")
        overall = [v for v in report.verdicts
                   if v.metric == "hit_rate"]
        assert [v.verdict for v in overall] == [REGRESSED]
        assert overall[0].a12 < 0.5
        assert report.regressions

    def test_seeded_improvement_is_flagged(self, store):
        _populate(store, "base", [0.40, 0.41, 0.42, 0.43, 0.44])
        _populate(store, "cand", [0.50, 0.51, 0.52, 0.53, 0.54])
        report = detect_regressions(store, baseline="base",
                                    candidate="cand")
        overall = [v for v in report.verdicts
                   if v.metric == "hit_rate"]
        assert [v.verdict for v in overall] == [IMPROVED]
        assert overall[0].a12 > 0.5

    def test_noise_stays_indistinguishable(self, store):
        # interleaved samples: no consistent direction
        _populate(store, "base", [0.50, 0.43, 0.52, 0.45, 0.49])
        _populate(store, "cand", [0.49, 0.51, 0.44, 0.50, 0.46])
        report = detect_regressions(store, baseline="base",
                                    candidate="cand")
        assert all(v.verdict == INDISTINGUISHABLE
                   for v in report.verdicts)
        assert not report.regressions
        assert not report.improvements

    def test_insignificant_shift_not_flagged(self, store):
        # a consistent but tiny sample (2 seeds a side) cannot reach
        # p < 0.05 under the exact test: the detector must refuse
        _populate(store, "base", [0.50, 0.51])
        _populate(store, "cand", [0.40, 0.41])
        report = detect_regressions(store, baseline="base",
                                    candidate="cand")
        assert all(v.verdict == INDISTINGUISHABLE
                   for v in report.verdicts)

    def test_per_type_metrics_get_their_own_verdicts(self, store):
        # overall flat; image rate collapses
        for seed, (overall, image) in enumerate(
                [(0.5, 0.60), (0.51, 0.61), (0.52, 0.62),
                 (0.53, 0.63), (0.54, 0.64)]):
            store.append("cfg-lru", "base", seed, _payload(
                hit_rate=overall,
                types={"image": image, "html": 0.3}))
        for seed, (overall, image) in enumerate(
                [(0.5, 0.20), (0.51, 0.21), (0.52, 0.22),
                 (0.53, 0.23), (0.54, 0.24)]):
            store.append("cfg-lru", "cand", seed, _payload(
                hit_rate=overall,
                types={"image": image, "html": 0.3}))
        report = detect_regressions(store, baseline="base",
                                    candidate="cand")
        by_metric = {v.metric: v.verdict for v in report.verdicts}
        assert by_metric["hit_rate[image]"] == REGRESSED
        assert by_metric["hit_rate"] == INDISTINGUISHABLE

    def test_metric_filter(self, store):
        _populate(store, "base", [0.5, 0.51, 0.52, 0.53])
        _populate(store, "cand", [0.4, 0.41, 0.42, 0.43])
        report = detect_regressions(store, baseline="base",
                                    candidate="cand",
                                    metrics=["hit_rate"])
        assert {v.metric for v in report.verdicts} == {"hit_rate"}

    def test_same_hash_twice_is_an_error(self, store):
        _populate(store, "aaa", [0.5])
        with pytest.raises(ServiceError):
            detect_regressions(store, baseline="aaa",
                               candidate="aaa")

    def test_report_round_trips_to_dict(self, store):
        _populate(store, "base", [0.5, 0.6])
        _populate(store, "cand", [0.5, 0.6])
        report = detect_regressions(store, baseline="base",
                                    candidate="cand")
        data = report.as_dict()
        assert data["baseline"] == "base"
        assert data["summary"]["regressed"] == 0
        assert len(data["verdicts"]) == len(report.verdicts)
        assert "indistinguishable" in report.render()


class TestResolveHashes:
    def test_explicit_pair_passes_through(self, store):
        assert resolve_hashes(store, "a", "b") == ("a", "b")

    def test_two_hash_store_infers_baseline(self, store):
        _populate(store, "old", [0.5])
        _populate(store, "new", [0.5])
        baseline, candidate = resolve_hashes(store, candidate="new")
        assert (baseline, candidate) == ("old", "new")

    def test_baseline_only_with_two_hashes_infers_candidate(
            self, store):
        _populate(store, "old", [0.5])
        _populate(store, "new", [0.5])
        baseline, candidate = resolve_hashes(store, baseline="old")
        assert (baseline, candidate) == ("old", "new")

    def test_ambiguous_baseline_raises(self, store):
        for git_hash in ("one", "two", "three"):
            _populate(store, git_hash, [0.5])
        with pytest.raises(ServiceError):
            resolve_hashes(store, candidate="one")

    def test_unknown_candidate_raises(self, store, monkeypatch):
        monkeypatch.setattr("repro.experiments.regress.git_revision",
                            lambda: "nowhere")
        _populate(store, "only", [0.5])
        with pytest.raises(ServiceError):
            resolve_hashes(store)


class TestCli:
    def _root_with_regression(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        _populate(store, "base", [0.50, 0.51, 0.52, 0.53, 0.54])
        _populate(store, "cand", [0.40, 0.41, 0.42, 0.43, 0.44])
        return tmp_path

    def test_cli_renders_table(self, tmp_path, capsys):
        root = self._root_with_regression(tmp_path)
        code = main(["--root", str(root), "--baseline", "base",
                     "--candidate", "cand"])
        assert code == 0
        out = capsys.readouterr().out
        assert "regressed" in out
        assert "base" in out and "cand" in out

    def test_cli_fail_on_regression_exits_nonzero(self, tmp_path):
        root = self._root_with_regression(tmp_path)
        assert main(["--root", str(root), "--baseline", "base",
                     "--candidate", "cand",
                     "--fail-on-regression"]) == 1

    def test_cli_json_output(self, tmp_path, capsys):
        import json
        root = self._root_with_regression(tmp_path)
        assert main(["--root", str(root), "--baseline", "base",
                     "--candidate", "cand", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["summary"]["regressed"] >= 1

    def test_cli_error_on_ambiguity(self, tmp_path, capsys):
        store = ResultsStore(tmp_path / "store")
        for git_hash in ("one", "two", "three"):
            _populate(store, git_hash, [0.5])
        assert main(["--root", str(tmp_path),
                     "--candidate", "one"]) == 2
        assert "error:" in capsys.readouterr().err


def test_verdict_labels_are_the_documented_strings():
    assert (IMPROVED, REGRESSED, INDISTINGUISHABLE) == \
        ("improved", "regressed", "indistinguishable")
    report = RegressionReport(baseline="a", candidate="b",
                              alpha=0.05, verdicts=[])
    assert "no configuration" in report.render()
