"""End-to-end tests for the durable experiment service."""

import multiprocessing

import pytest

from repro.errors import ServiceError
from repro.experiments.service import (
    TrialSpec,
    build_report,
    enqueue_grid,
    execute_trial,
    open_service,
    service_status,
    work,
)
from repro.experiments.store import ResultsStore
from repro.resilience.faults import FaultInjector, FaultSpec

TINY = 1 / 512  # matches the conftest trace fixtures


def make_spec(**overrides):
    base = dict(trace="dfn", scale=TINY, policy="lru",
                size_fraction=0.01, seed=42)
    base.update(overrides)
    return TrialSpec(**base)


class TestTrialSpec:
    def test_validation(self):
        with pytest.raises(ServiceError, match="trace"):
            make_spec(trace="nonsense")
        with pytest.raises(ServiceError, match="size_fraction"):
            make_spec(size_fraction=0.0)
        with pytest.raises(ServiceError, match="scale"):
            make_spec(scale=-1.0)

    def test_from_dict_roundtrip(self):
        spec = make_spec()
        assert TrialSpec.from_dict(spec.as_dict()) == spec

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(ServiceError, match="malformed"):
            TrialSpec.from_dict({"trace": "dfn"})
        with pytest.raises(ServiceError, match="malformed"):
            TrialSpec.from_dict({"trace": "dfn", "scale": "not-a-num",
                                 "policy": "lru", "size_fraction": 0.01,
                                 "seed": 1})

    def test_config_key_groups_replicas_across_seeds(self):
        assert make_spec(seed=1).config_key() == \
            make_spec(seed=2).config_key()
        assert make_spec(policy="gds(1)").config_key() != \
            make_spec(policy="lru").config_key()

    def test_result_key_separates_seeds(self):
        key_a = make_spec(seed=1).result_key("git")
        key_b = make_spec(seed=2).result_key("git")
        assert key_a.config_hash == key_b.config_hash
        assert key_a != key_b


class TestExecuteTrial:
    def test_deterministic_payload(self):
        spec = make_spec()
        first = execute_trial(spec)
        second = execute_trial(spec)
        assert first == second
        assert first["spec"] == spec.as_dict()
        assert 0.0 <= first["hit_rate"] <= 1.0
        assert 0.0 <= first["byte_hit_rate"] <= 1.0
        assert first["capacity_bytes"] > 0

    def test_different_policies_differ(self):
        lru = execute_trial(make_spec(policy="lru"))
        gds = execute_trial(make_spec(policy="gds(1)"))
        assert lru != gds


class TestWorkLoop:
    def enqueue_small_grid(self, root, seeds=(42, 1042)):
        queue, store = open_service(root, lease_ttl=5.0)
        ids = enqueue_grid(queue, traces=["dfn"], scale=TINY,
                           policies=["lru", "gds(1)"],
                           size_fractions=[0.01], seeds=list(seeds))
        return queue, store, ids

    def test_drains_queue_and_fills_store(self, tmp_path):
        queue, store, ids = self.enqueue_small_grid(tmp_path / "svc")
        executed = work(queue, store, git_hash="testgit")
        assert executed == len(ids) == 4
        assert queue.status().drained
        assert len(store.records()) == 4

    def test_work_is_idempotent(self, tmp_path):
        queue, store, _ = self.enqueue_small_grid(tmp_path / "svc")
        work(queue, store, git_hash="testgit")
        assert work(queue, store, git_hash="testgit") == 0
        assert len(store.records()) == 4

    def test_skips_execution_when_store_has_record(self, tmp_path):
        # Simulates a predecessor that died between its append and its
        # done marker: the record exists, the marker does not.
        queue, store, ids = self.enqueue_small_grid(
            tmp_path / "svc", seeds=(42,))
        spec = TrialSpec.from_dict(queue.spec_for(ids[0]))
        key = spec.result_key("testgit")
        store.append(key.config_hash, key.git_hash, key.seed,
                     {"spec": spec.as_dict(), "hit_rate": 0.123,
                      "byte_hit_rate": 0.1, "capacity_bytes": 1})
        work(queue, store, git_hash="testgit")
        # the pre-seeded record was honored, not re-executed
        assert store.records()[key]["payload"]["hit_rate"] == 0.123
        assert queue.status().drained

    def test_transient_execution_fault_retries(self, tmp_path):
        queue, store, ids = self.enqueue_small_grid(
            tmp_path / "svc", seeds=(42,))
        injector = FaultInjector.raise_once(ids[0])
        executed = work(queue, store, fault_injector=injector,
                        git_hash="testgit")
        assert executed == 2  # attempt 1 fails, attempt 2 succeeds...
        # (both trials complete; the count is completions)
        assert queue.status().drained

    def test_invalid_spec_is_abandoned_not_looped(self, tmp_path):
        queue, store = open_service(tmp_path / "svc", max_attempts=2)
        trial_id, _ = queue.enqueue({"trace": "nonsense", "scale": TINY,
                                     "policy": "lru",
                                     "size_fraction": 0.01, "seed": 1})
        executed = work(queue, store, git_hash="testgit")
        assert executed == 0
        status = queue.status()
        assert status.failed == 1
        assert status.drained

    def test_idle_timeout_bounds_the_wait(self, tmp_path):
        # Another (simulated live) worker holds the only trial: a
        # second worker must wait, but idle_timeout bounds it.
        queue, store, ids = self.enqueue_small_grid(
            tmp_path / "svc", seeds=(42,))
        rival, _ = open_service(tmp_path / "svc", owner="rival",
                                lease_ttl=60.0)
        assert rival.claim() is not None
        executed = work(queue, store, git_hash="testgit",
                        poll_seconds=0.01, idle_timeout=0.1)
        # the free trial was done; the rival's was waited on, then the
        # timeout fired instead of spinning forever
        assert executed == 1
        assert not queue.status().drained


class TestCrashWindows:
    """Every window of the commit order, exercised with real SIGKILLs
    (os._exit) in child processes."""

    @staticmethod
    def _worker(root, injector):
        from repro.observability import events

        events.set_event_sink(None)
        queue, store = open_service(root, lease_ttl=0.5)
        work(queue, store, fault_injector=injector, git_hash="testgit")

    def run_worker(self, root, injector=None):
        ctx = multiprocessing.get_context()
        proc = ctx.Process(target=self._worker, args=(str(root), injector))
        proc.start()
        proc.join(120)
        assert not proc.is_alive()
        return proc.exitcode

    def enqueue_one(self, root):
        queue, store = open_service(root)
        ids = enqueue_grid(queue, traces=["dfn"], scale=TINY,
                           policies=["lru"], size_fractions=[0.01],
                           seeds=[42])
        return queue, store, ids[0]

    def test_crash_before_execution_recovers(self, tmp_path):
        root = tmp_path / "svc"
        queue, store, trial_id = self.enqueue_one(root)
        injector = FaultInjector.crash_once(trial_id)
        assert self.run_worker(root, injector) == 113  # died on purpose

        import time
        time.sleep(0.6)  # let the 0.5s lease go stale
        assert self.run_worker(root, injector) == 0  # attempt 2 clean
        assert queue.status().drained
        assert len(store.records()) == 1

    def test_crash_between_append_and_marker_recovers(self, tmp_path):
        root = tmp_path / "svc"
        queue, store, trial_id = self.enqueue_one(root)
        injector = FaultInjector.of(
            FaultSpec(key=f"{trial_id}#commit", kind="crash"))
        assert self.run_worker(root, injector) == 113
        # the record was appended before the crash...
        assert len(store.records()) == 1
        # ...but the done marker was not
        assert queue.done_ids() == []

        import time
        time.sleep(0.6)
        assert self.run_worker(root, injector) == 0
        assert queue.status().drained
        records = store.records()
        assert len(records) == 1  # dedup: no double record
        store.compact()
        assert len(store.records()) == 1


class TestStatusAndReport:
    def populate(self, root, seeds=(42, 1042, 2042)):
        queue, store = open_service(root)
        enqueue_grid(queue, traces=["dfn"], scale=TINY,
                     policies=["lru", "gds(1)"], size_fractions=[0.01],
                     seeds=list(seeds))
        work(queue, store, git_hash="testgit")
        return store

    def test_service_status_census(self, tmp_path):
        root = tmp_path / "svc"
        self.populate(root, seeds=(42,))
        status = service_status(root)
        assert status["queue"]["done"] == 2
        assert status["store"]["records"] == 2
        assert status["store"]["git_hashes"] == ["testgit"]
        assert status["store"]["quarantined"] == 0

    def test_report_reproducible_from_store_alone(self, tmp_path):
        store = self.populate(tmp_path / "svc")
        # a fresh handle with no queue knowledge sees the same report
        fresh = ResultsStore(tmp_path / "svc" / "store")
        report_a = build_report(store)
        report_b = build_report(fresh)
        assert report_a.text == report_b.text
        assert report_a.data == report_b.data

    def test_report_contents(self, tmp_path):
        store = self.populate(tmp_path / "svc")
        report = build_report(store, metric="hit_rate")
        assert "trace=dfn" in report.text
        assert "lru" in report.text and "gds(1)" in report.text
        (group,) = report.data["groups"]
        assert group["git_hash"] == "testgit"
        assert len(group["ranking"]) == 2
        assert len(group["comparisons"]) == 1
        for row in group["ranking"]:
            assert row["summary"]["n"] == 3

    def test_three_replicas_refuse_overclaiming(self, tmp_path):
        # With n=3 the minimum exact two-sided p is 1/10 > 0.05: the
        # report must share ranks rather than invent an ordering.
        store = self.populate(tmp_path / "svc")
        (group,) = build_report(store).data["groups"]
        ranks = {row["rank"] for row in group["ranking"]}
        assert ranks == {1}
        assert not group["comparisons"][0]["significant"]

    def test_rejects_unknown_metric(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        with pytest.raises(ServiceError, match="metric"):
            build_report(store, metric="latency")

    def test_foreign_records_ignored(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        store.append("cfg", "git", 1, {"something": "else"})
        report = build_report(store)
        assert report.data["groups"] == []
        assert "no service records" in report.text
