"""Service observability: per-type payloads, spans, status, CLI."""

import json
import time

import pytest

from repro.experiments.service import (
    TrialSpec,
    execute_trial,
    main,
    open_service,
    service_status,
    work,
)
from repro.observability.events import (
    EventLog,
    read_events,
    set_event_sink,
)
from repro.observability.trace import disable_tracing, enable_tracing
from repro.types import DocumentType

TINY = 1 / 512


@pytest.fixture(autouse=True)
def _clean_globals():
    yield
    set_event_sink(None)
    disable_tracing()


def make_spec(**overrides):
    base = dict(trace="dfn", scale=TINY, policy="lru",
                size_fraction=0.01, seed=42)
    base.update(overrides)
    return TrialSpec(**base)


class TestPerTypePayload:
    def test_payload_breaks_hit_rate_down_by_document_type(self):
        payload = execute_trial(make_spec())
        rates = payload["type_hit_rates"]
        assert set(rates) == {t.value for t in DocumentType}
        for value in rates.values():
            assert isinstance(value, float)
            assert 0.0 <= value <= 1.0

    def test_per_type_rates_are_deterministic(self):
        first = execute_trial(make_spec())
        second = execute_trial(make_spec())
        assert first["type_hit_rates"] == second["type_hit_rates"]


class TestWorkerSpans:
    def test_work_emits_worker_and_trial_spans(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        set_event_sink(log)
        enable_tracing()
        queue, store = open_service(tmp_path / "svc")
        queue.enqueue(make_spec().as_dict())
        executed = work(queue, store, max_trials=1)
        log.close()
        assert executed == 1
        spans = read_events(tmp_path / "events.jsonl", event="span")
        by_name = {s["name"]: s for s in spans}
        assert by_name["worker"]["attributes"]["executed"] == 1
        trial = by_name["trial"]
        assert trial["parent_id"] == by_name["worker"]["span_id"]
        assert trial["trace_id"] == by_name["worker"]["trace_id"]
        assert trial["attributes"]["policy"] == "lru"
        assert trial["attributes"]["seed"] == 42
        assert trial["attributes"]["attempt"] == 1
        assert trial["status"] == "ok"

    def test_marker_only_reexecution_is_attributed(self, tmp_path):
        queue, store = open_service(tmp_path / "svc")
        queue.enqueue(make_spec().as_dict())
        work(queue, store, max_trials=1)
        # simulate a worker that died between its store append and its
        # done marker: the record exists, only the marker is left
        for marker in queue.done_dir.glob("*.json"):
            marker.unlink()
        log = EventLog(tmp_path / "events.jsonl")
        set_event_sink(log)
        enable_tracing()
        work(queue, store, max_trials=1)
        log.close()
        spans = read_events(tmp_path / "events.jsonl", event="span")
        (trial,) = [s for s in spans if s["name"] == "trial"]
        assert trial["attributes"].get("outcome") == "marker_only"


class TestStatusWorkers:
    def test_lease_holder_heartbeat_and_attempts(self, tmp_path):
        queue, store = open_service(tmp_path, owner="host:9")
        queue.enqueue(make_spec().as_dict())
        claimed = queue.claim()
        assert claimed is not None
        status = service_status(tmp_path)
        (worker,) = status["workers"]
        assert worker["trial_id"] == claimed.trial_id
        assert worker["owner"] == "host:9"
        assert worker["attempt"] == 1
        assert worker["stale"] is False
        assert worker["heartbeat_age_seconds"] is not None
        assert worker["heartbeat_age_seconds"] >= 0.0

    def test_stale_lease_is_reported_stale(self, tmp_path):
        queue, store = open_service(tmp_path, owner="host:9")
        queue.enqueue(make_spec().as_dict())
        claimed = queue.claim()
        assert claimed is not None
        # back-date the heartbeat far beyond any TTL
        lease_path = queue.leases.directory \
            / f"{claimed.trial_id}.lease"
        holder = json.loads(lease_path.read_text())
        holder["renewed_at"] = time.time() - 10_000
        lease_path.write_text(json.dumps(holder))
        status = service_status(tmp_path)
        (worker,) = status["workers"]
        assert worker["stale"] is True
        assert worker["heartbeat_age_seconds"] > 9_000

    def test_no_leases_means_no_workers(self, tmp_path):
        open_service(tmp_path)
        assert service_status(tmp_path)["workers"] == []


class TestCliVerbs:
    def _drained_root(self, tmp_path):
        root = tmp_path / "svc"
        assert main(["--root", str(root), "enqueue",
                     "--policies", "lru", "gds(1)",
                     "--size-fractions", "0.01",
                     "--seeds", "42", "1042"]) == 0
        assert main(["--root", str(root), "work",
                     "--telemetry-dir",
                     str(root / "telemetry")]) == 0
        return root

    def test_work_writes_telemetry_spans(self, tmp_path, capsys):
        root = self._drained_root(tmp_path)
        capsys.readouterr()
        files = sorted((root / "telemetry").glob("events*.jsonl"))
        assert files
        spans = []
        for path in files:
            spans.extend(read_events(path, event="span"))
        names = {s["name"] for s in spans}
        assert {"worker", "trial"} <= names

    def test_status_watch_paints_dashboard(self, tmp_path, capsys):
        root = self._drained_root(tmp_path)
        capsys.readouterr()
        assert main(["--root", str(root), "status", "--watch",
                     "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "service dashboard" in out
        assert "done=4" in out

    def test_report_html_is_written_with_waterfall(self, tmp_path,
                                                   capsys):
        root = self._drained_root(tmp_path)
        html_path = tmp_path / "out" / "report.html"
        assert main(["--root", str(root), "report",
                     "--html", str(html_path)]) == 0
        capsys.readouterr()
        document = html_path.read_text(encoding="utf-8")
        assert document.startswith("<!DOCTYPE html>")
        assert "<svg" in document
        assert "hit rate vs cache size" in document
        assert "span waterfall" in document
        assert "<script" not in document

    def test_regress_verb_renders_and_gates(self, tmp_path, capsys):
        root = tmp_path / "svc"
        _, store = open_service(root)
        for seed, rate in enumerate([0.50, 0.51, 0.52, 0.53, 0.54]):
            store.append("cfg", "base", seed, {
                "spec": {"trace": "dfn", "scale": TINY,
                         "policy": "lru", "size_fraction": 0.01,
                         "seed": seed},
                "hit_rate": rate, "byte_hit_rate": rate / 2})
        for seed, rate in enumerate([0.40, 0.41, 0.42, 0.43, 0.44]):
            store.append("cfg", "cand", seed, {
                "spec": {"trace": "dfn", "scale": TINY,
                         "policy": "lru", "size_fraction": 0.01,
                         "seed": seed},
                "hit_rate": rate, "byte_hit_rate": rate / 2})
        assert main(["--root", str(root), "regress",
                     "--candidate", "cand", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["baseline"] == "base"
        assert data["candidate"] == "cand"
        assert data["summary"]["regressed"] >= 1
        assert main(["--root", str(root), "regress",
                     "--candidate", "cand",
                     "--fail-on-regression"]) == 1

    def test_regress_verb_error_exit(self, tmp_path, capsys):
        root = tmp_path / "svc"
        open_service(root)
        assert main(["--root", str(root), "regress",
                     "--baseline", "x", "--candidate", "x"]) == 2
        assert "error:" in capsys.readouterr().err
