"""Live dashboard: incremental tailing, span stacks, rate, render."""

import io
import json

import pytest

from repro.experiments.dashboard import (
    THROUGHPUT_WINDOW,
    Dashboard,
    EventTailer,
    watch,
)
from repro.experiments.service import open_service


def _write_line(path, record):
    with open(path, "a", encoding="utf-8") as stream:
        stream.write(json.dumps(record) + "\n")


def _event(event, ts=1.0, seq=1, **fields):
    return dict({"ts": ts, "seq": seq, "event": event}, **fields)


class TestEventTailer:
    def test_reads_only_new_lines_per_poll(self, tmp_path):
        path = tmp_path / "events.jsonl"
        _write_line(path, _event("a"))
        tailer = EventTailer([tmp_path])
        assert [e["event"] for e in tailer.poll()] == ["a"]
        assert tailer.poll() == []
        _write_line(path, _event("b", seq=2))
        assert [e["event"] for e in tailer.poll()] == ["b"]

    def test_torn_trailing_bytes_stay_unconsumed(self, tmp_path):
        path = tmp_path / "events.jsonl"
        _write_line(path, _event("a"))
        with open(path, "a", encoding="utf-8") as stream:
            stream.write('{"ts": 2, "seq": 2, "event": "to')
        tailer = EventTailer([tmp_path])
        assert [e["event"] for e in tailer.poll()] == ["a"]
        # the writer finishes its append; the tail picks it up whole
        with open(path, "a", encoding="utf-8") as stream:
            stream.write('rn"}\n')
        assert [e["event"] for e in tailer.poll()] == ["torn"]

    def test_garbage_line_skipped_without_stalling(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{oops\n{"ts": 1, "seq": 1, "event": "ok"}\n')
        tailer = EventTailer([tmp_path])
        assert [e["event"] for e in tailer.poll()] == ["ok"]

    def test_new_files_picked_up_between_polls(self, tmp_path):
        tailer = EventTailer([tmp_path])
        assert tailer.poll() == []
        _write_line(tmp_path / "events-42.jsonl", _event("late"))
        events = tailer.poll()
        assert [e["event"] for e in events] == ["late"]
        assert events[0]["_source"] == "events-42.jsonl"

    def test_missing_directory_is_fine(self, tmp_path):
        tailer = EventTailer([tmp_path / "nowhere"])
        assert tailer.poll() == []

    def test_multiple_directories_merged(self, tmp_path):
        first, second = tmp_path / "one", tmp_path / "two"
        first.mkdir()
        second.mkdir()
        _write_line(first / "events.jsonl", _event("x"))
        _write_line(second / "events-9.jsonl", _event("y"))
        tailer = EventTailer([first, second])
        assert {e["event"] for e in tailer.poll()} == {"x", "y"}


class TestDashboardState:
    def _dashboard(self, tmp_path, now=1000.0):
        open_service(tmp_path)  # create queue/store dirs
        return Dashboard(tmp_path, events_dirs=[tmp_path / "telemetry"],
                         clock=lambda: now)

    def test_span_stack_opens_and_closes(self, tmp_path):
        dashboard = self._dashboard(tmp_path)
        telemetry = tmp_path / "telemetry"
        telemetry.mkdir()
        path = telemetry / "events-7.jsonl"
        _write_line(path, _event("span_started", name="worker",
                                 span_id="w1"))
        _write_line(path, _event("span_started", name="trial",
                                 span_id="t1"))
        dashboard.update()
        assert dashboard.current_spans() == {
            "events-7.jsonl": "worker > trial"}
        _write_line(path, _event("span", name="trial", span_id="t1"))
        dashboard.update()
        assert dashboard.current_spans() == {
            "events-7.jsonl": "worker"}

    def test_closing_outer_span_drops_leaked_children(self, tmp_path):
        dashboard = self._dashboard(tmp_path)
        telemetry = tmp_path / "telemetry"
        telemetry.mkdir()
        path = telemetry / "events-7.jsonl"
        _write_line(path, _event("span_started", name="worker",
                                 span_id="w1"))
        _write_line(path, _event("span_started", name="trial",
                                 span_id="t1"))
        _write_line(path, _event("span", name="worker", span_id="w1"))
        dashboard.update()
        assert dashboard.current_spans() == {}

    def test_throughput_counts_recent_completions_only(self, tmp_path):
        now = 1000.0
        dashboard = self._dashboard(tmp_path, now=now)
        telemetry = tmp_path / "telemetry"
        telemetry.mkdir()
        path = telemetry / "events.jsonl"
        # two in the window, one long past it
        _write_line(path, _event("trial_completed",
                                 ts=now - THROUGHPUT_WINDOW - 5,
                                 trial_id="old", owner="h:1",
                                 duration_seconds=1.0))
        _write_line(path, _event("trial_completed", ts=now - 10,
                                 trial_id="a", owner="h:1",
                                 duration_seconds=1.0))
        _write_line(path, _event("trial_completed", ts=now - 1,
                                 trial_id="b", owner="h:1",
                                 duration_seconds=1.0))
        dashboard.update()
        assert dashboard.throughput() == pytest.approx(
            2 / THROUGHPUT_WINDOW)
        assert dashboard._completed_total == 3

    def test_eta_from_rate(self, tmp_path):
        dashboard = self._dashboard(tmp_path)
        assert dashboard.eta_seconds(0) == 0.0
        assert dashboard.eta_seconds(5) is None  # no rate yet
        dashboard._completions = [990.0, 995.0, 999.0]
        rate = 3 / THROUGHPUT_WINDOW
        assert dashboard.eta_seconds(10) == pytest.approx(10 / rate)


class TestRender:
    def test_render_shows_queue_store_and_workers(self, tmp_path):
        queue, store = open_service(tmp_path, owner="host:1")
        queue.enqueue({"trace": "dfn", "scale": 0.01, "policy": "lru",
                       "size_fraction": 0.05, "seed": 0})
        queue.enqueue({"trace": "dfn", "scale": 0.01, "policy": "lru",
                       "size_fraction": 0.05, "seed": 1})
        claimed = queue.claim()
        assert claimed is not None
        dashboard = Dashboard(tmp_path, clock=lambda: 1000.0)
        dashboard.update()
        screen = dashboard.render()
        assert "pending=1" in screen
        assert "running=1" in screen
        assert "host:1" in screen
        assert "ETA unknown" in screen
        assert claimed.trial_id[:28] in screen

    def test_render_without_leases(self, tmp_path):
        open_service(tmp_path)
        dashboard = Dashboard(tmp_path, clock=lambda: 1000.0)
        screen = dashboard.render()
        assert "(no leases held)" in screen
        assert "records=0" in screen

    def test_render_includes_in_flight_spans(self, tmp_path):
        open_service(tmp_path)
        telemetry = tmp_path / "telemetry"
        telemetry.mkdir()
        _write_line(telemetry / "events-3.jsonl",
                    _event("span_started", name="sweep", span_id="s"))
        dashboard = Dashboard(tmp_path, clock=lambda: 1000.0)
        dashboard.update()
        screen = dashboard.render()
        assert "in flight:" in screen
        assert "events-3.jsonl: sweep" in screen


class TestWatch:
    def test_fixed_iterations_paint_and_sleep(self, tmp_path):
        open_service(tmp_path)
        out = io.StringIO()
        sleeps = []
        code = watch(tmp_path, interval=1.5, iterations=3,
                     clock=lambda: 1000.0, sleep=sleeps.append,
                     out=out, clear_screen=False)
        assert code == 0
        assert out.getvalue().count("service dashboard") == 3
        # no sleep after the final repaint
        assert sleeps == [1.5, 1.5]

    def test_clear_screen_emits_ansi_home(self, tmp_path):
        open_service(tmp_path)
        out = io.StringIO()
        watch(tmp_path, iterations=1, clock=lambda: 1000.0,
              sleep=lambda _: None, out=out)
        assert out.getvalue().startswith("\x1b[2J\x1b[H")

    def test_watch_picks_up_events_between_paints(self, tmp_path):
        open_service(tmp_path)
        telemetry = tmp_path / "telemetry"
        telemetry.mkdir()
        path = telemetry / "events.jsonl"
        out = io.StringIO()

        def sleep(_):
            _write_line(path, _event("span_started", name="late",
                                     span_id="l1"))

        watch(tmp_path, iterations=2, clock=lambda: 1000.0,
              sleep=sleep, out=out, clear_screen=False)
        text = out.getvalue()
        first, second = text.split("service dashboard")[1:]
        assert "late" not in first
        assert "late" in second
