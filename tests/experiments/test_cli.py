"""Tests for the experiments CLI and report writing."""

import json

import pytest

from repro.experiments.cli import build_parser, main
from repro.experiments.report import write_report
from repro.experiments.runner import run_experiment


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["table2"])
        assert args.experiment == "table2"
        assert args.scale == "small"
        assert args.outdir is None

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig42"])

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig2", "--scale", "huge"])


class TestMain:
    def test_runs_and_prints(self, capsys):
        assert main(["table2", "--scale", "tiny"]) == 0
        captured = capsys.readouterr()
        # Results on stdout, status diagnostics on stderr (logging).
        assert "% of Total Requests" in captured.out
        assert "completed in" in captured.err

    def test_quiet(self, capsys):
        assert main(["table2", "--scale", "tiny", "--quiet"]) == 0
        assert capsys.readouterr().out == ""

    def test_log_json_diagnostics(self, capsys):
        assert main(["table2", "--scale", "tiny", "--quiet",
                     "--log-json"]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        lines = [line for line in captured.err.splitlines()
                 if line.strip()]
        assert lines
        for line in lines:
            record = json.loads(line)
            assert {"ts", "level", "logger", "message"} <= set(record)
        assert any(r.get("experiment_id") == "table2"
                   for r in map(json.loads, lines))

    def test_outdir(self, tmp_path, capsys):
        assert main(["table2", "--scale", "tiny",
                     "--outdir", str(tmp_path)]) == 0
        report_dir = tmp_path / "table2"
        assert (report_dir / "report.txt").exists()
        data = json.loads((report_dir / "data.json").read_text())
        assert data["experiment_id"] == "table2"
        assert data["scale"] == "tiny"


class TestWriteReport:
    def test_artifacts_written(self, tmp_path):
        report = run_experiment("fig1", scale="tiny")
        directory = write_report(report, tmp_path)
        assert directory == tmp_path / "fig1"
        assert (directory / "report.txt").read_text().startswith("Figure 1")
        csv_files = list(directory.glob("*.csv"))
        assert len(csv_files) == 8  # 4 policies x (documents, bytes)
        header = csv_files[0].read_text().splitlines()[0]
        assert header.startswith("request,")
