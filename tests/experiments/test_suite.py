"""Tests for fault-tolerant suite execution and its CLI flags."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.cli import main
from repro.experiments.config import ExperimentSettings
from repro.experiments.runner import (
    ExperimentReport,
    _report_from_payload,
    _report_to_payload,
    run_suite,
)
from repro.resilience import CheckpointStore

import repro.experiments.runner as runner_module


class FakeRunner:
    """Scripted experiment runner: fails ``failures`` times, counts calls."""

    def __init__(self, experiment_id, failures=0):
        self.experiment_id = experiment_id
        self.failures = failures
        self.calls = 0

    def __call__(self, settings):
        self.calls += 1
        if self.calls <= self.failures:
            raise RuntimeError(f"{self.experiment_id} boom {self.calls}")
        return ExperimentReport(self.experiment_id, settings.scale_name,
                                f"text for {self.experiment_id}",
                                {"calls": self.calls})


@pytest.fixture
def fake_runners(monkeypatch):
    """Replace three real experiment ids with scripted runners."""
    runners = {eid: FakeRunner(eid)
               for eid in ("table1", "table2", "table3")}
    for eid, fake in runners.items():
        monkeypatch.setitem(runner_module._RUNNERS, eid, fake)
    return runners


class TestRunSuite:
    def test_runs_all_in_order(self, fake_runners):
        suite = run_suite(["table1", "table2", "table3"], scale="tiny")
        assert [r.experiment_id for r in suite.reports] == \
            ["table1", "table2", "table3"]
        assert suite.complete
        assert suite.executed == ["table1", "table2", "table3"]
        assert suite.resumed == []

    def test_failure_is_isolated(self, fake_runners):
        fake_runners["table2"].failures = 99
        suite = run_suite(["table1", "table2", "table3"], scale="tiny",
                          max_retries=1, sleep=lambda _: None)
        assert [r.experiment_id for r in suite.reports] == \
            ["table1", "table3"]
        (failure,) = suite.failures
        assert failure.experiment_id == "table2"
        assert failure.attempts == 2
        assert failure.error_type == "RuntimeError"

    def test_transient_failure_retried(self, fake_runners):
        fake_runners["table2"].failures = 1
        suite = run_suite(["table2"], scale="tiny", max_retries=1,
                          sleep=lambda _: None)
        assert suite.complete
        assert fake_runners["table2"].calls == 2

    def test_raise_policy_propagates(self, fake_runners):
        fake_runners["table1"].failures = 99
        with pytest.raises(RuntimeError):
            run_suite(["table1"], scale="tiny", max_retries=0,
                      failure_policy="raise", sleep=lambda _: None)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ExperimentError):
            run_suite(["table1"], failure_policy="maybe")
        with pytest.raises(ExperimentError):
            run_suite(["table1"], resume=True)
        with pytest.raises(ExperimentError):
            run_suite(["no-such-experiment"])


class TestCheckpointResume:
    def test_killed_suite_resumes_only_unfinished(self, fake_runners,
                                                  tmp_path):
        """The acceptance scenario: a suite dies mid-way; re-invoking
        with resume re-runs only the experiments with no checkpoint."""
        fake_runners["table2"].failures = 1
        with pytest.raises(RuntimeError):
            run_suite(["table1", "table2", "table3"], scale="tiny",
                      checkpoint_dir=tmp_path, max_retries=0,
                      failure_policy="raise", sleep=lambda _: None)
        # Checkpoint inspection: exactly the completed work is on disk.
        assert CheckpointStore(tmp_path).completed_keys() == ["table1"]

        suite = run_suite(["table1", "table2", "table3"], scale="tiny",
                          checkpoint_dir=tmp_path, resume=True,
                          sleep=lambda _: None)
        assert suite.complete
        assert suite.resumed == ["table1"]
        assert suite.executed == ["table2", "table3"]
        # table1 ran exactly once across both invocations.
        assert fake_runners["table1"].calls == 1
        assert [r.experiment_id for r in suite.reports] == \
            ["table1", "table2", "table3"]
        assert CheckpointStore(tmp_path).completed_keys() == \
            ["table1", "table2", "table3"]

    def test_resumed_report_content_round_trips(self, fake_runners,
                                                tmp_path):
        run_suite(["table1"], scale="tiny", checkpoint_dir=tmp_path)
        suite = run_suite(["table1"], scale="tiny",
                          checkpoint_dir=tmp_path, resume=True)
        (report,) = suite.reports
        assert report.text == "text for table1"
        assert report.data == {"calls": 1}
        assert fake_runners["table1"].calls == 1

    def test_config_mismatch_reruns_instead_of_adopting(self,
                                                        fake_runners,
                                                        tmp_path):
        run_suite(["table1"], scale="tiny", checkpoint_dir=tmp_path)
        settings = ExperimentSettings.for_scale("tiny", seed=777)
        suite = run_suite(["table1"], scale="tiny", settings=settings,
                          checkpoint_dir=tmp_path, resume=True)
        assert suite.resumed == []
        assert suite.executed == ["table1"]
        assert fake_runners["table1"].calls == 2

    def test_on_report_distinguishes_checkpointed(self, fake_runners,
                                                  tmp_path):
        seen = []
        run_suite(["table1"], scale="tiny", checkpoint_dir=tmp_path,
                  on_report=lambda r, ckpt, _: seen.append(
                      (r.experiment_id, ckpt)))
        run_suite(["table1"], scale="tiny", checkpoint_dir=tmp_path,
                  resume=True,
                  on_report=lambda r, ckpt, _: seen.append(
                      (r.experiment_id, ckpt)))
        assert seen == [("table1", False), ("table1", True)]


class TestReportPayload:
    def test_round_trip(self):
        report = ExperimentReport("fig2", "tiny", "body",
                                  {"a": 1.5}, {"fig2.csv": "x,y\n1,2\n"})
        clone = _report_from_payload(_report_to_payload(report))
        assert clone == report


class TestCli:
    def test_resume_requires_checkpoint_dir(self, capsys):
        assert main(["table1", "--resume"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_failed_experiment_reported_and_nonzero_exit(
            self, fake_runners, capsys):
        fake_runners["table2"].failures = 99
        rc = main(["table2", "--scale", "tiny", "--quiet",
                   "--max-retries", "0"])
        assert rc == 1
        assert "table2 FAILED" in capsys.readouterr().err

    def test_checkpoint_and_resume_end_to_end(self, fake_runners,
                                              tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        assert main(["table1", "--scale", "tiny",
                     "--checkpoint-dir", ckpt]) == 0
        # Status diagnostics go through the logging layer on stderr;
        # stdout carries only the report text.
        assert "table1 completed" in capsys.readouterr().err
        assert main(["table1", "--scale", "tiny",
                     "--checkpoint-dir", ckpt, "--resume"]) == 0
        assert "restored from checkpoint" in capsys.readouterr().err
        assert fake_runners["table1"].calls == 1

    def test_sweep_workers_flag_threads_into_settings(self,
                                                      monkeypatch):
        captured = {}

        def fake_run_suite(ids, scale, settings, **kwargs):
            captured["extra"] = settings.extra
            from repro.experiments.runner import SuiteResult
            return SuiteResult()

        monkeypatch.setattr("repro.experiments.cli.run_suite",
                            fake_run_suite)
        assert main(["table1", "--quiet", "--sweep-workers", "2",
                     "--cell-timeout", "30", "--max-retries", "3"]) == 0
        assert captured["extra"] == {"engine": "percell",
                                     "sweep_workers": 2,
                                     "max_retries": 3,
                                     "cell_timeout": 30.0}
