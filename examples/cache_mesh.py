#!/usr/bin/env python3
"""Sibling cache mesh: the DFN topology, and the ICP replication knob.

The paper's DFN trace was recorded in a *cache mesh* — peer proxies
that query their siblings before the origin.  This example compares
four isolated proxies against the same four cooperating, with and
without replication of sibling-served documents::

    python examples/cache_mesh.py
"""

from repro import dfn_like, generate_trace
from repro.simulation.mesh import simulate_mesh

trace = generate_trace(dfn_like(scale=1 / 256))
per_proxy = int(trace.metadata().total_size_bytes * 0.005)
print(f"{len(trace):,} requests over 4 proxies x "
      f"{per_proxy / 1e6:.1f} MB each\n")

# Isolated proxies = a mesh where sibling lookups never help; measure
# the local rate of the non-replicating run (misses stay misses).
baseline = simulate_mesh(trace, per_proxy, n_proxies=4,
                         replicate_on_sibling_hit=False)
print(f"isolated proxies (local hits only): "
      f"{baseline.local_hit_rate:.3f}")

for replicate in (False, True):
    result = simulate_mesh(trace, per_proxy, n_proxies=4,
                           replicate_on_sibling_hit=replicate)
    mode = "replicating" if replicate else "single-owner"
    print(f"\nmesh, {mode}:")
    print(f"  local hit rate    {result.local_hit_rate:.3f}")
    print(f"  mesh hit rate     {result.mesh_hit_rate:.3f}   "
          f"(sibling share {result.sibling_hit_share:.2f})")

print("\nThe trade-off: replication converts sibling hits into future "
      "local hits but\nspends pooled capacity on duplicates; the "
      "single-owner mesh keeps more distinct\ndocuments and leans on "
      "sibling transfers instead.")
