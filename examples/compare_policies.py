#!/usr/bin/env python3
"""Compare the full policy zoo, bounded by clairvoyant Belady.

Reproduces the shape of the paper's Figure 2 with extra baselines::

    python examples/compare_policies.py [--scale 256] [--rtp]
"""

import argparse

from repro import (
    cache_sizes_from_fractions,
    dfn_like,
    generate_trace,
    rtp_like,
    run_sweep,
)
from repro.analysis.tables import render_sweep_table
from repro.core.belady import BeladyPolicy, compute_next_uses
from repro.simulation.simulator import CacheSimulator, SimulationConfig
from repro.types import DocumentType

POLICIES = ("lru", "fifo", "lfu", "lfu-da", "size", "rand", "lru-2",
            "gds(1)", "gdsf(1)", "gd*(1)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=256,
                        help="1/scale of the real trace volume")
    parser.add_argument("--rtp", action="store_true",
                        help="use the RTP-like profile instead of DFN")
    args = parser.parse_args()

    profile = (rtp_like if args.rtp else dfn_like)(scale=1 / args.scale)
    trace = generate_trace(profile)
    capacities = cache_sizes_from_fractions(trace, (0.005, 0.02, 0.04))
    print(f"{trace.name}: {len(trace):,} requests; cache sizes "
          + ", ".join(f"{c / 1e6:.1f}MB" for c in capacities) + "\n")

    sweep = run_sweep(trace, POLICIES, capacities)

    # Add the offline Belady bound at each capacity.
    next_uses = compute_next_uses(trace.requests)
    for capacity in capacities:
        config = SimulationConfig(capacity_bytes=capacity,
                                  policy=BeladyPolicy(next_uses))
        sweep.add(CacheSimulator(config).run(trace))

    print(render_sweep_table(sweep, title="Overall hit rate"))
    print()
    print(render_sweep_table(sweep, byte_rate=True,
                             title="Overall byte hit rate"))
    print()
    print(render_sweep_table(sweep, doc_type=DocumentType.MULTIMEDIA,
                             title="Multimedia hit rate"))


if __name__ == "__main__":
    main()
