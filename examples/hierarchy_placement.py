#!/usr/bin/env python3
"""Where do the document types live in a cache hierarchy?

The paper shows the replacement scheme decides *which* document types
a cache retains — SIZE-aware policies (GD*) keep many small HTML/image
documents where LRU lets a few multimedia objects squat.  In a
hierarchy the same choice plays out per level: this example runs the
DFN-like workload through a two-level tree under LRU everywhere and
under GD*(p) everywhere, then prints each type's byte share by level
from the end-of-run placement snapshot::

    python examples/hierarchy_placement.py
"""

from repro import dfn_like, generate_trace
from repro.network import NetworkConfig, run_network, two_level

trace = generate_trace(dfn_like(scale=1 / 256))
total = trace.metadata().total_size_bytes
child_capacity = int(total * 0.005)
parent_capacity = int(total * 0.02)

print(f"trace: {len(trace):,} requests; "
      f"4 children x {child_capacity / 1e6:.1f} MB "
      f"-> parent {parent_capacity / 1e6:.1f} MB")

for policy in ("lru", "gd*(p)"):
    topo = two_level(child_capacity, parent_capacity, n_children=4,
                     child_policy=policy, parent_policy=policy)
    result = run_network(trace, NetworkConfig(topology=topo))

    print(f"\n{policy} at every node: "
          f"hierarchy hit rate {result.hit_rate:.3f}, "
          f"byte hit rate {result.byte_hit_rate:.3f}")
    print(f"  {'type':<12} {'L0 (children)':>14} {'L1 (parent)':>12}")
    for doc_type, by_level in sorted(result.placement_shares().items(),
                                     key=lambda kv: kv[0].value):
        shares = " ".join(f"{by_level.get(level, 0.0):>13.1%}"
                          for level in (0, 1))
        print(f"  {doc_type.value:<12} {shares}")
    print("  each level's resident bytes, by type:")
    for level, by_type in sorted(result.placement_by_level().items()):
        held = sum(by_type.values())
        mix = ", ".join(
            f"{doc_type.value} {held and bytes_ / held:.0%}"
            for doc_type, bytes_ in sorted(by_type.items(),
                                           key=lambda kv: -kv[1])
            if bytes_)
        print(f"    L{level} ({held / 1e6:.1f} MB): {mix}")
    edge = result.edge_metrics()
    print(f"  edge hit rate {edge.overall.hit_rate:.3f} "
          f"(what the end user sees)")
