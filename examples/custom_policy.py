#!/usr/bin/env python3
"""Extend the simulator with your own replacement policy.

Implements MRU (Most Recently Used eviction) — a policy the library
deliberately does not ship, pathological on most workloads but optimal
for cyclic scans larger than the cache — using only the public
``ReplacementPolicy`` interface, and races it against the built-ins on
both a looping workload (where MRU shines) and the DFN-like mix (where
it collapses)::

    python examples/custom_policy.py
"""

from repro import dfn_like, generate_trace
from repro.core.cache import Cache
from repro.core.policy import CacheEntry, ReplacementPolicy
from repro.core.registry import make_policy
from repro.simulation.simulator import CacheSimulator, SimulationConfig
from repro.structures.dlist import DList
from repro.types import DocumentType, Request, Trace


class MRUPolicy(ReplacementPolicy):
    """Evict the *most* recently used document.

    The right policy when the workload cycles through a working set
    bigger than the cache: evicting the freshest entry preserves the
    oldest ones, which are exactly the next to come around again.
    """

    name = "mru"

    def __init__(self):
        self._order: DList = DList()

    def __len__(self) -> int:
        return len(self._order)

    def on_admit(self, entry: CacheEntry) -> None:
        entry.policy_data = self._order.push_back(entry)

    def on_hit(self, entry: CacheEntry) -> None:
        self._order.move_to_back(entry.policy_data)

    def pop_victim(self) -> CacheEntry:
        entry = self._order.back()
        self._order.unlink(entry.policy_data)
        entry.policy_data = None
        return entry

    def remove(self, entry: CacheEntry) -> None:
        self._order.unlink(entry.policy_data)
        entry.policy_data = None

    def clear(self) -> None:
        self._order = DList()


def looping_trace(n_documents=40, laps=50):
    """A cyclic scan: 40 documents requested round-robin, repeatedly."""
    requests = []
    for lap in range(laps):
        for doc in range(n_documents):
            requests.append(Request(
                timestamp=float(lap * n_documents + doc),
                url=f"loop/{doc}", size=10, transfer_size=10,
                doc_type=DocumentType.HTML))
    return Trace(requests, name="loop")


def race(trace, capacity, policies):
    print(f"-- {trace.name}: {len(trace):,} requests, "
          f"cache {capacity:,} bytes --")
    for policy in policies:
        config = SimulationConfig(capacity_bytes=capacity, policy=policy)
        result = CacheSimulator(config).run(trace)
        print(f"  {policy.name:8s} hit rate {result.hit_rate():.3f}")
    print()


def main() -> None:
    # Scenario 1: a cyclic scan over 40 docs with room for 30 — LRU
    # evicts each document just before its reuse; MRU keeps 29 of them.
    race(looping_trace(), capacity=300,
         policies=[MRUPolicy(), make_policy("lru"),
                   make_policy("lfu-da")])

    # Scenario 2: the realistic mix — MRU collapses, as it should.
    trace = generate_trace(dfn_like(scale=1 / 512))
    capacity = int(trace.metadata().total_size_bytes * 0.02)
    race(trace, capacity,
         policies=[MRUPolicy(), make_policy("lru"),
                   make_policy("gd*(1)")])

    print("Any object with the five ReplacementPolicy hooks plugs into "
          "the cache,\nthe simulator, sweeps, and the occupancy "
          "tracker unchanged.")


if __name__ == "__main__":
    main()
