#!/usr/bin/env python3
"""Two-level proxy hierarchy: children filter the locality.

The paper's DFN and RTP traces were recorded at *upper-level* proxies —
parents sitting behind institutional caches.  This example shows the
filtering effect that shapes such traces: the same cache posts a much
lower hit rate as a parent than it would standalone, because the child
caches absorb the recency and popularity signal first::

    python examples/hierarchy.py
"""

from repro import dfn_like, generate_trace, simulate
from repro.simulation.hierarchy import simulate_hierarchy
from repro.types import DocumentType

trace = generate_trace(dfn_like(scale=1 / 256))
total = trace.metadata().total_size_bytes
parent_capacity = int(total * 0.02)
child_capacity = int(total * 0.005)

print(f"trace: {len(trace):,} requests; "
      f"4 children x {child_capacity / 1e6:.1f} MB "
      f"-> parent {parent_capacity / 1e6:.1f} MB\n")

standalone = simulate(trace, "lru", parent_capacity)
print(f"standalone proxy ({parent_capacity / 1e6:.1f} MB, lru): "
      f"hit rate {standalone.hit_rate():.3f}")

for child_policy, parent_policy in (("lru", "lru"),
                                    ("lru", "gd*(p)"),
                                    ("gd*(1)", "gd*(p)")):
    result = simulate_hierarchy(
        trace, child_capacity, parent_capacity,
        child_policy=child_policy, parent_policy=parent_policy,
        n_children=4)
    print(f"\nchildren={child_policy}, parent={parent_policy}:")
    print(f"  child hit rate       {result.child_hit_rate:.3f}  "
          f"(end-user view)")
    print(f"  parent hit rate      {result.parent_hit_rate:.3f}  "
          f"(over child misses — note how far below the standalone "
          f"rate)")
    print(f"  hierarchy hit rate   {result.hierarchy_hit_rate:.3f}  "
          f"(origin off-load)")
    print(f"  origin byte traffic  {result.origin_byte_rate:.3f} "
          f"of requested bytes")
    mm_rate = result.hierarchy.hit_rate(DocumentType.MULTIMEDIA)
    print(f"  multimedia hierarchy hit rate {mm_rate:.3f}")
