#!/usr/bin/env python3
"""Characterize a proxy trace the way the paper's Section 2 does.

Given a trace file (Squid access.log, Common Log Format, or the
library's CSV format), prints Table 1-5 style statistics.  Without an
argument, it writes itself a small Squid-format demo log first, so the
full raw-log ingestion pipeline is exercised::

    python examples/characterize_workload.py [path/to/access.log]
"""

import sys
import tempfile
from pathlib import Path

from repro import dfn_like, generate_trace, load_trace
from repro.analysis.characterize import characterize
from repro.analysis.tables import (
    render_breakdown_table,
    render_properties_table,
    render_statistics_table,
)
from repro.trace.record import LogRecord
from repro.trace.squid import format_squid_line


def write_demo_log(path: Path) -> None:
    """Render a synthetic trace back into Squid native log format."""
    trace = generate_trace(dfn_like(scale=1 / 512))
    with open(path, "w", encoding="utf-8") as stream:
        for request in trace:
            record = LogRecord(
                timestamp=1e9 + request.timestamp,
                url=request.url,
                status=request.status,
                size=request.transfer_size,
                content_type=request.content_type,
                client="10.0.0.1",
                elapsed_ms=12,
            )
            stream.write(format_squid_line(record) + "\n")
    print(f"(wrote demo Squid log with {len(trace):,} lines to {path})\n")


def main() -> None:
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
    else:
        path = Path(tempfile.gettempdir()) / "repro_demo_access.log"
        write_demo_log(path)

    # load_trace auto-detects the format and, for raw logs, applies the
    # paper's preprocessing: cacheability filtering, type
    # classification, and document/transfer size reconstruction.
    trace = load_trace(path)
    print(f"loaded {len(trace):,} cacheable requests from {path}\n")

    char = characterize(trace)
    print(render_properties_table({trace.name: char},
                                  title="Trace properties (Table 1 style)"))
    print()
    print(render_breakdown_table(
        char, title="Breakdown by document type (Table 2/3 style)"))
    print()
    print(render_statistics_table(
        char, title="Sizes and temporal locality (Table 4/5 style)"))


if __name__ == "__main__":
    main()
