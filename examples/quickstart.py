#!/usr/bin/env python3
"""Quickstart: generate a workload, simulate two policies, compare.

Runs in a few seconds::

    python examples/quickstart.py
"""

from repro import DocumentType, dfn_like, generate_trace, simulate

# 1. Generate a DFN-like synthetic trace at 1/256 of the paper's scale
#    (~26k requests).  Same profile + seed => same trace, always.
profile = dfn_like(scale=1 / 256)
trace = generate_trace(profile)
print(f"trace: {len(trace):,} requests, "
      f"{trace.metadata().distinct_documents:,} documents, "
      f"{trace.metadata().total_size_gb:.2f} GB of distinct bytes")

# 2. Pick a cache size as a fraction of the trace's bytes (the paper
#    sweeps 0.5 %..4 %) and simulate.
capacity = int(trace.metadata().total_size_bytes * 0.02)
print(f"cache: {capacity / 1e6:,.1f} MB (2% of trace bytes)\n")

for policy in ("lru", "lfu-da", "gds(1)", "gd*(1)"):
    result = simulate(trace, policy=policy, capacity_bytes=capacity)
    print(f"{policy:8s}  hit rate {result.hit_rate():.3f}   "
          f"byte hit rate {result.byte_hit_rate():.3f}   "
          f"(image hit rate {result.hit_rate(DocumentType.IMAGE):.3f}, "
          f"multimedia {result.hit_rate(DocumentType.MULTIMEDIA):.3f})")

print("\nNote the paper's headline shape: the Greedy-Dual family wins "
      "the (image-dominated) hit rate,\nwhile LRU/LFU-DA keep large "
      "multimedia documents and win the multimedia hit rate.")
