#!/usr/bin/env python3
"""Fit a workload model to a trace and generate a synthetic twin.

The DFN and RTP logs behind the paper were never published — a problem
this library turns into a feature: ``fit_profile`` estimates every
generator parameter (type mix, per-type α/β, size distributions,
modification/interruption rates) from any trace, and the regenerated
*twin* is statistically interchangeable for cache studies while being
shareable and scalable::

    python examples/synthetic_twin.py
"""

from repro import (
    dfn_like,
    fidelity_report,
    fit_profile,
    generate_trace,
    simulate,
)
from repro.types import PLOTTED_TYPES

# Stand-in for "a confidential production log": at this point any
# trace loaded with repro.load_trace() works identically.
original = generate_trace(dfn_like(scale=1 / 128))
print(f"original: {len(original):,} requests\n")

# 1. Fit: every generator knob estimated from the data.
profile = fit_profile(original)
print("fitted per-type parameters:")
for doc_type in PLOTTED_TYPES:
    params = profile.types[doc_type]
    print(f"  {doc_type.label:12s} requests {params.request_share:6.2%}  "
          f"alpha {params.alpha:.2f}  beta {params.beta:.2f}  "
          f"median {params.size_model.median_bytes / 1024:8.1f} KB  "
          f"interrupt {params.interruption_rate:.2%}")

# 2. Regenerate at the same volume and compare.
twin = generate_trace(profile)
report = fidelity_report(original, twin)
print(f"\nfidelity (max per-type deviation, percentage points):")
print(f"  distinct documents {report['distinct_documents_max_dev']:.2f}")
print(f"  total requests     {report['total_requests_max_dev']:.2f}")
print(f"  requested bytes    {report['requested_data_max_dev']:.2f}")

# 3. The test that matters: cache results transfer.
capacity = int(original.metadata().total_size_bytes * 0.02)
print(f"\npolicy results, original vs twin "
      f"(cache {capacity / 1e6:.1f} MB):")
for policy in ("lru", "lfu-da", "gds(1)", "gd*(1)"):
    original_hr = simulate(original, policy, capacity).hit_rate()
    twin_hr = simulate(twin, policy, capacity).hit_rate()
    print(f"  {policy:8s} {original_hr:.3f} vs {twin_hr:.3f}")

# 4. And the twin scales: a 4x version for stress tests.
big = generate_trace(profile.scaled(4.0))
print(f"\nscaled twin: {len(big):,} requests from the same model")
