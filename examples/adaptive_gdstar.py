#!/usr/bin/env python3
"""Watch GD* adapt its β to a workload regime change.

GD*'s novel feature (paper Section 3) is the online estimation of the
temporal-correlation exponent β.  This example concatenates two
workload phases — weakly correlated (β=0.2, image-like) then strongly
correlated (β=0.85, multimedia-like), both with near-flat popularity so
the reuse-distance slope reflects correlation rather than popularity —
and prints the policy's β estimate as it tracks the shift, plus the
resulting hit rates against a β-pinned control::

    python examples/adaptive_gdstar.py
"""

from repro import generate_trace, uniform_profile
from repro.core.beta_estimator import FixedBetaEstimator, OnlineBetaEstimator
from repro.core.cache import Cache
from repro.core.cost import ConstantCost
from repro.core.gdstar import GDStarPolicy
from repro.types import Request


def build_two_phase_workload():
    low = generate_trace(uniform_profile(
        n_requests=30_000, n_documents=4_000, alpha=0.05, beta=0.20,
        seed=1))
    high = generate_trace(uniform_profile(
        n_requests=30_000, n_documents=4_000, alpha=0.05, beta=0.85,
        seed=2))
    requests = list(low)
    offset = len(requests)
    for index, request in enumerate(high):
        # Distinct URL space for phase two: a genuine regime change.
        requests.append(Request(
            timestamp=float(offset + index),
            url="phase2/" + request.url,
            size=request.size,
            transfer_size=request.transfer_size,
            doc_type=request.doc_type,
        ))
    return requests


def run(policy, requests, label, estimator=None):
    cache = Cache(40_000_000, policy)
    checkpoints = len(requests) // 10
    print(f"-- {label} --")
    for index, request in enumerate(requests, 1):
        cache.reference(request.url, request.size, request.doc_type)
        if index % checkpoints == 0:
            beta = f"beta={policy.beta:.3f}" if hasattr(policy, "beta") \
                else ""
            print(f"  after {index:6,} requests: "
                  f"hit rate {cache.hits / index:.3f}  {beta}")
    print()
    return cache.hits / len(requests)


def main() -> None:
    requests = build_two_phase_workload()
    print(f"workload: {len(requests):,} requests; β jumps from 0.20 to "
          f"0.85 at the midpoint\n")

    online = GDStarPolicy(
        ConstantCost(),
        beta_estimator=OnlineBetaEstimator(refresh_interval=1000,
                                           min_samples=300, decay=0.5))
    adaptive_rate = run(online, requests, "GD*(1), online beta")

    pinned = GDStarPolicy(ConstantCost(),
                          beta_estimator=FixedBetaEstimator(1.0))
    pinned_rate = run(pinned, requests, "GD*(1), beta pinned at 1.0 "
                                        "(= GDSF)")

    print(f"adaptive: {adaptive_rate:.3f}   pinned: {pinned_rate:.3f}")
    print("The estimate stays below ~0.6 through phase one and climbs "
          "toward 0.85 after the\nmidpoint as the strongly-correlated "
          "phase arrives.")


if __name__ == "__main__":
    main()
