#!/usr/bin/env python3
"""Exact LRU hit-rate curves from one pass (Mattson stack analysis).

Instead of simulating LRU once per cache size, a single stack-distance
pass yields the exact hit rate at *every* (document-granularity) cache
size, per document type — and shows the compulsory-miss floor no cache
size can beat::

    python examples/lru_curves.py

With ``--model`` the analytical (Che approximation) LRU curve from
:mod:`repro.model` is overlaid on the exact one and the maximum
absolute error is printed — a runnable sanity check for the model.
The Che formulas assume the Independent Reference Model; add ``--irm``
to generate the trace without temporal correlation and watch the
error shrink::

    python examples/lru_curves.py --model --irm
"""

import argparse
from collections import Counter

from repro import dfn_like, generate_trace
from repro.analysis.plotting import ascii_chart
from repro.analysis.stack_distance import profiles_by_type
from repro.types import PLOTTED_TYPES

parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
parser.add_argument("--model", action="store_true",
                    help="overlay the analytical (Che) LRU curve and "
                         "print the max absolute error")
parser.add_argument("--irm", action="store_true",
                    help="generate the trace under the Independent "
                         "Reference Model (the model's home turf)")
args = parser.parse_args()

temporal_model = "irm" if args.irm else "gaps"
trace = generate_trace(dfn_like(scale=1 / 256),
                       temporal_model=temporal_model)
print(f"analyzing {len(trace):,} requests in one pass "
      f"(temporal model: {temporal_model})...\n")

profiles = profiles_by_type(trace.requests)
capacities = [2 ** k for k in range(4, 15)]

series = {}
for doc_type in PLOTTED_TYPES:
    profile = profiles[doc_type]
    series[doc_type.label] = [(float(c), rate)
                              for c, rate in profile.curve(capacities)]

print(ascii_chart(series, width=64, height=18, logx=True,
                  title="Exact LRU hit rate vs cache size (documents)",
                  x_label="cache size (documents)", y_label="hit rate"))

if args.model:
    from repro.model import catalog_from_counts, hit_rate_curve

    # Unit-size catalog over the full interleaved stream: capacities in
    # documents, per-type rates in a *shared* cache — the same cache the
    # per-type stack curves describe.
    counts = Counter()
    doc_types = {}
    for request in trace.requests:
        counts[request.url] += 1
        doc_types[request.url] = request.doc_type
    urls = list(counts)
    catalog = catalog_from_counts([counts[u] for u in urls], sizes=1.0,
                                  doc_types=[doc_types[u] for u in urls],
                                  name=trace.name)
    predictions = hit_rate_curve(catalog, capacities, policy="lru")

    overall = profiles[None]
    exact = dict(overall.curve(capacities))
    overlay = {
        "exact (stack)": [(float(c), exact[c]) for c in capacities],
        "Che model": [(float(p.capacity_bytes), p.hit_rate)
                      for p in predictions],
    }
    print()
    print(ascii_chart(overlay, width=64, height=18, logx=True,
                      title="Overall LRU hit rate: exact vs Che model",
                      x_label="cache size (documents)",
                      y_label="hit rate"))

    print("\nModel error (max |model − exact| over capacities):")
    worst = 0.0
    for doc_type in PLOTTED_TYPES:
        exact_type = dict(profiles[doc_type].curve(capacities))
        errors = [abs(p.per_type[doc_type].hit_rate - exact_type[c])
                  for c, p in zip(capacities, predictions)
                  if doc_type in p.per_type]
        if not errors:
            continue
        print(f"  {doc_type.label:12s} max abs error {max(errors):.4f}")
    overall_errors = [abs(p.hit_rate - exact[c])
                      for c, p in zip(capacities, predictions)]
    worst = max(overall_errors)
    print(f"  {'overall':12s} max abs error {worst:.4f}")
    if not args.irm:
        print("  (temporal correlation in the 'gaps' trace breaks the "
              "IRM assumption; rerun with --irm for the model's "
              "accuracy on its own terms)")

print("\nCompulsory-miss floor (first references; no cache removes "
      "these):")
for doc_type in PLOTTED_TYPES:
    profile = profiles[doc_type]
    print(f"  {doc_type.label:12s} cold miss rate "
          f"{profile.compulsory_miss_rate:.3f}   "
          f"(max achievable hit rate "
          f"{1 - profile.compulsory_miss_rate:.3f})")

overall = profiles[None]
print(f"\noverall: a {capacities[-1]:,}-document LRU cache reaches "
      f"{overall.hit_rate_at(capacities[-1]):.3f} of the "
      f"{1 - overall.compulsory_miss_rate:.3f} ceiling")
