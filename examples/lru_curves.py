#!/usr/bin/env python3
"""Exact LRU hit-rate curves from one pass (Mattson stack analysis).

Instead of simulating LRU once per cache size, a single stack-distance
pass yields the exact hit rate at *every* (document-granularity) cache
size, per document type — and shows the compulsory-miss floor no cache
size can beat::

    python examples/lru_curves.py
"""

from repro import dfn_like, generate_trace
from repro.analysis.plotting import ascii_chart
from repro.analysis.stack_distance import profiles_by_type
from repro.types import PLOTTED_TYPES

trace = generate_trace(dfn_like(scale=1 / 256))
print(f"analyzing {len(trace):,} requests in one pass...\n")

profiles = profiles_by_type(trace.requests)
capacities = [2 ** k for k in range(4, 15)]

series = {}
for doc_type in PLOTTED_TYPES:
    profile = profiles[doc_type]
    series[doc_type.label] = [(float(c), rate)
                              for c, rate in profile.curve(capacities)]

print(ascii_chart(series, width=64, height=18, logx=True,
                  title="Exact LRU hit rate vs cache size (documents)",
                  x_label="cache size (documents)", y_label="hit rate"))

print("\nCompulsory-miss floor (first references; no cache removes "
      "these):")
for doc_type in PLOTTED_TYPES:
    profile = profiles[doc_type]
    print(f"  {doc_type.label:12s} cold miss rate "
          f"{profile.compulsory_miss_rate:.3f}   "
          f"(max achievable hit rate "
          f"{1 - profile.compulsory_miss_rate:.3f})")

overall = profiles[None]
print(f"\noverall: a {capacities[-1]:,}-document LRU cache reaches "
      f"{overall.hit_rate_at(capacities[-1]):.3f} of the "
      f"{1 - overall.compulsory_miss_rate:.3f} ceiling")
